//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: per benchmark it runs a short warm-up, then
//! `sample_size` timed samples, and prints mean/min per iteration. No
//! statistical analysis, no HTML reports, no baselines; enough to catch
//! order-of-magnitude regressions in hermetic environments.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness configuration and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget (caps sampling time).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Compatibility no-op (the shim has no CLI).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display2,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &id.render(),
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Warm-up override (compatibility; applied group-wide).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    /// Measurement-budget override (compatibility; applied group-wide).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display2,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.render());
        run_one(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up,
            self.criterion.measurement,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display2,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Things accepted as benchmark ids (`&str` or [`BenchmarkId`]).
pub trait Display2 {
    /// The label to print.
    fn render(&self) -> String;
}

impl Display2 for BenchmarkId {
    fn render(&self) -> String {
        self.text.clone()
    }
}

impl Display2 for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl Display2 for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// Times closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
        self.samples_ns.push(ns);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    // Warm-up: run until the warm-up budget elapses, measuring a rough
    // per-iteration cost to size the sample batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut probe = Bencher {
        samples_ns: Vec::new(),
        iters_per_sample: 1,
    };
    while warm_start.elapsed() < warm_up {
        f(&mut probe);
        warm_iters += 1;
        if probe.samples_ns.is_empty() && warm_iters > 3 {
            break; // closure never called iter(); avoid spinning
        }
    }
    let rough_ns = probe
        .samples_ns
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .max(1.0);
    // Size batches so all samples fit the measurement budget.
    let budget_ns = measurement.as_nanos() as f64 / samples.max(1) as f64;
    let iters_per_sample = ((budget_ns / rough_ns).floor() as u64).clamp(1, 1_000_000);

    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        iters_per_sample,
    };
    let deadline = Instant::now() + measurement.mul_f64(2.0);
    for _ in 0..samples {
        f(&mut bencher);
        if Instant::now() > deadline {
            break;
        }
    }
    if bencher.samples_ns.is_empty() {
        println!("  {label}: no samples (closure never called iter())");
        return;
    }
    let n = bencher.samples_ns.len() as f64;
    let mean = bencher.samples_ns.iter().sum::<f64>() / n;
    let min = bencher
        .samples_ns
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    println!("  {label}: mean {} min {}", fmt_ns(mean), fmt_ns(min));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("mode", "SC").render(), "mode/SC");
        assert_eq!(BenchmarkId::from_parameter(64).render(), "64");
    }
}
