//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of `rand` APIs the GEO code actually uses are
//! reimplemented here behind the same names: [`rngs::StdRng`],
//! [`SeedableRng`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`),
//! and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is SplitMix64 — statistically solid for simulation and
//! test workloads, fully deterministic from `seed_from_u64`, and stable
//! across platforms. It is **not** the upstream `StdRng` (ChaCha12), so
//! sequences differ from builds against crates.io `rand`; nothing in this
//! repository depends on the upstream sequences, only on determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from OS/system entropy (here: a time-derived
    /// seed, since hermetic builds have no `getrandom`).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    ///
    /// SplitMix64 over a 64-bit state folded from the 32-byte seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (splitmix64(&mut self.state) >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                state = state.rotate_left(17) ^ u64::from_le_bytes(word);
            }
            StdRng { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so nearby seeds do not yield overlapping streams.
            let mut s = state;
            let mixed = splitmix64(&mut s);
            StdRng { state: mixed }
        }
    }

    /// Alias kept for code written against `SmallRng`.
    pub type SmallRng = StdRng;
}

/// A type that `Rng::gen` can produce, mirroring the `Standard`
/// distribution.
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A type `Rng::gen_range` can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`high` inclusive when
    /// `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                assert!(lo < hi, "gen_range: empty range {low}..{high}");
                let span = (hi - lo) as u128;
                // Modulo bias is < 2^-64 for every span this repo uses.
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo + v) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    low < high || (inclusive && low <= high),
                    "gen_range: empty range {low}..{high}"
                );
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// A range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples a single value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// A time-seeded generator, mirroring `rand::thread_rng` loosely (not
/// thread-cached; each call returns a fresh generator).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&w));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0f64;
        for _ in 0..4000 {
            let x = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&x));
            sum += f64::from(x);
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle moved something");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}
