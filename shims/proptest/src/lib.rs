//! Offline stand-in for `proptest`.
//!
//! Hermetic builds of this workspace cannot reach crates.io, so the
//! subset of proptest the test suites use is reimplemented here:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   numeric ranges, tuples of strategies, [`any`], [`collection::vec`],
//!   [`sample::select`], and [`Just`];
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test's module path and name (stable across
//! runs and machines), there is **no shrinking**, and
//! `.proptest-regressions` files are not consulted. Failures print the
//! case index; rerunning reproduces them exactly.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier via FNV-1a, so every
    /// test gets a distinct but reproducible case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as i128
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep hermetic CI fast,
    /// large enough to exercise the input space.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test-case values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each produced value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f` (rejection sampling, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive cases: {}",
            self.whence
        );
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // Occasionally emit the exact endpoints, which upstream's
                // shrinking would otherwise find.
                match rng.next_u64() % 64 {
                    0 => lo,
                    1 => hi,
                    _ => lo + (hi - lo) * rng.unit_f64() as $t,
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Produces an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite values spanning several magnitudes; no NaN/inf, which
        // the numeric test suites here never expect.
        let mag = rng.int_in(-8, 8) as i32;
        (rng.unit_f64() as f32 * 2.0 - 1.0) * (2.0f32).powi(mag)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = rng.int_in(-8, 8) as i32;
        (rng.unit_f64() * 2.0 - 1.0) * (2.0f64).powi(mag)
    }
}

/// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies, mirroring `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among `options`.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.int_in(0, self.options.len() as i128 - 1) as usize;
            self.options[i].clone()
        }
    }
}

/// Everything a `proptest!` test file needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// Namespaced access to submodules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines deterministic property tests.
///
/// Supports the upstream surface used in this workspace: an optional
/// leading `#![proptest_config(...)]`, then `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::TestRng::for_test(__test_name);
                for __case in 0..__config.cases {
                    let __run = || {
                        $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                        $body
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    );
                    if let Err(cause) = __outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (deterministic; rerun reproduces)",
                            __test_name, __case, __config.cases,
                        );
                        ::std::panic::resume_unwind(cause);
                    }
                }
            }
        )*
    };
}

/// `assert!` under the name proptest code expects.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under the name proptest code expects.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under the name proptest code expects.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..500 {
            let a = Strategy::new_value(&(3u8..=10), &mut rng);
            assert!((3..=10).contains(&a));
            let b = Strategy::new_value(&(0usize..5), &mut rng);
            assert!(b < 5);
            let c = Strategy::new_value(&(0.5f32..=1.5), &mut rng);
            assert!((0.5..=1.5).contains(&c));
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = TestRng::for_test("y");
        assert_ne!(va, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn vec_strategy_sizes_and_maps() {
        let mut rng = TestRng::for_test("vecs");
        let strat = prop::collection::vec(any::<bool>(), 1..8).prop_map(|v| v.len());
        for _ in 0..200 {
            let n = Strategy::new_value(&strat, &mut rng);
            assert!((1..8).contains(&n));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::for_test("flat");
        let strat = (2usize..6)
            .prop_flat_map(|n| prop::collection::vec(any::<u8>(), n..=n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = Strategy::new_value(&strat, &mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn select_only_yields_options() {
        let mut rng = TestRng::for_test("select");
        let strat = prop::sample::select(vec![1usize, 3, 5]);
        for _ in 0..100 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!([1, 3, 5].contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), c in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c, c);
            prop_assert_ne!(a + 10, b);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
