//! Offline stand-in for `serde`.
//!
//! The workspace annotates config/report types with
//! `#[derive(Serialize, Deserialize)]` but performs no actual
//! serialization through serde (experiment binaries emit JSON by hand).
//! In hermetic builds with no crates.io access, this shim keeps those
//! annotations compiling: `Serialize` and `Deserialize` are blanket
//! marker traits and the derives (from the sibling `serde_derive` shim)
//! expand to nothing.
//!
//! If real serialization is ever needed, delete `shims/serde` and
//! `shims/serde_derive`, restore the crates.io entries in the workspace
//! `Cargo.toml`, and everything annotated today works unchanged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type qualifies.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every sized type qualifies.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Every sized type qualifies, as with [`crate::Deserialize`].
    pub trait DeserializeOwned: Sized {}

    impl<T> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Annotated {
        x: u32,
    }

    fn takes_serialize<T: crate::Serialize>(_t: &T) {}

    #[test]
    fn derive_compiles_and_blanket_impl_applies() {
        let a = Annotated { x: 7 };
        takes_serialize(&a);
        assert_eq!(a, Annotated { x: 7 });
    }
}
