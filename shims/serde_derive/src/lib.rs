//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` shim implements `Serialize`/`Deserialize` as
//! blanket marker traits, so these derives have nothing to generate: they
//! exist only so `#[derive(Serialize, Deserialize)]` attributes compile
//! unchanged in hermetic builds. `#[serde(...)]` helper attributes are
//! accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (blanket impl lives in the `serde` shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (blanket impl lives in the `serde` shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
