//! Offline stand-in for the `rayon` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the data-parallel APIs the GEO engine actually uses are
//! reimplemented here behind the same names: [`ParallelSliceMut`]
//! (`par_chunks_mut` with `enumerate`, `for_each`, and `for_each_init`),
//! [`current_num_threads`], and scoped pools
//! ([`ThreadPoolBuilder::num_threads`] + [`ThreadPool::install`]).
//!
//! Instead of a work-stealing pool, work is split into one *contiguous*
//! block of chunks per worker and executed under [`std::thread::scope`].
//! Each chunk is handed to exactly one closure invocation with exclusive
//! (`&mut`) access, and the chunk index passed to the closure is its
//! global position — so for any pure per-chunk computation, results are
//! **bit-identical at every thread count by construction**. That is the
//! property the GEO engine's parallel compute phase relies on.
//!
//! Thread-count resolution order mirrors upstream rayon closely enough
//! for this workspace:
//!
//! 1. the innermost [`ThreadPool::install`] active on the calling thread,
//! 2. the `RAYON_NUM_THREADS` environment variable (read per call, not
//!    latched at startup — handy for benchmarks),
//! 3. [`std::thread::available_parallelism`].
//!
//! Known differences from upstream: `install` affects only the calling
//! thread (the override is thread-local, not a real pool, and does not
//! propagate into nested parallel calls made *from worker threads*), and
//! workers are plain scoped threads spawned per call rather than pooled.
//! Nothing in this repository relies on those upstream behaviors.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED: Cell<Option<NonZeroUsize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// The number of worker threads a parallel call issued from this thread
/// would use right now.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED.with(Cell::get) {
        return n.get();
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` means "automatic".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the `Result` mirrors the upstream
    /// signature so callers can keep the same error handling.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match NonZeroUsize::new(self.num_threads) {
            Some(n) => n,
            None => NonZeroUsize::new(current_num_threads().max(1))
                .expect("current_num_threads is at least 1"),
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A fixed thread-count scope for parallel calls, mirroring
/// `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: NonZeroUsize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.get()
    }

    /// Runs `op` with this pool's thread count governing any parallel
    /// calls `op` makes on the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<NonZeroUsize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                INSTALLED.with(|c| c.set(prev));
            }
        }
        let prev = INSTALLED.with(|c| c.replace(Some(self.num_threads)));
        let _restore = Restore(prev);
        op()
    }
}

/// Error building a [`ThreadPool`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Splits `slice` into `≈ total_chunks / workers` contiguous runs of
/// whole chunks and drives `op(state, chunk_index, chunk)` over each, one
/// scoped thread per run. `init` runs once per worker.
fn drive_chunks<T, S, I, F>(slice: &mut [T], chunk_size: usize, init: I, op: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk size must be nonzero");
    let total_chunks = slice.len().div_ceil(chunk_size);
    let workers = current_num_threads().min(total_chunks.max(1));
    if workers <= 1 {
        let mut state = init();
        for (i, chunk) in slice.chunks_mut(chunk_size).enumerate() {
            op(&mut state, i, chunk);
        }
        return;
    }
    let chunks_per_worker = total_chunks.div_ceil(workers);
    let items_per_worker = chunks_per_worker * chunk_size;
    std::thread::scope(|scope| {
        let mut rest = slice;
        let mut next_chunk = 0usize;
        while !rest.is_empty() {
            let take = items_per_worker.min(rest.len());
            let (block, tail) = rest.split_at_mut(take);
            rest = tail;
            let first_chunk = next_chunk;
            next_chunk += chunks_per_worker;
            let (init, op) = (&init, &op);
            scope.spawn(move || {
                let mut state = init();
                for (j, chunk) in block.chunks_mut(chunk_size).enumerate() {
                    op(&mut state, first_chunk + j, chunk);
                }
            });
        }
    });
}

/// Parallel mutable-slice operations, mirroring
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be nonzero");
        ChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut(self)
    }

    /// Runs `op` on every chunk, in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        drive_chunks(self.slice, self.chunk_size, || (), |(), _, c| op(c));
    }
}

/// Enumerated parallel iterator over mutable chunks of a slice.
pub struct EnumerateChunksMut<'a, T>(ChunksMut<'a, T>);

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Runs `op` on every `(chunk_index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        drive_chunks(
            self.0.slice,
            self.0.chunk_size,
            || (),
            |(), i, c| op((i, c)),
        );
    }

    /// Like [`Self::for_each`], but hands `op` mutable state created by
    /// `init` once per worker — scratch buffers that would be wasteful to
    /// allocate per chunk.
    pub fn for_each_init<S, I, F>(self, init: I, op: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        drive_chunks(self.0.slice, self.0.chunk_size, init, |s, i, c| {
            op(s, (i, c))
        });
    }
}

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_indices_are_global_positions() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i));
        for (pos, &v) in data.iter().enumerate() {
            assert_eq!(v, pos / 10);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut data = vec![0u64; 1000];
                data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i as u64) << 32 | j as u64;
                    }
                });
                data
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(serial, run(threads), "{threads} threads");
        }
    }

    #[test]
    fn for_each_init_state_is_per_worker_not_shared() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let mut data = vec![0usize; 64];
            data.par_chunks_mut(4).enumerate().for_each_init(
                Vec::<u8>::new,
                |scratch, (i, chunk)| {
                    scratch.clear();
                    scratch.extend_from_slice(&[1, 2, 3]);
                    chunk.fill(i + scratch.len());
                },
            );
            for (pos, &v) in data.iter().enumerate() {
                assert_eq!(v, pos / 4 + 3);
            }
        });
    }

    #[test]
    fn install_overrides_and_restores_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outer = current_num_threads();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
        // Nested installs: innermost wins, then restores.
        let pool2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(pool2.install(current_num_threads), 2);
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn zero_thread_builder_uses_automatic_count() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn empty_and_short_slices_are_handled() {
        let mut empty: Vec<u32> = Vec::new();
        empty.as_mut_slice().par_chunks_mut(8).for_each(|_| {
            panic!("no chunks in an empty slice");
        });
        let mut short = vec![1u32; 3];
        short
            .as_mut_slice()
            .par_chunks_mut(8)
            .for_each(|c| c.fill(9));
        assert_eq!(short, vec![9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_size_panics() {
        let mut data = vec![0u8; 4];
        data.as_mut_slice().par_chunks_mut(0).for_each(|_| {});
    }
}
