#!/bin/bash
# Regenerates every table and figure; outputs land in results/.
set -u
cd /root/repo
R=results
# Stale outputs this script owns but no longer produces. queue.log was a
# leftover completion-marker redirect from an earlier revision;
# telemetry artifacts follow the documented telemetry_<scale>.json
# naming, and only the full-scale one is regenerated here — smoke/quick
# files are transient CI/dev probes that must not linger as if current.
# telemetry_full.json is removed up front rather than trusting the
# overwrite: a pre-fusion (unfused-pipeline) artifact lacks the
# conversions_skipped counter and must not survive a failed telemetry
# pass looking current.
rm -f $R/queue.log $R/telemetry_smoke.json $R/telemetry_quick.json \
      $R/telemetry_full.json
run() { echo "=== $1 ==="; shift; "$@" 2>&1; }
B="cargo run --release -q -p geo-bench --bin"
run fig5       $B fig5_mac_area                 > $R/fig5.txt
run fig3       $B fig2_progressive -- --schedule > $R/fig3_schedule.txt
run fig6       $B fig6_breakdown -- --detail     > $R/fig6.txt
run table2     $B table2_ulp                     > $R/table2.txt
run table3     $B table3_lp                      > $R/table3.txt
run dataflow   $B dataflow_accesses              > $R/dataflow.txt
run fig2       $B fig2_progressive               > $R/fig2.txt
run fig2net    $B fig2_progressive -- --network  > $R/fig2_network.txt
run fig1       $B fig1_sharing                   > $R/fig1.txt
run table1     $B table1_accuracy -- --ablations > $R/table1.txt
run ablations  $B ablation_sweeps                > $R/ablation_sweeps.txt
run faults     $B fault_sweep                    > $R/fault_sweep.txt
run scaling    $B thread_scaling                 > $R/thread_scaling.txt
# Telemetry needs the feature flag (live counters), so it gets its own
# cargo invocation; the artifact lands in results/telemetry_full.json.
# Runs before the plain perf pass so the canonical feature-off
# BENCH_forward.json is the one that survives. Both passes carry stable
# --run-id labels: same-label history entries are replaced in place, so
# re-running this script updates the trajectory points instead of
# growing BENCH_forward.json's history.
run telemetry  cargo run --release -q -p geo-bench --features telemetry \
               --bin bench_forward -- --telemetry --run-id full-telemetry \
               > $R/bench_forward_telemetry.txt
# --artifact also saves each compiled program to $R/<model>.geoa,
# reloads it through the validating from_artifact boundary, and asserts
# the reloaded executor's outputs bit-identical (DESIGN.md §13).
# --serve measures the compile-once, serve-many path (DESIGN.md §15):
# per-inference cost, inf/sec, and p50/p99 at target batch 1/8/64, with
# the batch-64-beats-batch-1 gate.
# The same pass also times the fused conv→pool pipeline (DESIGN.md §16):
# every workload × mode gets a "<model>+fused" cell pinned bit-identical
# to its unfused twin, gated by the fused speedup floor, riding the same
# BENCH_forward.json history entry — no separate unfused artifact exists
# to go stale.
run perf       $B bench_forward -- --artifact $R --serve --run-id full > $R/bench_forward.txt
echo ALL_EXPERIMENTS_DONE
