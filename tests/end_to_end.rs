//! Cross-crate integration: train a network SC-in-the-loop (geo-core on
//! geo-nn with geo-sc streams), then compile and simulate the *same* model
//! on the accelerator (geo-arch) — the full pipeline a user of the GEO
//! release would run.

use geo::arch::{compiler, perfsim, AccelConfig, NetworkDesc};
use geo::core::{evaluate_sc, train_sc, Accumulation, GeoConfig, ScEngine};
use geo::nn::datasets::{generate, DatasetSpec};
use geo::nn::optim::Optimizer;
use geo::nn::train::TrainConfig;
use geo::nn::{models, Tensor};

#[test]
fn train_then_deploy_pipeline() {
    // 1. Data + model.
    let (train_ds, test_ds) = generate(&DatasetSpec::mnist_like(9).with_samples(64, 32));
    let mut model = models::lenet5(1, 8, 10, 4);

    // 2. SC-in-the-loop training at GEO-32,64.
    let config = GeoConfig::geo(32, 64);
    let mut engine = ScEngine::new(config).expect("valid config");
    let mut opt = Optimizer::paper_default();
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 16,
        seed: 0,
    };
    let history = train_sc(&mut engine, &mut model, &train_ds, &mut opt, &cfg).expect("training");
    assert!(history.final_loss().unwrap() < history.losses[0]);
    let acc = evaluate_sc(&mut engine, &mut model, &test_ds).expect("evaluation");
    assert!(acc > 0.15, "trained SC accuracy {acc}");

    // 3. Deploy: trace the model's shapes and simulate it on the ULP
    //    accelerator at the same stream configuration.
    let net = NetworkDesc::from_model("lenet5-small", &model, (1, 8, 8));
    assert_eq!(net.layers.len(), 4); // 2 conv + 2 fc
    let accel = AccelConfig::ulp_geo(32, 64);
    let program = compiler::compile(&net, &accel);
    let report = perfsim::simulate(&accel, &program);
    assert!(report.fps > 1_000.0, "deployed fps {}", report.fps);
    assert!(report.energy_j > 0.0 && report.energy_j.is_finite());
}

#[test]
fn stream_plan_matches_compiler_stream_assignment() {
    // The engine's per-layer stream plan and the compiler's stream-cycle
    // assignment must agree on which layers are pooled.
    let model = models::cnn4(3, 8, 10, 0);
    let engine = ScEngine::new(GeoConfig::geo(16, 64)).expect("valid config");
    let plan: Vec<usize> = engine.stream_plan(&model).into_iter().flatten().collect();
    assert_eq!(plan, vec![16, 16, 64, 128]);

    let net = NetworkDesc::from_model("cnn4", &model, (3, 8, 8));
    let pooled: Vec<bool> = net.layers.iter().map(|l| l.pooled()).collect();
    assert_eq!(pooled, vec![true, true, false, false]);
}

#[test]
fn accumulation_modes_order_consistently_across_stack() {
    // The area model (geo-arch) and the accuracy engine (geo-core) must
    // tell the same story: more fixed-point accumulation costs more area
    // and recovers more dynamic range.
    use geo::sc::KernelDims;
    let dims = KernelDims::new(1, 32, 5, 5);
    let area = |m: Accumulation| geo::arch::mac_area::sc_mac_unit(dims, m).area_um2;
    assert!(area(Accumulation::Or) <= area(Accumulation::Pbw));
    assert!(area(Accumulation::Pbw) <= area(Accumulation::Pbhw));
    assert!(area(Accumulation::Pbhw) <= area(Accumulation::Fxp));

    // Range: run one conv layer with all-positive weights.
    use geo::nn::{Conv2d, Layer, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv = Conv2d::new(3, 2, 3, 1, 0, false, &mut rng);
    for v in conv.weight.value.data_mut() {
        *v = v.abs().max(0.2);
    }
    let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
    let x = Tensor::full(&[1, 3, 6, 6], 0.5);
    let mean = |mode: Accumulation, model: &mut Sequential| {
        let mut eng = ScEngine::new(
            GeoConfig::geo(128, 128)
                .with_progressive(false)
                .with_accumulation(mode),
        )
        .expect("valid config");
        let out = eng.forward(model, &x, false).expect("forward");
        out.data().iter().sum::<f32>() / out.len() as f32
    };
    let or_mean = mean(Accumulation::Or, &mut model);
    let pbw_mean = mean(Accumulation::Pbw, &mut model);
    let fxp_mean = mean(Accumulation::Fxp, &mut model);
    assert!(or_mean <= pbw_mean + 1e-6);
    assert!(pbw_mean <= fxp_mean + 1e-6);
}

#[test]
fn facade_reexports_are_usable() {
    // Every sub-crate is reachable through the facade.
    let _ = geo::sc::Bitstream::zeros(8);
    let _ = geo::nn::Tensor::zeros(&[2, 2]);
    let _ = geo::core::GeoConfig::geo(32, 64);
    let _ = geo::arch::NetworkDesc::lenet5_mnist();
}
