//! Integration tests pinning the paper's *qualitative claims* — the shape
//! of every headline result, at CI-friendly scale. The full-magnitude runs
//! live in `crates/bench`; these tests fail if a code change breaks a
//! trend the paper depends on.

use geo::arch::baselines::EyerissConfig;
use geo::arch::{perfsim, AccelConfig, NetworkDesc};
use geo::core::{evaluate_sc, train_sc, Accumulation, GeoConfig, ScEngine};
use geo::nn::datasets::{generate, DatasetSpec};
use geo::nn::optim::Optimizer;
use geo::nn::train::TrainConfig;
use geo::nn::{models, Sequential};
use geo::sc::{RngKind, SharingLevel};

/// Set `GEO_SKIP_HEAVY_TESTS=1` to skip the training-loop tests in this
/// file (tens of seconds each). CI uses this for the auxiliary serial
/// lane; the default `cargo test` run — the tier-1 gate — runs everything.
fn skip_heavy() -> bool {
    std::env::var("GEO_SKIP_HEAVY_TESTS").is_ok_and(|v| !v.is_empty() && v != "0")
}

macro_rules! heavy_test {
    () => {
        if skip_heavy() {
            eprintln!("skipped: GEO_SKIP_HEAVY_TESTS is set");
            return;
        }
    };
}

fn quick_train(config: GeoConfig, seed: u64) -> f32 {
    let (train_ds, test_ds) = generate(&DatasetSpec::svhn_like(seed).with_samples(96, 48));
    let mut model = models::cnn4(3, 8, 10, 0);
    let mut engine = ScEngine::new(config).expect("valid config");
    let mut opt = Optimizer::paper_default();
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 16,
        seed: 0,
    };
    train_sc(&mut engine, &mut model, &train_ds, &mut opt, &cfg).expect("training");
    evaluate_sc(&mut engine, &mut model, &test_ds).expect("evaluation")
}

/// Fig. 1's core claim: trained, moderately-shared LFSR generation beats
/// unshared TRNG generation.
#[test]
fn fig1_lfsr_moderate_sharing_beats_unshared_trng() {
    heavy_test!();
    let base = GeoConfig {
        accumulation: Accumulation::Or,
        progressive: false,
        ..GeoConfig::geo(64, 64)
    };
    let lfsr_moderate = quick_train(base.with_sharing(SharingLevel::Moderate), 11);
    let trng_none = quick_train(
        base.with_rng(RngKind::Trng)
            .with_sharing(SharingLevel::None),
        11,
    );
    assert!(
        lfsr_moderate > trng_none + 0.05,
        "LFSR+moderate ({lfsr_moderate}) should clearly beat TRNG+none ({trng_none})"
    );
}

/// Fig. 1: extreme sharing collapses accuracy even with training.
#[test]
fn fig1_extreme_sharing_collapses() {
    heavy_test!();
    let base = GeoConfig {
        accumulation: Accumulation::Or,
        progressive: false,
        ..GeoConfig::geo(64, 64)
    };
    let moderate = quick_train(base.with_sharing(SharingLevel::Moderate), 13);
    let extreme = quick_train(base.with_sharing(SharingLevel::Extreme), 13);
    assert!(
        moderate > extreme + 0.05,
        "moderate ({moderate}) ≫ extreme ({extreme})"
    );
}

/// §III-B: partial binary accumulation (PBW) beats full-OR at short
/// streams.
#[test]
fn pbw_beats_or_at_short_streams() {
    heavy_test!();
    let pbw = quick_train(GeoConfig::geo(32, 32).with_progressive(false), 17);
    let or_only = quick_train(
        GeoConfig::geo(32, 32)
            .with_progressive(false)
            .with_accumulation(Accumulation::Or),
        17,
    );
    assert!(
        pbw > or_only,
        "PBW ({pbw}) should beat OR-only ({or_only}) at 32-bit streams"
    );
}

/// §II-B: progressive generation costs almost no accuracy on a trained
/// network.
#[test]
fn progressive_generation_is_nearly_free() {
    heavy_test!();
    let (train_ds, test_ds) = generate(&DatasetSpec::svhn_like(19).with_samples(96, 48));
    let mut model = models::cnn4(3, 8, 10, 0);
    let cfg_normal = GeoConfig::geo(64, 64).with_progressive(false);
    let mut engine = ScEngine::new(cfg_normal).expect("valid config");
    let mut opt = Optimizer::paper_default();
    train_sc(
        &mut engine,
        &mut model,
        &train_ds,
        &mut opt,
        &TrainConfig {
            epochs: 6,
            batch_size: 16,
            seed: 0,
        },
    )
    .expect("training");
    let normal = evaluate_sc(&mut engine, &mut model, &test_ds).expect("eval");
    let mut prog_engine = ScEngine::new(cfg_normal.with_progressive(true)).expect("valid config");
    let progressive = evaluate_sc(&mut prog_engine, &mut model, &test_ds).expect("eval");
    assert!(
        (normal - progressive).abs() < 0.12,
        "progressive ({progressive}) should track normal ({normal})"
    );
}

/// Fig. 6 / Table II: the full GEO bundle beats both the unoptimized base
/// and iso-accuracy ACOUSTIC on latency *and* energy.
#[test]
fn geo_wins_fig6_and_table2_comparisons() {
    let net = NetworkDesc::cnn4_cifar();
    let base = perfsim::run(&AccelConfig::ulp_base(), &net);
    let gen = perfsim::run(&AccelConfig::ulp_gen(), &net);
    let full = perfsim::run(&AccelConfig::ulp_gen_exec(), &net);
    let acoustic = perfsim::run(&AccelConfig::acoustic_ulp(128), &net);
    // Monotone improvement along the Fig. 6 progression.
    assert!(gen.seconds < base.seconds);
    assert!(full.seconds < gen.seconds);
    assert!(gen.energy_j < base.energy_j);
    assert!(full.energy_j < gen.energy_j);
    // And the headline ratios point the right way with real margin.
    assert!(base.seconds / full.seconds > 2.5);
    assert!(base.energy_j / full.energy_j > 2.5);
    assert!(acoustic.seconds / full.seconds > 2.0);
    assert!(acoustic.energy_j / full.energy_j > 2.0);
    // Area stays within a few percent (Fig. 6: −1%…+2%).
    assert!((full.area_mm2 / base.area_mm2 - 1.0).abs() < 0.05);
}

/// Table II/III: GEO outperforms the iso-area fixed-point baseline in
/// throughput and energy efficiency.
#[test]
fn geo_beats_iso_area_eyeriss() {
    let net = NetworkDesc::cnn4_cifar();
    let geo = perfsim::run(&AccelConfig::ulp_geo(32, 64), &net);
    let eyeriss = EyerissConfig::ulp_4bit().simulate(&net);
    assert!(
        (geo.area_mm2 / eyeriss.area_mm2 - 1.0).abs() < 0.35,
        "iso-area comparison: {} vs {}",
        geo.area_mm2,
        eyeriss.area_mm2
    );
    assert!(geo.fps > eyeriss.fps * 2.0);
    assert!(geo.frames_per_joule > eyeriss.frames_per_joule * 1.5);

    let vgg = NetworkDesc::vgg16_scaled_cifar();
    let geo_lp = perfsim::run(&AccelConfig::lp_geo(64, 128), &vgg);
    let eyeriss_lp = EyerissConfig::lp_8bit().simulate(&vgg);
    assert!(geo_lp.fps > eyeriss_lp.fps * 2.0);
    assert!(geo_lp.frames_per_joule > eyeriss_lp.frames_per_joule * 1.5);
}

/// Table I-style check: the full GEO configuration (PBW + progressive +
/// moderate LFSR sharing) trains to an accuracy floor far above the 10%
/// chance level at CI scale. This pins the end-to-end accuracy path —
/// including the full-scale operand encoding, which used to lose the
/// all-ones stream level and silently shave every saturated operand.
#[test]
fn table1_trained_geo_accuracy_floor() {
    heavy_test!();
    let acc = quick_train(GeoConfig::geo(32, 64), 23);
    assert!(
        acc > 0.4,
        "trained GEO config should clear 40% on the CI-scale dataset, got {acc}"
    );
}

/// §IV-A: LFSR inference is bit-exact reproducible — the property the
/// whole training story rests on.
#[test]
fn lfsr_inference_is_reproducible_across_engines() {
    let mut model: Sequential = models::cnn4(3, 8, 10, 7);
    let x = geo::nn::Tensor::full(&[2, 3, 8, 8], 0.5);
    let mut e1 = ScEngine::new(GeoConfig::geo(32, 64)).expect("valid config");
    let mut e2 = ScEngine::new(GeoConfig::geo(32, 64)).expect("valid config");
    let a = e1.forward(&mut model, &x, false).expect("forward");
    let b = e2.forward(&mut model, &x, false).expect("forward");
    assert_eq!(a.data(), b.data());
}
