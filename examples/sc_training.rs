//! SC-in-the-loop training (paper §II-A): the forward pass runs through the
//! stochastic engine, backprop flows through the float layers, and the
//! network *learns the generation bias* of its shared LFSRs.
//!
//! The payoff: the same model evaluated with TRNG streams (which it could
//! not train for) loses accuracy.
//!
//! Run: `cargo run --release --example sc_training`

use geo::core::{evaluate_sc, train_sc, GeoConfig, ScEngine};
use geo::nn::datasets::{generate, DatasetSpec};
use geo::nn::models;
use geo::nn::optim::Optimizer;
use geo::nn::train::TrainConfig;
use geo::sc::RngKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train_ds, test_ds) = generate(&DatasetSpec::mnist_like(3).with_samples(160, 80));
    let mut model = models::lenet5(1, 8, 10, 1);

    // GEO-16,32: short streams, moderate LFSR sharing, PBW accumulation.
    let config = GeoConfig::geo(16, 32);
    let mut engine = ScEngine::new(config)?;
    let mut optimizer = Optimizer::paper_default(); // Adam, lr 2e-3
    let train_cfg = TrainConfig {
        epochs: 10,
        batch_size: 16,
        seed: 0,
    };

    println!("training LeNet-5 with SC forward / float backward (GEO-16,32)…");
    let history = train_sc(
        &mut engine,
        &mut model,
        &train_ds,
        &mut optimizer,
        &train_cfg,
    )?;
    for (epoch, loss) in history.losses.iter().enumerate() {
        println!("  epoch {:>2}: loss {loss:.4}", epoch + 1);
    }

    let lfsr_acc = evaluate_sc(&mut engine, &mut model, &test_ds)?;
    println!();
    println!(
        "test accuracy with the LFSRs it trained for: {:.1}%",
        100.0 * lfsr_acc
    );

    // The same weights under TRNG generation: the learned bias is gone.
    let mut trng_engine = ScEngine::new(config.with_rng(RngKind::Trng))?;
    let trng_acc = evaluate_sc(&mut trng_engine, &mut model, &test_ds)?;
    println!(
        "test accuracy under TRNG streams:            {:.1}%",
        100.0 * trng_acc
    );
    println!();
    println!(
        "deterministic generation turned the SC error into something trainable — \
         that is §II-A's co-optimization in action."
    );

    // Where does the remaining SC error live? Layer-wise analysis.
    println!();
    println!("per-layer SC-vs-float divergence on a test image:");
    let image = test_ds.image(0);
    let errors = geo::core::analyze::layer_errors(&mut engine, &mut model, &image)?;
    print!("{}", geo::core::analyze::format_errors(&errors));

    // Persist the trained weights for deployment.
    let ckpt = std::env::temp_dir().join("geo_sc_trained.ckpt");
    geo::nn::checkpoint::save(&mut model, &ckpt)?;
    println!();
    println!("checkpoint written to {}", ckpt.display());
    Ok(())
}
