//! Drive the GEO accelerator model: compile the paper's CIFAR-10 CNN-4 to
//! the ULP design point, inspect the program, and simulate latency, energy
//! and the per-module breakdown.
//!
//! Run: `cargo run --release --example accelerator_sim`

use geo::arch::{compiler, perfsim, AccelConfig, Category, NetworkDesc};

fn main() {
    let net = NetworkDesc::cnn4_cifar();
    let accel = AccelConfig::ulp_geo(32, 64);
    println!(
        "network: {} ({} MMACs, {} kweights)",
        net.name,
        net.total_macs() / 1_000_000,
        net.total_weights() / 1000
    );
    println!(
        "accelerator: {} — {} MACs, {} rows, {:.2} mm², {} MHz @ {:.2} V",
        accel.name,
        accel.macs(),
        accel.rows,
        accel.total_area_mm2(),
        accel.operating_point().freq_mhz,
        accel.operating_point().voltage,
    );

    // Compile to the GEO ISA.
    let program = compiler::compile(&net, &accel);
    println!();
    println!(
        "compiled: {} instructions, {} generate passes, {} layers",
        program.instrs.len(),
        program.generate_count(),
        program.layer_starts.len()
    );
    println!("first instructions:");
    for line in program.listing().lines().take(6) {
        println!("  {line}");
    }

    // Simulate.
    let report = perfsim::simulate(&accel, &program);
    println!();
    println!("simulation:");
    println!("  cycles / frame : {}", report.cycles);
    println!("  latency        : {:.1} µs", report.seconds * 1e6);
    println!("  throughput     : {:.0} frames/s", report.fps);
    println!("  energy / frame : {:.2} µJ", report.energy_j * 1e6);
    println!("  efficiency     : {:.0} frames/J", report.frames_per_joule);
    println!("  average power  : {:.1} mW", report.power_mw);

    println!();
    println!("dynamic-energy breakdown:");
    let total: f64 = report.breakdown_pj.iter().map(|(_, e)| e).sum();
    for cat in Category::ALL {
        let e = report
            .breakdown_pj
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, e)| *e)
            .unwrap_or(0.0);
        println!("  {:<18} {:>5.1}%", cat.label(), 100.0 * e / total);
    }
    println!(
        "  leakage            {:>5.1}% of total energy",
        100.0 * report.leakage_pj / (total + report.leakage_pj)
    );
}
