//! Quickstart: the GEO pipeline end to end in a minute.
//!
//! 1. Generate stochastic streams with deterministic, shareable LFSRs.
//! 2. Multiply-accumulate in the stochastic domain (AND + OR / counters).
//! 3. Run a CNN through the GEO engine and compare accumulation modes.
//!
//! Run: `cargo run --release --example quickstart`

use geo::core::{Accumulation, GeoConfig, ScEngine};
use geo::nn::{models, Tensor};
use geo::sc::{generate_split, generate_unipolar, metrics, ops, Lfsr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Streams: a 7-bit maximal-length LFSR drives each SNG. ---
    let len = 128;
    let mut act_rng = Lfsr::new(7, 1)?;
    let mut wgt_rng = Lfsr::with_polynomial(7, 1, 60)?; // decorrelated source
    let activation = generate_unipolar(0.75, len, &mut act_rng);
    let weight = generate_split(-0.5, len, &mut wgt_rng); // split-unipolar signed weight
    println!("activation stream: {activation}");
    println!(
        "weight streams:    +{:.3} / -{:.3}  (value {:.3})",
        weight.pos.value(),
        weight.neg.value(),
        weight.value()
    );

    // --- 2. SC arithmetic: AND multiplies, OR accumulates. ---
    let product = ops::and_mul_split(&activation, &weight)?;
    println!(
        "0.75 × -0.5 ≈ {:.3} in the stochastic domain (exact: -0.375)",
        product.value()
    );
    let corr = metrics::scc(&activation, &weight.neg)?;
    println!("operand correlation (SCC): {corr:.3} — near zero, so AND ≈ multiply");

    // --- 3. A network on the GEO engine, across accumulation modes. ---
    let mut model = models::lenet5(1, 8, 10, 0);
    let image = Tensor::full(&[1, 1, 8, 8], 0.4);
    println!();
    println!("LeNet-5 logits under different SC/fixed-point accumulation splits:");
    for mode in [Accumulation::Or, Accumulation::Pbw, Accumulation::Fxp] {
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64).with_accumulation(mode))?;
        let logits = engine.forward(&mut model, &image, false)?;
        let preview: Vec<String> = logits.data()[..4]
            .iter()
            .map(|v| format!("{v:+.3}"))
            .collect();
        println!("  {:<5} → [{}, …]", mode.label(), preview.join(", "));
    }
    println!();
    println!("Same weights, same streams — only the accumulation boundary moved.");
    println!("PBW (GEO's choice) recovers most of FXP's range at a fraction of the area.");
    Ok(())
}
