//! Design-space exploration with the GEO model: sweep stream lengths and
//! optimization bundles over the ULP architecture, printing the
//! latency/energy/area frontier a designer would navigate.
//!
//! Run: `cargo run --release --example design_space`

use geo::arch::{perfsim, AccelConfig, NetworkDesc, Optimizations};

fn main() {
    let net = NetworkDesc::cnn4_cifar();
    println!("design-space sweep — {} on the ULP fabric", net.name);
    println!("{:-<84}", "");
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "config", "fps", "µJ/frame", "frames/J", "mm²", "mW"
    );

    // Stream-length sweep at full optimizations.
    for (sp, s) in [(16usize, 32usize), (32, 64), (64, 128), (128, 128)] {
        let accel = AccelConfig::ulp_geo(sp, s);
        let r = perfsim::run(&accel, &net);
        print_row(&accel.name, &r);
    }
    println!();

    // Optimization-bundle sweep at fixed 32,64 streams.
    let bundles: [(&str, Optimizations); 4] = [
        ("none (base)", Optimizations::baseline()),
        ("generation only", Optimizations::generation_only()),
        (
            "gen + partial binary",
            Optimizations {
                partial_binary: true,
                ..Optimizations::generation_only()
            },
        ),
        ("full GEO", Optimizations::full()),
    ];
    for (label, opts) in bundles {
        let mut accel = AccelConfig::ulp_geo(32, 64);
        accel.opts = opts;
        accel.name = label.to_string();
        let r = perfsim::run(&accel, &net);
        print_row(label, &r);
    }
    println!();
    println!(
        "Each optimization bundle buys latency or energy at ≈1–2% area — the \
         Fig. 6 story, explorable for any network and design point."
    );
}

fn print_row(name: &str, r: &geo::arch::SimReport) {
    println!(
        "{:<24} {:>10.0} {:>12.2} {:>12.0} {:>10.3} {:>10.1}",
        name,
        r.fps,
        r.energy_j * 1e6,
        r.frames_per_joule,
        r.area_mm2,
        r.power_mw
    );
}
