#!/bin/bash
# Opt-in asm spot check: proves the Apc inner reduction compiles to
# branchless hardware popcounts (DESIGN.md §14).
#
# `geo_sc::apc_reduce` is `#[inline(never)]` precisely so it survives as
# a standalone symbol this script can disassemble; the engine's Apc
# kernels (`apc_static` and the dynamic fallback) feed it and inline the
# same `count_ones` trees. The check builds the geo-sc test binary with
# `-C target-cpu=native` (the baseline x86-64 target expands
# `count_ones` to the branchless SWAR bit-twiddle sequence instead of
# the `popcnt` instruction, which would make the grep vacuous), carves
# the `apc_reduce` body out of `objdump -d`, and asserts:
#
#   1. hardware popcounts are present (`popcnt` on x86_64, vector
#      `cnt` on aarch64),
#   2. nothing calls an outlined popcount helper (`__popcount*`), and
#   3. the hot region — everything between the first and the last
#      popcount — contains no `call` at all: the reduction loops are
#      straight-line code, with only the cold slice-bounds panic stubs
#      allowed past the final return.
#
# Loop back-edge branches are expected and allowed; what must not appear
# is a per-element data-dependent branch, which on this code shape LLVM
# only emits when the reduction fails to vectorize into popcount trees.
# The conditional-branch count of the hot region is printed for the
# record.
#
# Not wired into default CI (it needs objdump and a popcount-capable
# -C target-cpu); run it locally: scripts/check_apc_asm.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Separate target dir: -C target-cpu=native must not poison the shared
# incremental cache with non-portable codegen.
export CARGO_TARGET_DIR=target/asm-check
export RUSTFLAGS="-C target-cpu=native"

echo "building geo-sc test binary (release, target-cpu=native)..."
out=$(cargo test -p geo-sc --release --no-run 2>&1) || {
    echo "$out"
    exit 1
}
bin=$(echo "$out" | sed -n 's/.*(\(.*deps\/geo_sc-[0-9a-f]*\))/\1/p' | head -1)
if [ -z "$bin" ] || [ ! -x "$bin" ]; then
    echo "FAIL: could not locate the geo-sc test binary in cargo output" >&2
    echo "$out" >&2
    exit 1
fi
echo "disassembling $bin"

body=$(objdump -d --demangle "$bin" | awk '/^[0-9a-f]+ <geo_sc::apc::apc_reduce>:/{f=1} f && $0==""{f=0} f{print}')
if [ -z "$body" ]; then
    echo "FAIL: no apc_reduce symbol in the binary — was #[inline(never)] removed?" >&2
    exit 1
fi

case "$(uname -m)" in
x86_64)
    pop_re='popcnt'
    ;;
aarch64 | arm64)
    pop_re='[[:space:]]cnt[[:space:]]'
    ;;
*)
    echo "SKIP: no popcount-instruction pattern for $(uname -m)" >&2
    exit 0
    ;;
esac

pops=$(echo "$body" | grep -c -E "$pop_re" || true)
if [ "$pops" -eq 0 ]; then
    echo "FAIL: apc_reduce contains no hardware popcount instructions" >&2
    exit 1
fi
if echo "$body" | grep -E '(call|bl)[[:space:]].*popcount'; then
    echo "FAIL: apc_reduce calls an outlined popcount helper" >&2
    exit 1
fi

# Hot region = first popcount line .. last popcount line; the cold
# slice-bounds panic stubs sit after the final return and are excluded.
first=$(echo "$body" | grep -n -E "$pop_re" | head -1 | cut -d: -f1)
last=$(echo "$body" | grep -n -E "$pop_re" | tail -1 | cut -d: -f1)
hot=$(echo "$body" | sed -n "${first},${last}p")
calls=$(echo "$hot" | grep -c -E '[[:space:]](call|bl)[[:space:]]' || true)
branches=$(echo "$hot" | grep -c -E '[[:space:]](j(a|ae|b|be|e|g|ge|l|le|ne|s|ns|o|no|p|np)|b\.[a-z]+|cbn?z|tbn?z)[[:space:]]' || true)

echo "apc_reduce: $(echo "$body" | wc -l) lines total, hot region lines ${first}..${last}: $pops popcounts, $calls calls, $branches loop-control branches"
if [ "$calls" -ne 0 ]; then
    echo "FAIL: apc_reduce's hot region calls out of line — reduction is not self-contained:" >&2
    echo "$hot" | grep -E '[[:space:]](call|bl)[[:space:]]' >&2
    exit 1
fi
echo "PASS: apc_reduce is a branchless popcount reduction ($pops popcounts, loop control only in the hot region)"
