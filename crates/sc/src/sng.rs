//! Stochastic number generators: comparator of a target value against a
//! per-cycle random number.
//!
//! A stream of length `L` for target level `q` (out of `2^w`) has a one at
//! every cycle where `rng() < q`. With a maximal-length LFSR of width `w`
//! and `L = 2^w`, the ones count is exact to within one bit — the "almost
//! accurate generation" of paper §II-A.

use crate::bitstream::Bitstream;
use crate::encode::{quantize_unipolar, SplitStream, SplitValue};
use crate::rng::StreamRng;

/// Generates a stream of `len` cycles for quantized target `level`
/// (`0..=2^rng.width()`), consuming `len` values from `rng`.
///
/// The caller controls whether `rng` is reset beforehand; sharing one
/// running RNG across several calls models hardware RNG sharing.
///
/// # Examples
///
/// ```
/// use geo_sc::{generate_stream, Lfsr, StreamRng};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let mut lfsr = Lfsr::new(7, 1)?;
/// let s = generate_stream(64, 128, &mut lfsr);
/// // target 64 of 128 levels = 0.5, exact to 1 bit over a full period.
/// assert!((s.value() - 0.5).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
pub fn generate_stream(level: u32, len: usize, rng: &mut dyn StreamRng) -> Bitstream {
    Bitstream::from_fn(len, |_| rng.next_value() < level)
}

/// Generates a unipolar stream for `x ∈ [0, 1]`, quantized to the RNG width.
///
/// Resets deterministic RNGs first so the same `(x, rng)` pair always yields
/// the same stream — the repeatability GEO trains for.
pub fn generate_unipolar(x: f32, len: usize, rng: &mut dyn StreamRng) -> Bitstream {
    rng.reset();
    let level = quantize_unipolar(x, rng.width());
    generate_stream(level, len, rng)
}

/// Generates a split-unipolar stream pair for `w ∈ [-1, 1]`.
///
/// Both halves draw from the same RNG sequence (each half resets the RNG),
/// matching hardware where one LFSR feeds both comparators; since one half's
/// target is zero this costs nothing in correlation.
pub fn generate_split(w: f32, len: usize, rng: &mut dyn StreamRng) -> SplitStream {
    let sv = SplitValue::new(w);
    let pos = generate_unipolar(sv.pos, len, rng);
    let neg = generate_unipolar(sv.neg, len, rng);
    SplitStream::new(pos, neg)
}

/// A value-indexed stream lookup table for one RNG lane.
///
/// GEO shares each RNG across all kernels of a layer, so the stream for a
/// given quantized value on a given lane is fixed. Precomputing all
/// `2^w + 1` target levels turns stream generation during simulation into a
/// table lookup, which is what makes SC-in-the-loop training tractable.
#[derive(Debug, Clone)]
pub struct StreamTable {
    len: usize,
    width: u8,
    streams: Vec<Bitstream>,
}

// Tables are built once (serially, inside the engine's resolve phase) and
// then read concurrently by compute workers through `Arc<StreamTable>`;
// this compile-time pin keeps the type shareable-by-construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StreamTable>();
};

impl StreamTable {
    /// Precomputes streams of `len` cycles for every level `0..=2^w` of
    /// `rng` (which is reset before each level).
    pub fn new(len: usize, rng: &mut dyn StreamRng) -> Self {
        let width = rng.width();
        let levels = (1usize << width) + 1;
        let mut streams = Vec::with_capacity(levels);
        for level in 0..levels as u32 {
            rng.reset();
            streams.push(generate_stream(level, len, rng));
        }
        StreamTable {
            len,
            width,
            streams,
        }
    }

    /// Stream length in cycles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether streams have zero cycles.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// RNG width the table was built for.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of table entries, `2^width + 1`.
    pub fn levels(&self) -> u32 {
        self.streams.len() as u32
    }

    /// Mutable access for fault injection (crate-internal so table
    /// invariants stay under this module's control).
    pub(crate) fn stream_mut(&mut self, level: u32) -> &mut Bitstream {
        &mut self.streams[level as usize]
    }

    /// The stream for quantized `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level > 2^width`.
    pub fn stream(&self, level: u32) -> &Bitstream {
        &self.streams[level as usize]
    }

    /// The packed 64-bit words of the stream for quantized `level` —
    /// the direct form hot accumulation loops consume, skipping the
    /// [`Bitstream`] wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `level > 2^width`.
    #[inline]
    pub fn words(&self, level: u32) -> &[u64] {
        self.streams[level as usize].as_words()
    }

    /// The stream for a real value `x ∈ [0, 1]`.
    pub fn stream_for(&self, x: f32) -> &Bitstream {
        self.stream(quantize_unipolar(x, self.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;
    use crate::rng::{SobolRng, TrngRng};

    #[test]
    fn lfsr_generation_is_near_exact_over_full_period() {
        // Stream length 2^n with an n-bit LFSR: ones count within 1 of target.
        for width in [4u8, 6, 8] {
            let len = 1usize << width;
            let mut lfsr = Lfsr::new(width, 3).unwrap();
            for level in 0..=(1u32 << width) {
                lfsr.reset();
                let s = generate_stream(level, len, &mut lfsr);
                let err = i64::from(s.count_ones()) - i64::from(level);
                assert!(err.abs() <= 1, "width {width} level {level}: err {err}");
            }
        }
    }

    #[test]
    fn generation_is_repeatable_for_lfsr_not_for_trng() {
        let mut lfsr = Lfsr::new(8, 17).unwrap();
        let a = generate_unipolar(0.3, 256, &mut lfsr);
        let b = generate_unipolar(0.3, 256, &mut lfsr);
        assert_eq!(a, b);

        let mut trng = TrngRng::new(8, 17);
        let a = generate_unipolar(0.3, 256, &mut trng);
        let b = generate_unipolar(0.3, 256, &mut trng);
        assert_ne!(a, b);
    }

    #[test]
    fn sobol_generation_is_exact() {
        let mut ld = SobolRng::new(8, 0);
        for level in [0u32, 1, 77, 128, 255, 256] {
            ld.reset();
            let s = generate_stream(level, 256, &mut ld);
            assert_eq!(s.count_ones(), level, "LD sequences are exact per-stream");
        }
    }

    #[test]
    fn split_generation_routes_sign() {
        let mut lfsr = Lfsr::new(7, 5).unwrap();
        let s = generate_split(-0.5, 128, &mut lfsr);
        assert_eq!(s.pos.count_ones(), 0);
        assert!((s.value() + 0.5).abs() < 0.02);
        let s = generate_split(0.5, 128, &mut lfsr);
        assert_eq!(s.neg.count_ones(), 0);
    }

    #[test]
    fn stream_table_matches_direct_generation() {
        let mut lfsr = Lfsr::new(6, 9).unwrap();
        let table = StreamTable::new(64, &mut lfsr);
        for level in [0u32, 5, 32, 64] {
            lfsr.reset();
            let direct = generate_stream(level, 64, &mut lfsr);
            assert_eq!(table.stream(level), &direct);
        }
        assert_eq!(table.width(), 6);
        assert_eq!(table.len(), 64);
        assert!(!table.is_empty());
        assert_eq!(
            table.stream_for(0.5).count_ones(),
            table.stream(32).count_ones()
        );
    }

    #[test]
    fn monotone_levels_give_monotone_counts_for_lfsr() {
        let mut lfsr = Lfsr::new(8, 1).unwrap();
        let table = StreamTable::new(256, &mut lfsr);
        let mut prev = 0u32;
        for level in 0..=256u32 {
            let c = table.stream(level).count_ones();
            assert!(c >= prev, "level {level}");
            prev = c;
        }
    }
}
