//! The SC → fixed-point accumulation split (paper §III-B, Fig. 5).
//!
//! Where the boundary between stochastic OR-accumulation and exact binary
//! counting sits in the accumulation tree is a substrate-level property:
//! the engine uses it to pick accumulator groups, and the architecture
//! model uses it to size the partial-binary counters of each MAC row.
//! Hosting it here keeps `geo-core` (numerics) and `geo-arch` (area,
//! energy, ISA) on a shared vocabulary without depending on each other.

use serde::{Deserialize, Serialize};

/// Where the SC→fixed-point boundary sits in the accumulation tree
/// (paper §III-B, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Accumulation {
    /// Fully stochastic: OR over the whole `(Cin, H, W)` kernel
    /// (ACOUSTIC-style).
    Or,
    /// Partial binary along W: OR over `(Cin, H)`, parallel counter over W
    /// (GEO's default — near-PBHW accuracy at a fraction of the adders).
    Pbw,
    /// Partial binary along H and W: OR over `Cin`, counter over `(H, W)`.
    Pbhw,
    /// Fully fixed-point: every product converted and added exactly.
    Fxp,
    /// One layer of approximate parallel counting, then exact counting.
    Apc,
}

impl Accumulation {
    /// All modes, cheapest-hardware first.
    pub const ALL: [Accumulation; 5] = [
        Accumulation::Or,
        Accumulation::Pbw,
        Accumulation::Pbhw,
        Accumulation::Fxp,
        Accumulation::Apc,
    ];

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Accumulation::Or => "SC",
            Accumulation::Pbw => "PBW",
            Accumulation::Pbhw => "PBHW",
            Accumulation::Fxp => "FXP",
            Accumulation::Apc => "APC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_short_and_unique() {
        let labels: std::collections::HashSet<&str> =
            Accumulation::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), Accumulation::ALL.len());
        for a in Accumulation::ALL {
            assert!(!a.label().is_empty() && a.label().len() <= 4);
        }
    }
}
