//! Progressive stream generation and shadow buffering (paper §II-B, §III-D).
//!
//! A normal SNG waits until all 8 operand bits are in its buffer before the
//! comparator starts. A *progressive* SNG starts as soon as the 2
//! most-significant bits arrive; the remaining bits stream in 2-bit groups
//! every two cycles, with unloaded low bits read as zero. Because GEO
//! matches LFSR width to stream length, short streams truncate operands
//! anyway, and progressive loading stops at the LFSR width — fewer memory
//! accesses for free.
//!
//! Shadow buffers extend this: while the current phase computes, the *next*
//! operands' first 2-bit group is preloaded, so the next generation phase
//! can start on the cycle after the current one ends.

use crate::bitstream::Bitstream;
use crate::rng::StreamRng;
use serde::{Deserialize, Serialize};

/// Bits available at generation start (the 2 MSBs).
pub const INITIAL_BITS: u8 = 2;
/// Bits loaded per load group.
pub const BITS_PER_GROUP: u8 = 2;
/// Cycles between load groups.
pub const CYCLES_PER_GROUP: u32 = 2;
/// Full operand precision in memory.
pub const OPERAND_BITS: u8 = 8;

/// The progressive fill schedule: number of operand bits visible to the
/// comparator at `cycle`, for an SNG driven by a `width`-bit LFSR.
///
/// # Examples
///
/// ```
/// use geo_sc::progressive::bits_loaded_at;
///
/// assert_eq!(bits_loaded_at(0, 8), 2);
/// assert_eq!(bits_loaded_at(1, 8), 2);
/// assert_eq!(bits_loaded_at(2, 8), 4);
/// assert_eq!(bits_loaded_at(6, 8), 8);
/// assert_eq!(bits_loaded_at(6, 7), 7); // clamped to the LFSR width
/// ```
pub fn bits_loaded_at(cycle: u32, width: u8) -> u8 {
    let loaded = INITIAL_BITS as u32 + BITS_PER_GROUP as u32 * (cycle / CYCLES_PER_GROUP);
    loaded.min(width as u32) as u8
}

/// First cycle at which the comparator sees the fully loaded (width-bit)
/// value, i.e. generation becomes exact.
///
/// For an 8-bit LFSR this is cycle 6 — "accurate after eight cycles at
/// most" in the paper's counting.
pub fn first_exact_cycle(width: u8) -> u32 {
    let mut c = 0;
    while bits_loaded_at(c, width) < width {
        c += CYCLES_PER_GROUP;
    }
    c
}

/// Reload overhead in bit-groups that must land *before* generation can
/// start: the whole operand for a normal SNG, only the first group for a
/// progressive one — the 4× reload-latency reduction of §II-B.
pub fn reload_groups_before_start(progressive: bool) -> u32 {
    if progressive {
        1
    } else {
        (OPERAND_BITS / BITS_PER_GROUP) as u32
    }
}

/// Truncates an 8-bit operand to the top `width` bits (GEO matches LFSR
/// width to stream length, truncating the fixed-point value).
pub fn truncate_operand(value8: u8, width: u8) -> u32 {
    debug_assert!(width <= OPERAND_BITS);
    u32::from(value8) >> (OPERAND_BITS - width)
}

/// The comparator target at `cycle` under progressive loading: the
/// truncated operand with not-yet-loaded low bits forced to zero.
pub fn effective_level(value8: u8, width: u8, cycle: u32) -> u32 {
    let truncated = truncate_operand(value8, width);
    let loaded = bits_loaded_at(cycle, width);
    let mask = (((1u32 << loaded) - 1) << (width - loaded)) & ((1u32 << width) - 1);
    truncated & mask
}

/// A stochastic number generator with progressive operand loading.
///
/// # Examples
///
/// ```
/// use geo_sc::{progressive::ProgressiveSng, Lfsr, StreamRng};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let mut lfsr = Lfsr::new(7, 1)?;
/// let sng = ProgressiveSng::new(200);
/// let stream = sng.generate(128, &mut lfsr);
/// // Error confined to the first few cycles; the stream value is close.
/// assert!((stream.value() - 200.0 / 256.0).abs() < 0.08);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressiveSng {
    value8: u8,
}

impl ProgressiveSng {
    /// Creates a generator for one 8-bit operand.
    pub fn new(value8: u8) -> Self {
        ProgressiveSng { value8 }
    }

    /// The stored operand.
    pub fn value(&self) -> u8 {
        self.value8
    }

    /// Generates `len` cycles with the progressive fill schedule, resetting
    /// deterministic RNGs first.
    pub fn generate(&self, len: usize, rng: &mut dyn StreamRng) -> Bitstream {
        rng.reset();
        let width = rng.width();
        Bitstream::from_fn(len, |cycle| {
            rng.next_value() < effective_level(self.value8, width, cycle as u32)
        })
    }

    /// Generates with a *normal* (fully pre-loaded) SNG for comparison.
    pub fn generate_normal(&self, len: usize, rng: &mut dyn StreamRng) -> Bitstream {
        rng.reset();
        let level = truncate_operand(self.value8, rng.width());
        Bitstream::from_fn(len, |_| rng.next_value() < level)
    }
}

/// Behavioral model of a progressive SNG buffer with a shadow buffer.
///
/// The active buffer drives the comparator; the shadow buffer accepts the
/// next operand's bit groups during the current phase. `swap` promotes the
/// shadow contents, modeling the zero-gap phase transition of §III-D.
/// A shadow buffer sized for progressive generation holds only
/// [`INITIAL_BITS`] of the next operand — ¼ the area a full-width shadow
/// would need.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowBuffer {
    active: u8,
    active_bits: u8,
    shadow: u8,
    shadow_bits: u8,
}

impl ShadowBuffer {
    /// An empty buffer pair.
    pub fn new() -> Self {
        ShadowBuffer {
            active: 0,
            active_bits: 0,
            shadow: 0,
            shadow_bits: 0,
        }
    }

    /// Loads one [`BITS_PER_GROUP`]-bit group (MSB-first) of `next_value`
    /// into the shadow buffer. Returns `false` once the shadow holds
    /// [`INITIAL_BITS`] (its capacity under progressive generation).
    pub fn preload_group(&mut self, next_value: u8) -> bool {
        if self.shadow_bits >= INITIAL_BITS {
            return false;
        }
        let have = self.shadow_bits;
        let take = BITS_PER_GROUP.min(INITIAL_BITS - have);
        let group = (next_value >> (OPERAND_BITS - have - take)) & ((1 << take) - 1);
        self.shadow |= group << (OPERAND_BITS - have - take);
        self.shadow_bits += take;
        true
    }

    /// Loads one group directly into the active buffer (the per-phase
    /// progressive fill).
    pub fn load_group(&mut self, value: u8) {
        if self.active_bits >= OPERAND_BITS {
            return;
        }
        let have = self.active_bits;
        let take = BITS_PER_GROUP.min(OPERAND_BITS - have);
        let group = (value >> (OPERAND_BITS - have - take)) & ((1 << take) - 1);
        self.active |= group << (OPERAND_BITS - have - take);
        self.active_bits += take;
    }

    /// Promotes the shadow contents to active, clearing the shadow. The next
    /// phase can start immediately because the active buffer already holds
    /// [`INITIAL_BITS`].
    pub fn swap(&mut self) {
        self.active = self.shadow;
        self.active_bits = self.shadow_bits;
        self.shadow = 0;
        self.shadow_bits = 0;
    }

    /// Bits currently visible in the active buffer.
    pub fn active_bits(&self) -> u8 {
        self.active_bits
    }

    /// The active buffer contents (unloaded bits zero).
    pub fn active_value(&self) -> u8 {
        self.active
    }

    /// Whether the next phase can start without waiting on memory.
    pub fn next_phase_ready(&self) -> bool {
        self.shadow_bits >= INITIAL_BITS
    }
}

impl Default for ShadowBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;

    #[test]
    fn schedule_matches_paper_description() {
        // 2 MSBs at start, +2 bits every 2 cycles.
        let expect = [
            (0, 2),
            (1, 2),
            (2, 4),
            (3, 4),
            (4, 6),
            (5, 6),
            (6, 8),
            (7, 8),
            (100, 8),
        ];
        for (cycle, bits) in expect {
            assert_eq!(bits_loaded_at(cycle, 8), bits, "cycle {cycle}");
        }
        assert_eq!(first_exact_cycle(8), 6);
        assert_eq!(first_exact_cycle(7), 6);
        assert_eq!(first_exact_cycle(5), 4);
        assert_eq!(first_exact_cycle(3), 2);
    }

    #[test]
    fn reload_overhead_is_reduced_4x() {
        assert_eq!(
            reload_groups_before_start(false) / reload_groups_before_start(true),
            4
        );
    }

    #[test]
    fn effective_level_converges_to_truncated_value() {
        let v = 0b1011_0110u8;
        assert_eq!(effective_level(v, 8, 0), 0b1000_0000);
        assert_eq!(effective_level(v, 8, 2), 0b1011_0000);
        assert_eq!(effective_level(v, 8, 4), 0b1011_0100);
        assert_eq!(effective_level(v, 8, 6), u32::from(v));
        // 7-bit LFSR: truncation first, then progressive masking.
        assert_eq!(effective_level(v, 7, 6), u32::from(v) >> 1);
    }

    #[test]
    fn effective_level_never_exceeds_final() {
        for v in [0u8, 13, 77, 128, 255] {
            for width in [4u8, 7, 8] {
                let final_level = truncate_operand(v, width);
                let mut prev = 0;
                for cycle in 0..12 {
                    let l = effective_level(v, width, cycle);
                    assert!(l <= final_level);
                    assert!(l >= prev, "levels only grow as bits load");
                    prev = l;
                }
                assert_eq!(prev, final_level);
            }
        }
    }

    #[test]
    fn progressive_matches_normal_after_first_exact_cycle() {
        let mut lfsr = Lfsr::new(7, 11).unwrap();
        let sng = ProgressiveSng::new(173);
        let prog = sng.generate(128, &mut lfsr);
        let norm = sng.generate_normal(128, &mut lfsr);
        let exact_from = first_exact_cycle(7) as usize;
        for c in exact_from..128 {
            assert_eq!(prog.get(c), norm.get(c), "cycle {c}");
        }
        // And differs in at most `exact_from` early cycles.
        let diffs = (0..128).filter(|&c| prog.get(c) != norm.get(c)).count();
        assert!(diffs <= exact_from);
    }

    #[test]
    fn shadow_buffer_preloads_two_bits_and_swaps() {
        let mut buf = ShadowBuffer::new();
        assert!(!buf.next_phase_ready());
        assert!(buf.preload_group(0b1100_0000));
        assert!(buf.next_phase_ready());
        assert!(!buf.preload_group(0b1100_0000), "shadow capacity is 2 bits");
        buf.swap();
        assert_eq!(buf.active_bits(), INITIAL_BITS);
        assert_eq!(buf.active_value(), 0b1100_0000);
        assert!(!buf.next_phase_ready());
    }

    #[test]
    fn active_buffer_fills_progressively() {
        let v = 0b1011_0110;
        let mut buf = ShadowBuffer::new();
        for expected_bits in [2u8, 4, 6, 8] {
            buf.load_group(v);
            assert_eq!(buf.active_bits(), expected_bits);
            let mask = !((1u16 << (8 - expected_bits)) - 1) as u8;
            assert_eq!(buf.active_value(), v & mask);
        }
        buf.load_group(v); // saturates
        assert_eq!(buf.active_bits(), 8);
        assert_eq!(buf.active_value(), v);
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(ShadowBuffer::default(), ShadowBuffer::new());
    }
}
