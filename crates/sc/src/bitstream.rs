//! Packed stochastic bitstreams and the bitwise operations SC hardware
//! performs on them.
//!
//! A [`Bitstream`] stores one bit per clock cycle, packed 64 cycles per word.
//! In unipolar stochastic computing the *value* carried by a stream is the
//! fraction of ones, so a 128-cycle stream is just two `u64` words and every
//! logic operation (the AND of a multiplier, the OR of an accumulator) is a
//! handful of word operations.

use crate::error::ScError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A fixed-length stochastic bitstream, packed into 64-bit words.
///
/// Invariant: bits at positions `>= len` in the last word are always zero,
/// so equality, hashing and popcounts never see garbage tail bits.
///
/// # Examples
///
/// ```
/// use geo_sc::Bitstream;
///
/// // 8-cycle stream carrying value 3/8.
/// let s = Bitstream::from_bits([true, false, true, false, true, false, false, false]);
/// assert_eq!(s.count_ones(), 3);
/// assert!((s.value() - 0.375).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitstream {
    words: Vec<u64>,
    len: usize,
}

// The GEO engine shares streams (via `Arc`-held tables) across worker
// threads during its parallel compute phase. Pin the auto-trait
// obligation at compile time so an interior-mutability field can never
// sneak in silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Bitstream>();
};

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

#[inline]
fn tail_mask(len: usize) -> u64 {
    let rem = len % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl Bitstream {
    /// Creates an all-zero stream of `len` cycles (the stochastic value 0).
    ///
    /// # Examples
    ///
    /// ```
    /// let s = geo_sc::Bitstream::zeros(128);
    /// assert_eq!(s.len(), 128);
    /// assert_eq!(s.count_ones(), 0);
    /// ```
    pub fn zeros(len: usize) -> Self {
        Bitstream {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates an all-one stream of `len` cycles (the stochastic value 1).
    pub fn ones(len: usize) -> Self {
        let mut s = Bitstream {
            words: vec![u64::MAX; words_for(len)],
            len,
        };
        s.mask_tail();
        s
    }

    /// Builds a stream from per-cycle bits, cycle 0 first.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        let mut cur = 0u64;
        for b in bits {
            if len.is_multiple_of(64) && len > 0 {
                words.push(cur);
                cur = 0;
            }
            if b {
                cur |= 1u64 << (len % 64);
            }
            len += 1;
        }
        if len > 0 {
            words.push(cur);
        }
        Bitstream { words, len }
    }

    /// Builds a stream by evaluating `f(cycle)` for every cycle.
    ///
    /// This is how comparator-based stream generators are expressed: the
    /// closure compares the target value against the cycle's random number.
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        let mut s = Bitstream::zeros(len);
        for i in 0..len {
            if f(i) {
                s.set(i, true);
            }
        }
        s
    }

    /// Wraps raw packed words as a stream of `len` cycles.
    ///
    /// Tail bits beyond `len` are cleared to maintain the representation
    /// invariant.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `len` bits.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert!(
            words.len() * 64 >= len,
            "{} words cannot hold {len} bits",
            words.len()
        );
        words.truncate(words_for(len));
        let mut s = Bitstream { words, len };
        s.mask_tail();
        s
    }

    fn mask_tail(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.len);
        }
    }

    /// Number of cycles in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream has zero cycles.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle >= self.len()`.
    pub fn get(&self, cycle: usize) -> bool {
        assert!(cycle < self.len, "cycle {cycle} out of range {}", self.len);
        (self.words[cycle / 64] >> (cycle % 64)) & 1 == 1
    }

    /// Sets the bit at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle >= self.len()`.
    pub fn set(&mut self, cycle: usize, bit: bool) {
        assert!(cycle < self.len, "cycle {cycle} out of range {}", self.len);
        let w = &mut self.words[cycle / 64];
        let m = 1u64 << (cycle % 64);
        if bit {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Total number of one bits — the value counter a hardware output
    /// converter accumulates.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// The unipolar value carried by the stream: ones / length.
    ///
    /// Returns 0 for an empty stream.
    pub fn value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            f64::from(self.count_ones()) / self.len as f64
        }
    }

    /// Borrow of the packed words (tail bits beyond `len` are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Consumes the stream, returning its packed words.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Iterator over per-cycle bits, cycle 0 first.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            stream: self,
            cycle: 0,
        }
    }

    /// In-place AND with `rhs` — a stochastic unipolar multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if the stream lengths differ.
    pub fn and_assign(&mut self, rhs: &Bitstream) -> Result<(), ScError> {
        self.check_len(rhs)?;
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a &= *b;
        }
        Ok(())
    }

    /// In-place OR with `rhs` — one level of OR accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if the stream lengths differ.
    pub fn or_assign(&mut self, rhs: &Bitstream) -> Result<(), ScError> {
        self.check_len(rhs)?;
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a |= *b;
        }
        Ok(())
    }

    /// In-place XOR with `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if the stream lengths differ.
    pub fn xor_assign(&mut self, rhs: &Bitstream) -> Result<(), ScError> {
        self.check_len(rhs)?;
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a ^= *b;
        }
        Ok(())
    }

    /// Number of cycles where both streams are one (AND popcount) without
    /// materializing the AND stream.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::LengthMismatch`] if the stream lengths differ.
    pub fn overlap(&self, rhs: &Bitstream) -> Result<u32, ScError> {
        self.check_len(rhs)?;
        Ok(self
            .words
            .iter()
            .zip(&rhs.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum())
    }

    fn check_len(&self, rhs: &Bitstream) -> Result<(), ScError> {
        if self.len != rhs.len {
            Err(ScError::LengthMismatch {
                left: self.len,
                right: rhs.len,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitstream[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Bitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ({}/{})",
            self.value(),
            self.count_ones(),
            self.len
        )
    }
}

/// Iterator over the bits of a [`Bitstream`], produced by
/// [`Bitstream::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    stream: &'a Bitstream,
    cycle: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.cycle < self.stream.len {
            let b = self.stream.get(self.cycle);
            self.cycle += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.stream.len - self.cycle;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a Bitstream {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<bool> for Bitstream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Bitstream::from_bits(iter)
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $assign:ident, $doc:literal) => {
        impl $trait<&Bitstream> for &Bitstream {
            type Output = Bitstream;

            #[doc = $doc]
            ///
            /// # Panics
            ///
            /// Panics if the stream lengths differ; use the fallible
            /// `*_assign` methods to handle mismatches gracefully.
            fn $method(self, rhs: &Bitstream) -> Bitstream {
                let mut out = self.clone();
                if out.$assign(rhs).is_err() {
                    panic!("bitstream length mismatch: {} vs {}", self.len(), rhs.len());
                }
                out
            }
        }
    };
}

binop!(
    BitAnd,
    bitand,
    and_assign,
    "Cycle-wise AND — a stochastic unipolar multiplication."
);
binop!(BitOr, bitor, or_assign, "Cycle-wise OR — OR accumulation.");
binop!(BitXor, bitxor, xor_assign, "Cycle-wise XOR.");

impl Not for &Bitstream {
    type Output = Bitstream;

    /// Cycle-wise NOT — the stochastic complement `1 - x`.
    fn not(self) -> Bitstream {
        let mut out = Bitstream {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_counts() {
        for len in [0usize, 1, 63, 64, 65, 128, 200] {
            assert_eq!(Bitstream::zeros(len).count_ones(), 0);
            assert_eq!(Bitstream::ones(len).count_ones(), len as u32);
        }
    }

    #[test]
    fn ones_tail_is_masked() {
        let s = Bitstream::ones(70);
        assert_eq!(s.as_words().len(), 2);
        assert_eq!(s.as_words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn from_bits_round_trips_through_get() {
        let bits = [true, false, false, true, true, false, true, false, true];
        let s = Bitstream::from_bits(bits);
        assert_eq!(s.len(), 9);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(s.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn from_fn_matches_from_bits() {
        let s1 = Bitstream::from_fn(100, |i| i % 3 == 0);
        let s2 = Bitstream::from_bits((0..100).map(|i| i % 3 == 0));
        assert_eq!(s1, s2);
    }

    #[test]
    fn from_words_masks_tail() {
        let s = Bitstream::from_words(vec![u64::MAX], 10);
        assert_eq!(s.count_ones(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn from_words_rejects_short_vectors() {
        let _ = Bitstream::from_words(vec![0], 65);
    }

    #[test]
    fn value_is_ones_fraction() {
        let s = Bitstream::from_bits((0..128).map(|i| i < 32));
        assert!((s.value() - 0.25).abs() < 1e-12);
        assert_eq!(Bitstream::zeros(0).value(), 0.0);
    }

    #[test]
    fn and_is_multiplication_for_uncorrelated_patterns() {
        // Deterministic interleavings: 1/2 AND 1/2 with offset phases.
        let a = Bitstream::from_fn(64, |i| i % 2 == 0);
        let b = Bitstream::from_fn(64, |i| i % 4 < 2);
        let p = &a & &b;
        assert!((p.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn or_never_loses_ones() {
        let a = Bitstream::from_fn(96, |i| i % 5 == 0);
        let b = Bitstream::from_fn(96, |i| i % 7 == 0);
        let o = &a | &b;
        assert!(o.count_ones() >= a.count_ones().max(b.count_ones()));
        assert!(o.count_ones() <= a.count_ones() + b.count_ones());
    }

    #[test]
    fn not_is_complement() {
        let a = Bitstream::from_fn(100, |i| i % 3 == 0);
        let n = !&a;
        assert_eq!(n.count_ones() + a.count_ones(), 100);
        assert!((n.value() - (1.0 - a.value())).abs() < 1e-12);
    }

    #[test]
    fn xor_matches_bitwise_definition() {
        let a = Bitstream::from_fn(70, |i| i % 2 == 0);
        let b = Bitstream::from_fn(70, |i| i % 3 == 0);
        let x = &a ^ &b;
        for i in 0..70 {
            assert_eq!(x.get(i), a.get(i) ^ b.get(i));
        }
    }

    #[test]
    fn overlap_equals_and_popcount() {
        let a = Bitstream::from_fn(130, |i| i % 2 == 0);
        let b = Bitstream::from_fn(130, |i| i % 5 != 0);
        assert_eq!(a.overlap(&b).unwrap(), (&a & &b).count_ones());
    }

    #[test]
    fn length_mismatch_is_reported() {
        let a = Bitstream::zeros(10);
        let b = Bitstream::zeros(20);
        assert_eq!(
            a.clone().and_assign(&b),
            Err(ScError::LengthMismatch {
                left: 10,
                right: 20
            })
        );
        assert!(a.overlap(&b).is_err());
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut s = Bitstream::zeros(65);
        s.set(64, true);
        assert!(s.get(64));
        s.set(64, false);
        assert!(!s.get(64));
    }

    #[test]
    fn iterator_yields_all_bits_in_order() {
        let s = Bitstream::from_fn(67, |i| i % 2 == 1);
        let collected: Vec<bool> = s.iter().collect();
        assert_eq!(collected.len(), 67);
        assert!(collected[1] && !collected[0]);
        let round: Bitstream = s.iter().collect();
        assert_eq!(round, s);
    }

    #[test]
    fn debug_is_nonempty_and_truncated() {
        let s = Bitstream::zeros(0);
        assert!(!format!("{s:?}").is_empty());
        let long = Bitstream::ones(100);
        assert!(format!("{long:?}").contains('…'));
    }
}
