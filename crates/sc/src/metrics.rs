//! Accuracy and correlation metrics for stochastic streams.
//!
//! The stochastic cross-correlation (SCC) of Alaghi & Hayes quantifies how
//! far two streams are from independence: `+1` is maximal overlap (AND
//! computes `min`), `0` is independence (AND computes the product), `-1` is
//! maximal avoidance (AND computes `max(x+y-1, 0)`). RNG sharing moves SCC
//! away from zero, which is exactly the bias GEO's training absorbs.

use crate::bitstream::Bitstream;
use crate::error::ScError;

/// Stochastic cross-correlation of two equal-length streams.
///
/// Returns 0 when either stream is constant (no correlation is defined; by
/// convention it does not bias AND either way).
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if the lengths differ.
///
/// # Examples
///
/// ```
/// use geo_sc::{metrics::scc, Bitstream};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let a = Bitstream::from_fn(8, |i| i < 4);
/// assert!((scc(&a, &a)? - 1.0).abs() < 1e-12); // identical → +1
/// let b = Bitstream::from_fn(8, |i| i >= 4);
/// assert!((scc(&a, &b)? + 1.0).abs() < 1e-12); // disjoint → −1
/// # Ok(())
/// # }
/// ```
pub fn scc(a: &Bitstream, b: &Bitstream) -> Result<f64, ScError> {
    if a.len() != b.len() {
        return Err(ScError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let n = a.len() as f64;
    if a.is_empty() {
        return Ok(0.0);
    }
    let p_a = a.value();
    let p_b = b.value();
    let p_ab = f64::from(a.overlap(b)?) / n;
    let delta = p_ab - p_a * p_b;
    let denom = if delta > 0.0 {
        p_a.min(p_b) - p_a * p_b
    } else {
        p_a * p_b - (p_a + p_b - 1.0).max(0.0)
    };
    if denom.abs() < 1e-12 {
        Ok(0.0)
    } else {
        // Clamp away float rounding at the ±1 extremes.
        Ok((delta / denom).clamp(-1.0, 1.0))
    }
}

/// Root-mean-square error between paired observations.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rms_error(measured: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(measured.len(), reference.len(), "paired samples required");
    if measured.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = measured
        .iter()
        .zip(reference)
        .map(|(m, r)| (m - r) * (m - r))
        .sum();
    (sum_sq / measured.len() as f64).sqrt()
}

/// Mean absolute error between paired observations.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_abs_error(measured: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(measured.len(), reference.len(), "paired samples required");
    if measured.is_empty() {
        return 0.0;
    }
    let sum: f64 = measured
        .iter()
        .zip(reference)
        .map(|(m, r)| (m - r).abs())
        .sum();
    sum / measured.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;
    use crate::sng::generate_unipolar;

    #[test]
    fn scc_of_identical_streams_is_one() {
        let mut lfsr = Lfsr::new(8, 7).unwrap();
        let a = generate_unipolar(0.4, 256, &mut lfsr);
        assert!((scc(&a, &a).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scc_of_decorrelated_lfsrs_is_near_zero() {
        let mut r1 = Lfsr::with_polynomial(8, 0, 3).unwrap();
        let mut r2 = Lfsr::with_polynomial(8, 1, 119).unwrap();
        let a = generate_unipolar(0.5, 256, &mut r1);
        let b = generate_unipolar(0.5, 256, &mut r2);
        let c = scc(&a, &b).unwrap();
        assert!(c.abs() < 0.35, "scc {c}");
    }

    #[test]
    fn scc_same_seed_shared_rng_is_high() {
        // Extreme sharing: same seed, same polynomial → near-total overlap.
        let mut r1 = Lfsr::new(8, 42).unwrap();
        let mut r2 = Lfsr::new(8, 42).unwrap();
        let a = generate_unipolar(0.3, 256, &mut r1);
        let b = generate_unipolar(0.6, 256, &mut r2);
        let c = scc(&a, &b).unwrap();
        assert!(c > 0.9, "scc {c}");
    }

    #[test]
    fn scc_constant_stream_is_zero() {
        let a = Bitstream::ones(64);
        let b = Bitstream::from_fn(64, |i| i % 2 == 0);
        assert_eq!(scc(&a, &b).unwrap(), 0.0);
        assert_eq!(
            scc(&Bitstream::zeros(0), &Bitstream::zeros(0)).unwrap(),
            0.0
        );
    }

    #[test]
    fn scc_length_mismatch_errors() {
        assert!(scc(&Bitstream::zeros(8), &Bitstream::zeros(9)).is_err());
    }

    #[test]
    fn rms_and_mae_known_values() {
        let m = [1.0, 2.0, 3.0];
        let r = [1.0, 1.0, 1.0];
        assert!((rms_error(&m, &r) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mean_abs_error(&m, &r) - 1.0).abs() < 1e-12);
        assert_eq!(rms_error(&[], &[]), 0.0);
        assert_eq!(mean_abs_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn rms_rejects_unpaired() {
        let _ = rms_error(&[1.0], &[]);
    }
}
