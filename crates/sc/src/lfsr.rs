//! Maximal-length linear feedback shift registers.
//!
//! GEO's stream generators are deterministic: an `n`-bit maximal-length LFSR
//! drives the comparator of every stochastic number generator, so the same
//! input value always produces the same bitstream. That determinism is what
//! lets training absorb the generation bias (paper §II-A). Streams of length
//! `2^n` use an `n`-bit LFSR whose cycle visits all `2^n - 1` nonzero states.
//!
//! Decorrelated generators are obtained by varying the **seed** or the
//! **characteristic polynomial**; [`Lfsr::with_polynomial`] exposes both axes.

use crate::error::ScError;
use crate::rng::StreamRng;
use serde::{Deserialize, Serialize};

/// Supported LFSR widths (stream lengths 8..=65536).
pub const MIN_WIDTH: u8 = 3;
/// Maximum supported LFSR width.
pub const MAX_WIDTH: u8 = 16;

/// Fibonacci tap positions (1-indexed from the output bit, XAPP052-style) of
/// one primitive polynomial per width. The reciprocal polynomial of each is
/// also primitive and serves as the built-in alternate.
const CANONICAL_TAPS: [&[u8]; 14] = [
    &[3, 2],          // width 3
    &[4, 3],          // 4
    &[5, 3],          // 5
    &[6, 5],          // 6
    &[7, 6],          // 7
    &[8, 6, 5, 4],    // 8
    &[9, 5],          // 9
    &[10, 7],         // 10
    &[11, 9],         // 11
    &[12, 6, 4, 1],   // 12
    &[13, 4, 3, 1],   // 13
    &[14, 5, 3, 1],   // 14
    &[15, 14],        // 15
    &[16, 15, 13, 4], // 16
];

fn taps_to_mask(width: u8, taps: &[u8]) -> u32 {
    let mut mask = 0u32;
    for &t in taps {
        debug_assert!(t >= 1 && t <= width);
        mask |= 1 << (t - 1);
    }
    mask
}

/// The reciprocal polynomial of a primitive polynomial is primitive: tap `k`
/// maps to `n - k` (with the degree-`n` term fixed).
fn reciprocal_mask(width: u8, taps: &[u8]) -> u32 {
    let mut out = vec![width];
    for &t in taps {
        if t != width {
            out.push(width - t);
        }
    }
    taps_to_mask(width, &out)
}

/// Number of built-in primitive polynomials for `width`.
///
/// Currently two per width: the canonical polynomial and its reciprocal.
/// Combined with `2^n - 1` distinct seeds this gives `2 * (2^n - 1)` unique
/// generators per width — the "availability of unique RNG seeds" limit that
/// bounds moderate sharing (paper §II-A).
pub fn polynomial_count(width: u8) -> usize {
    if (MIN_WIDTH..=MAX_WIDTH).contains(&width) {
        2
    } else {
        0
    }
}

/// A maximal-length Fibonacci LFSR used as the RNG of a stochastic number
/// generator.
///
/// The full register state is exposed as the per-cycle random number, the
/// common arrangement when the LFSR feeds an SNG comparator.
///
/// # Examples
///
/// ```
/// use geo_sc::{Lfsr, StreamRng};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let mut lfsr = Lfsr::new(7, 1)?;
/// assert_eq!(lfsr.period(), 127);
/// let first = lfsr.next_value();
/// for _ in 0..126 {
///     lfsr.next_value();
/// }
/// // Maximal length: the sequence repeats after exactly 2^7 - 1 steps.
/// assert_eq!(lfsr.next_value(), first);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lfsr {
    width: u8,
    tap_mask: u32,
    seed_state: u32,
    state: u32,
}

impl Lfsr {
    /// Creates an LFSR with the canonical primitive polynomial for `width`.
    ///
    /// Any `seed` is accepted and folded onto the nonzero state space, so
    /// callers can hand out consecutive integers as seeds.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidWidth`] if `width` is outside `3..=16`.
    pub fn new(width: u8, seed: u32) -> Result<Self, ScError> {
        Self::with_polynomial(width, 0, seed)
    }

    /// Creates an LFSR with the `poly_index`-th primitive polynomial.
    ///
    /// Index 0 is the canonical polynomial, index 1 its reciprocal.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidWidth`] for unsupported widths and
    /// [`ScError::InvalidPolynomial`] for out-of-range polynomial indices.
    pub fn with_polynomial(width: u8, poly_index: usize, seed: u32) -> Result<Self, ScError> {
        if !(MIN_WIDTH..=MAX_WIDTH).contains(&width) {
            return Err(ScError::InvalidWidth { width });
        }
        let taps = CANONICAL_TAPS[(width - MIN_WIDTH) as usize];
        let tap_mask = match poly_index {
            0 => taps_to_mask(width, taps),
            1 => reciprocal_mask(width, taps),
            _ => {
                return Err(ScError::InvalidPolynomial {
                    width,
                    index: poly_index,
                })
            }
        };
        let period = (1u32 << width) - 1;
        let seed_state = seed % period + 1; // fold onto 1..=2^n-1
        Ok(Lfsr {
            width,
            tap_mask,
            seed_state,
            state: seed_state,
        })
    }

    /// The cycle length, `2^width - 1`.
    pub fn period(&self) -> u32 {
        (1u32 << self.width) - 1
    }

    /// The nonzero state the generator (re)starts from.
    pub fn seed_state(&self) -> u32 {
        self.seed_state
    }

    /// The feedback tap mask (bit `k` set means tap at position `k + 1`).
    pub fn tap_mask(&self) -> u32 {
        self.tap_mask
    }

    #[inline]
    fn step(&mut self) {
        let fb = (self.state & self.tap_mask).count_ones() & 1;
        self.state = ((self.state << 1) | fb) & ((1u32 << self.width) - 1);
    }
}

impl StreamRng for Lfsr {
    fn width(&self) -> u8 {
        self.width
    }

    fn next_value(&mut self) -> u32 {
        let out = self.state;
        self.step();
        out
    }

    fn reset(&mut self) {
        self.state = self.seed_state;
    }

    fn is_deterministic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_width_and_polynomial_is_maximal_length() {
        for width in MIN_WIDTH..=MAX_WIDTH {
            for poly in 0..polynomial_count(width) {
                let mut lfsr = Lfsr::with_polynomial(width, poly, 1).unwrap();
                let period = lfsr.period() as usize;
                let mut seen = HashSet::with_capacity(period);
                for _ in 0..period {
                    assert!(
                        seen.insert(lfsr.next_value()),
                        "state repeated early for width {width} poly {poly}"
                    );
                }
                // All nonzero states visited exactly once.
                assert_eq!(seen.len(), period);
                assert!(!seen.contains(&0));
            }
        }
    }

    #[test]
    fn reset_restores_the_seed_sequence() {
        let mut lfsr = Lfsr::new(8, 42).unwrap();
        let first: Vec<u32> = (0..20).map(|_| lfsr.next_value()).collect();
        lfsr.reset();
        let second: Vec<u32> = (0..20).map(|_| lfsr.next_value()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn seeds_fold_onto_nonzero_states() {
        for seed in [0u32, 1, 254, 255, 256, u32::MAX] {
            let lfsr = Lfsr::new(8, seed).unwrap();
            assert!(lfsr.seed_state() >= 1 && lfsr.seed_state() <= 255);
        }
        // Distinct small seeds give distinct start states.
        let states: HashSet<u32> = (0..255)
            .map(|s| Lfsr::new(8, s).unwrap().seed_state())
            .collect();
        assert_eq!(states.len(), 255);
    }

    #[test]
    fn different_polynomials_differ() {
        let mut a = Lfsr::with_polynomial(8, 0, 1).unwrap();
        let mut b = Lfsr::with_polynomial(8, 1, 1).unwrap();
        let sa: Vec<u32> = (0..32).map(|_| a.next_value()).collect();
        let sb: Vec<u32> = (0..32).map(|_| b.next_value()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn invalid_widths_and_polynomials_are_rejected() {
        assert_eq!(
            Lfsr::new(2, 1).unwrap_err(),
            ScError::InvalidWidth { width: 2 }
        );
        assert_eq!(
            Lfsr::new(17, 1).unwrap_err(),
            ScError::InvalidWidth { width: 17 }
        );
        assert_eq!(
            Lfsr::with_polynomial(8, 2, 1).unwrap_err(),
            ScError::InvalidPolynomial { width: 8, index: 2 }
        );
    }

    #[test]
    fn deterministic_flag_is_set() {
        assert!(Lfsr::new(8, 1).unwrap().is_deterministic());
    }
}
