//! # geo-sc — stochastic computing substrate
//!
//! The stochastic-computing foundation of the GEO reproduction ("GEO:
//! Generation and Execution Optimized Stochastic Computing Accelerator for
//! Neural Networks", DATE 2021): packed [`Bitstream`]s, deterministic
//! maximal-length [`Lfsr`]s, simulated TRNG and low-discrepancy sources,
//! comparator-based stream generation, progressive generation with shadow
//! buffering, split-unipolar encoding, SC arithmetic (AND multiply, OR
//! accumulate, MUX add, exact and approximate parallel counters), and
//! correlation/error metrics.
//!
//! # Examples
//!
//! A stochastic multiply-accumulate with decorrelated LFSRs:
//!
//! ```
//! use geo_sc::{generate_unipolar, ops, Lfsr};
//!
//! # fn main() -> Result<(), geo_sc::ScError> {
//! let mut ra = Lfsr::new(7, 1)?;
//! let mut rb = Lfsr::with_polynomial(7, 1, 60)?;
//! let a = generate_unipolar(0.5, 128, &mut ra);
//! let b = generate_unipolar(0.4, 128, &mut rb);
//! let product = ops::and_mul(&a, &b)?;
//! assert!((product.value() - 0.2).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod accum;
pub mod apc;
pub mod bipolar;
mod bitstream;
pub mod deterministic;
mod encode;
mod error;
pub mod fault;
mod lfsr;
pub mod metrics;
pub mod ops;
pub mod progressive;
mod rng;
pub mod sharing;
mod sng;
pub mod telemetry;

pub use accum::Accumulation;
pub use bitstream::{Bitstream, Iter};
pub use encode::{dequantize_unipolar, quantize_unipolar, SplitStream, SplitValue};
pub use error::ScError;
pub use fault::{FaultCounters, FaultInjector, FaultModel, StuckAtRng};
pub use lfsr::{polynomial_count, Lfsr, MAX_WIDTH, MIN_WIDTH};
pub use progressive::{ProgressiveSng, ShadowBuffer};
pub use rng::{SobolRng, StreamRng, TrngRng};
pub use sharing::{KernelDims, RngKind, RngSpec, SeedPlan, SharingLevel};
pub use sng::{generate_split, generate_stream, generate_unipolar, StreamTable};
