//! Deterministic, seeded fault injection for the SC datapath.
//!
//! Stochastic computing is often claimed to be inherently fault tolerant: a
//! single bit flip in a stream of length `L` perturbs the encoded value by
//! at most `1/L`, whereas a flip in a binary word can be worth half the
//! dynamic range. This module makes that claim testable. It models four
//! hardware fault classes of the GEO datapath:
//!
//! * **Stream bit errors** ([`FaultModel::stream_ber`]) — transient
//!   single-event upsets on generated/buffered stream bits, applied
//!   independently per bit at a given bit-error rate (BER).
//! * **LFSR stuck-at taps** ([`FaultModel::lfsr_stuck_rate`]) — permanent
//!   manufacturing defects: an affected generator lane has one output tap
//!   stuck at one for its whole lifetime ([`StuckAtRng`]).
//! * **SNG seed corruption** ([`FaultModel::seed_corruption_rate`]) —
//!   permanent corruption of a seed register, so the affected generator
//!   walks a different (but still maximal-length) sequence.
//! * **SRAM word errors** ([`FaultModel::sram_word_ber`]) — transient
//!   single-bit upsets in buffered 64-bit stream words, one flipped bit per
//!   affected word (the classic SEU model ECC is sized against).
//!
//! Injection is **deterministic**: every decision is a pure function of the
//! model seed, a caller-supplied *domain* (which generator / which level),
//! and — for transient faults only — the pass counter. The same seed
//! reproduces the same fault universe regardless of call order, and a model
//! with all rates zero ([`FaultModel::none`]) is bit-for-bit identical to
//! not injecting at all.
//!
//! # Examples
//!
//! ```
//! use geo_sc::fault::{FaultInjector, FaultModel};
//! use geo_sc::{generate_unipolar, Lfsr};
//!
//! # fn main() -> Result<(), geo_sc::ScError> {
//! let mut lfsr = Lfsr::new(7, 1)?;
//! let clean = generate_unipolar(0.5, 128, &mut lfsr);
//!
//! let mut inj = FaultInjector::new(FaultModel::with_stream_ber(0.05, 7))?;
//! let mut faulty = clean.clone();
//! inj.corrupt_level(42, 64, &mut faulty);
//! assert_ne!(clean, faulty);
//! assert!(inj.counters().stream_bits_flipped > 0);
//! # Ok(())
//! # }
//! ```

use crate::bitstream::Bitstream;
use crate::error::ScError;
use crate::rng::StreamRng;
use crate::sharing::RngSpec;
use crate::sng::StreamTable;

/// Rates and seed of one fault universe.
///
/// All rates are probabilities in `[0, 1]`. Static faults (stuck taps, seed
/// corruption) are decided once per generator; transient faults (stream and
/// SRAM bit errors) are redrawn every generation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Per-bit flip probability on generated stream bits (transient).
    pub stream_ber: f64,
    /// Probability that a generator lane has one output tap stuck at one
    /// (static, per generator).
    pub lfsr_stuck_rate: f64,
    /// Probability that a generator's seed register is corrupted (static,
    /// per generator).
    pub seed_corruption_rate: f64,
    /// Per-64-bit-word probability of a single-bit upset in buffered stream
    /// words (transient).
    pub sram_word_ber: f64,
    /// Seed of the fault universe; the same seed reproduces the same
    /// faults.
    pub seed: u64,
}

impl FaultModel {
    /// The fault-free model: all rates zero. An engine configured with this
    /// model is bit-for-bit identical to one without fault injection.
    pub fn none() -> Self {
        FaultModel {
            stream_ber: 0.0,
            lfsr_stuck_rate: 0.0,
            seed_corruption_rate: 0.0,
            sram_word_ber: 0.0,
            seed: 0,
        }
    }

    /// A model with only transient stream bit errors at `ber`.
    pub fn with_stream_ber(ber: f64, seed: u64) -> Self {
        FaultModel {
            stream_ber: ber,
            seed,
            ..FaultModel::none()
        }
    }

    /// Whether every rate is exactly zero (no injection will occur).
    pub fn is_none(&self) -> bool {
        self.stream_ber == 0.0
            && self.lfsr_stuck_rate == 0.0
            && self.seed_corruption_rate == 0.0
            && self.sram_word_ber == 0.0
    }

    /// Whether any transient (per-pass) fault class is active.
    pub fn has_transient(&self) -> bool {
        self.stream_ber > 0.0 || self.sram_word_ber > 0.0
    }

    /// Validates that every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidFaultRate`] for any rate outside `[0, 1]`
    /// or NaN.
    pub fn validate(&self) -> Result<(), ScError> {
        for (name, value) in [
            ("stream_ber", self.stream_ber),
            ("lfsr_stuck_rate", self.lfsr_stuck_rate),
            ("seed_corruption_rate", self.seed_corruption_rate),
            ("sram_word_ber", self.sram_word_ber),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(ScError::InvalidFaultRate { name, value });
            }
        }
        Ok(())
    }
}

/// Counts of injected faults, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient stream bits flipped.
    pub stream_bits_flipped: u64,
    /// Buffered 64-bit words hit by an SRAM upset.
    pub sram_words_upset: u64,
    /// Generators whose seed register was corrupted.
    pub seeds_corrupted: u64,
    /// Generator lanes with a stuck-at-one tap.
    pub stuck_lanes: u64,
}

impl FaultCounters {
    /// Total injected fault events across all classes.
    pub fn total(&self) -> u64 {
        self.stream_bits_flipped + self.sram_words_upset + self.seeds_corrupted + self.stuck_lanes
    }

    /// Whether any fault was injected.
    pub fn any(&self) -> bool {
        self.total() > 0
    }

    /// Adds `other` into `self` (per-class).
    pub fn accumulate(&mut self, other: &FaultCounters) {
        self.stream_bits_flipped += other.stream_bits_flipped;
        self.sram_words_upset += other.sram_words_upset;
        self.seeds_corrupted += other.seeds_corrupted;
        self.stuck_lanes += other.stuck_lanes;
    }

    /// Per-class difference `self - earlier` (saturating), for snapshots
    /// around a region of interest.
    pub fn delta_since(&self, earlier: &FaultCounters) -> FaultCounters {
        FaultCounters {
            stream_bits_flipped: self
                .stream_bits_flipped
                .saturating_sub(earlier.stream_bits_flipped),
            sram_words_upset: self
                .sram_words_upset
                .saturating_sub(earlier.sram_words_upset),
            seeds_corrupted: self.seeds_corrupted.saturating_sub(earlier.seeds_corrupted),
            stuck_lanes: self.stuck_lanes.saturating_sub(earlier.stuck_lanes),
        }
    }
}

/// Mixes caller-supplied parts into a stable 64-bit fault domain.
///
/// Domains identify *where* a fault can land (a generator, a table level);
/// two distinct domains draw independent faults, and the same domain always
/// draws the same static faults.
pub fn domain(parts: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        h = splitmix64(&mut { h ^ p });
    }
    h
}

/// SplitMix64 step: advances `state` and returns a mixed output. Local to
/// this module so the fault universe never depends on an external RNG
/// implementation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small deterministic RNG over one fault domain.
struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// RNG for `(seed, domain, salt)` — pure function of its arguments, so
    /// decisions are independent of call order.
    fn keyed(seed: u64, dom: u64, salt: u64) -> Self {
        let mut state = seed;
        state = splitmix64(&mut { state ^ dom.rotate_left(17) });
        state = splitmix64(&mut { state ^ salt.rotate_left(43) });
        FaultRng { state }
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in the half-open unit interval `(0, 1]` (never zero, so
    /// `ln()` is always finite).
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() <= p
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Salts separating the fault classes within one domain.
mod salt {
    pub const SEED_CORRUPTION: u64 = 0x5EED;
    pub const STUCK_TAP: u64 = 0x57AC;
    pub const STREAM_BER: u64 = 0xB17F;
    pub const SRAM_WORD: u64 = 0x50AD;
}

/// Applies a [`FaultModel`] deterministically, counting what it injects.
///
/// Static decisions depend only on `(model.seed, domain)`; transient
/// decisions additionally mix the pass counter, so every generation pass
/// draws fresh upsets while two injectors with the same seed and pass
/// history stay bit-for-bit identical.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    model: FaultModel,
    pass: u64,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector for a validated model.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidFaultRate`] if a rate is not a
    /// probability.
    pub fn new(model: FaultModel) -> Result<Self, ScError> {
        model.validate()?;
        Ok(FaultInjector {
            model,
            pass: 0,
            counters: FaultCounters::default(),
        })
    }

    /// The model being applied.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Counts of everything injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Advances the transient-fault pass counter. Streams regenerated after
    /// this call draw fresh transient upsets.
    pub fn begin_pass(&mut self) {
        self.pass = self.pass.wrapping_add(1);
    }

    /// Current pass index.
    pub fn pass(&self) -> u64 {
        self.pass
    }

    /// Static SNG seed corruption: with probability
    /// [`FaultModel::seed_corruption_rate`] the spec's seed is XORed with a
    /// domain-derived nonzero value.
    pub fn corrupt_spec(&mut self, dom: u64, spec: RngSpec) -> RngSpec {
        let mut rng = FaultRng::keyed(self.model.seed, dom, salt::SEED_CORRUPTION);
        if !rng.bernoulli(self.model.seed_corruption_rate) {
            return spec;
        }
        self.counters.seeds_corrupted += 1;
        let flip = (rng.next_u64() as u32) | 1; // nonzero: the seed does change
        RngSpec {
            seed: spec.seed ^ flip,
            poly: spec.poly,
        }
    }

    /// Static stuck-at-one tap for the generator in `dom`: the OR-mask to
    /// apply to its output values (zero for healthy lanes, one bit within
    /// `width` for afflicted ones).
    pub fn stuck_mask(&mut self, dom: u64, width: u8) -> u32 {
        let mut rng = FaultRng::keyed(self.model.seed, dom, salt::STUCK_TAP);
        if width == 0 || !rng.bernoulli(self.model.lfsr_stuck_rate) {
            return 0;
        }
        self.counters.stuck_lanes += 1;
        1u32 << rng.below(u64::from(width))
    }

    /// Transient corruption of one buffered stream: per-bit flips at
    /// [`FaultModel::stream_ber`], then per-64-bit-word single-bit upsets at
    /// [`FaultModel::sram_word_ber`]. `table_domain` identifies the
    /// generator, `level` the table entry; the pass counter is mixed in.
    pub fn corrupt_level(&mut self, table_domain: u64, level: u32, bs: &mut Bitstream) {
        if !self.model.has_transient() || bs.is_empty() {
            return;
        }
        let dom = domain(&[table_domain, u64::from(level), self.pass]);
        let len = bs.len();
        let mut words = bs.as_words().to_vec();
        self.flip_stream_bits(dom, &mut words, len);
        self.upset_sram_words(dom, &mut words, len);
        *bs = Bitstream::from_words(words, len);
    }

    /// Corrupts every level of a stream table (the table *is* the model of
    /// the stream buffer SRAM contents for one generator).
    pub fn corrupt_table(&mut self, table_domain: u64, table: &mut StreamTable) {
        if !self.model.has_transient() {
            return;
        }
        for level in 0..table.levels() {
            // Split borrow: take the stream out, corrupt, put back.
            let mut bs =
                std::mem::replace(table.stream_mut(level), Bitstream::from_words(vec![], 0));
            self.corrupt_level(table_domain, level, &mut bs);
            *table.stream_mut(level) = bs;
        }
    }

    /// Per-bit flips at `stream_ber` via geometric gap sampling (cheap for
    /// realistic low rates).
    fn flip_stream_bits(&mut self, dom: u64, words: &mut [u64], len: usize) {
        let p = self.model.stream_ber;
        if p <= 0.0 {
            return;
        }
        let mut rng = FaultRng::keyed(self.model.seed, dom, salt::STREAM_BER);
        if p >= 1.0 {
            for i in 0..len {
                words[i / 64] ^= 1u64 << (i % 64);
            }
            self.counters.stream_bits_flipped += len as u64;
            return;
        }
        let ln_keep = (1.0 - p).ln();
        let mut i = 0usize;
        loop {
            // Geometric gap to the next flipped bit.
            let gap = (rng.unit().ln() / ln_keep) as usize;
            i = match i.checked_add(gap) {
                Some(v) if v < len => v,
                _ => break,
            };
            words[i / 64] ^= 1u64 << (i % 64);
            self.counters.stream_bits_flipped += 1;
            i += 1;
        }
    }

    /// Single-bit upsets per 64-bit word at `sram_word_ber`.
    fn upset_sram_words(&mut self, dom: u64, words: &mut [u64], len: usize) {
        let p = self.model.sram_word_ber;
        if p <= 0.0 {
            return;
        }
        let mut rng = FaultRng::keyed(self.model.seed, dom, salt::SRAM_WORD);
        for (w, word) in words.iter_mut().enumerate() {
            if !rng.bernoulli(p) {
                continue;
            }
            let bits_in_word = (len - w * 64).min(64) as u64;
            if bits_in_word == 0 {
                continue;
            }
            *word ^= 1u64 << rng.below(bits_in_word);
            self.counters.sram_words_upset += 1;
        }
    }
}

/// A [`StreamRng`] wrapper modeling a permanent stuck-at-one output tap:
/// every produced value has the mask bit(s) forced high.
///
/// # Examples
///
/// ```
/// use geo_sc::fault::StuckAtRng;
/// use geo_sc::{Lfsr, StreamRng};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let inner = Lfsr::new(8, 1)?;
/// let mut rng = StuckAtRng::new(Box::new(inner), 0b100);
/// for _ in 0..32 {
///     assert_ne!(rng.next_value() & 0b100, 0);
/// }
/// # Ok(())
/// # }
/// ```
pub struct StuckAtRng {
    inner: Box<dyn StreamRng>,
    or_mask: u32,
}

impl StuckAtRng {
    /// Wraps `inner`, forcing the bits of `or_mask` (truncated to the inner
    /// width) high on every output.
    pub fn new(inner: Box<dyn StreamRng>, or_mask: u32) -> Self {
        let mask = or_mask & (inner.range() - 1);
        StuckAtRng {
            inner,
            or_mask: mask,
        }
    }
}

impl std::fmt::Debug for StuckAtRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StuckAtRng")
            .field("or_mask", &self.or_mask)
            .finish()
    }
}

impl StreamRng for StuckAtRng {
    fn width(&self) -> u8 {
        self.inner.width()
    }

    fn next_value(&mut self) -> u32 {
        self.inner.next_value() | self.or_mask
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn is_deterministic(&self) -> bool {
        self.inner.is_deterministic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;
    use crate::sng::generate_unipolar;

    fn stream() -> Bitstream {
        let mut lfsr = Lfsr::new(8, 3).unwrap();
        generate_unipolar(0.5, 256, &mut lfsr)
    }

    #[test]
    fn none_model_is_a_no_op() {
        let mut inj = FaultInjector::new(FaultModel::none()).unwrap();
        let clean = stream();
        let mut s = clean.clone();
        inj.corrupt_level(1, 10, &mut s);
        let spec = RngSpec { seed: 5, poly: 0 };
        assert_eq!(inj.corrupt_spec(2, spec), spec);
        assert_eq!(inj.stuck_mask(3, 8), 0);
        assert_eq!(s, clean);
        assert!(!inj.counters().any());
    }

    #[test]
    fn same_seed_same_faults_regardless_of_call_order() {
        let model = FaultModel {
            stream_ber: 0.02,
            lfsr_stuck_rate: 0.5,
            seed_corruption_rate: 0.5,
            sram_word_ber: 0.3,
            seed: 99,
        };
        let mut a = FaultInjector::new(model).unwrap();
        let mut b = FaultInjector::new(model).unwrap();
        let spec = RngSpec { seed: 7, poly: 1 };
        // b makes its decisions in a different order than a.
        let a_spec = a.corrupt_spec(11, spec);
        let a_mask = a.stuck_mask(12, 8);
        let mut a_s = stream();
        a.corrupt_level(13, 5, &mut a_s);
        let mut b_s = stream();
        b.corrupt_level(13, 5, &mut b_s);
        let b_mask = b.stuck_mask(12, 8);
        let b_spec = b.corrupt_spec(11, spec);
        assert_eq!(a_spec, b_spec);
        assert_eq!(a_mask, b_mask);
        assert_eq!(a_s, b_s);
    }

    #[test]
    fn transient_faults_differ_across_passes() {
        let mut inj = FaultInjector::new(FaultModel::with_stream_ber(0.05, 4)).unwrap();
        let mut pass1 = stream();
        inj.corrupt_level(9, 3, &mut pass1);
        inj.begin_pass();
        let mut pass2 = stream();
        inj.corrupt_level(9, 3, &mut pass2);
        assert_ne!(pass1, pass2, "pass counter decorrelates transient faults");
    }

    #[test]
    fn flip_rate_tracks_ber() {
        let ber = 0.1;
        let mut inj = FaultInjector::new(FaultModel::with_stream_ber(ber, 21)).unwrap();
        let n_streams = 200;
        let len = 256;
        let mut lfsr = Lfsr::new(8, 3).unwrap();
        for d in 0..n_streams {
            let mut s = generate_unipolar(0.5, len, &mut lfsr);
            inj.corrupt_level(d, 0, &mut s);
        }
        let total_bits = (n_streams as usize * len) as f64;
        let rate = inj.counters().stream_bits_flipped as f64 / total_bits;
        assert!(
            (rate - ber).abs() < 0.02,
            "measured flip rate {rate} vs ber {ber}"
        );
    }

    #[test]
    fn full_ber_inverts_everything() {
        let mut inj = FaultInjector::new(FaultModel::with_stream_ber(1.0, 0)).unwrap();
        let clean = stream();
        let mut s = clean.clone();
        inj.corrupt_level(0, 0, &mut s);
        assert_eq!(
            s.count_ones() as usize,
            clean.len() - clean.count_ones() as usize
        );
    }

    #[test]
    fn sram_upsets_flip_one_bit_per_hit_word() {
        let model = FaultModel {
            sram_word_ber: 1.0,
            seed: 8,
            ..FaultModel::none()
        };
        let mut inj = FaultInjector::new(model).unwrap();
        let clean = stream(); // 256 bits = 4 words
        let mut s = clean.clone();
        inj.corrupt_level(0, 0, &mut s);
        assert_eq!(inj.counters().sram_words_upset, 4);
        let differing: usize = (0..clean.len())
            .filter(|&i| clean.get(i) != s.get(i))
            .count();
        assert_eq!(differing, 4, "exactly one flipped bit per word");
    }

    #[test]
    fn stuck_mask_stays_within_width() {
        let model = FaultModel {
            lfsr_stuck_rate: 1.0,
            seed: 5,
            ..FaultModel::none()
        };
        let mut inj = FaultInjector::new(model).unwrap();
        for w in [3u8, 8, 16] {
            let mask = inj.stuck_mask(u64::from(w), w);
            assert_eq!(mask.count_ones(), 1);
            assert!(mask < (1u32 << w));
        }
        assert_eq!(inj.counters().stuck_lanes, 3);
    }

    #[test]
    fn corrupted_spec_changes_seed_only() {
        let model = FaultModel {
            seed_corruption_rate: 1.0,
            seed: 77,
            ..FaultModel::none()
        };
        let mut inj = FaultInjector::new(model).unwrap();
        let spec = RngSpec { seed: 123, poly: 2 };
        let c = inj.corrupt_spec(0, spec);
        assert_ne!(c.seed, spec.seed);
        assert_eq!(c.poly, spec.poly);
        assert_eq!(inj.counters().seeds_corrupted, 1);
    }

    #[test]
    fn validation_rejects_non_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let model = FaultModel {
                stream_ber: bad,
                ..FaultModel::none()
            };
            assert!(matches!(
                model.validate(),
                Err(ScError::InvalidFaultRate {
                    name: "stream_ber",
                    ..
                })
            ));
            assert!(FaultInjector::new(model).is_err());
        }
        assert!(FaultModel::none().validate().is_ok());
    }

    #[test]
    fn counters_accumulate_and_delta() {
        let mut a = FaultCounters {
            stream_bits_flipped: 5,
            sram_words_upset: 1,
            seeds_corrupted: 2,
            stuck_lanes: 0,
        };
        let b = FaultCounters {
            stream_bits_flipped: 3,
            sram_words_upset: 0,
            seeds_corrupted: 1,
            stuck_lanes: 4,
        };
        a.accumulate(&b);
        assert_eq!(a.total(), 16);
        let d = a.delta_since(&b);
        assert_eq!(d.stream_bits_flipped, 5);
        assert_eq!(d.stuck_lanes, 0, "saturating");
        assert!(a.any());
        assert!(!FaultCounters::default().any());
    }

    #[test]
    fn corrupt_table_touches_levels_independently() {
        let mut lfsr = Lfsr::new(6, 9).unwrap();
        let clean = StreamTable::new(64, &mut lfsr);
        let mut table = clean.clone();
        let mut inj = FaultInjector::new(FaultModel::with_stream_ber(0.05, 3)).unwrap();
        inj.corrupt_table(17, &mut table);
        let changed = (0..table.levels())
            .filter(|&l| table.stream(l) != clean.stream(l))
            .count();
        assert!(changed > 10, "most levels see at least one flip: {changed}");
        // Lengths are preserved.
        for l in 0..table.levels() {
            assert_eq!(table.stream(l).len(), 64);
        }
    }

    #[test]
    fn domains_are_stable_and_distinct() {
        assert_eq!(domain(&[1, 2, 3]), domain(&[1, 2, 3]));
        assert_ne!(domain(&[1, 2, 3]), domain(&[1, 2, 4]));
        assert_ne!(domain(&[1, 2]), domain(&[2, 1]));
    }
}
