//! Bipolar stochastic encoding.
//!
//! The classic alternative to GEO's split-unipolar format: a value
//! `x ∈ [-1, 1]` maps to ones-density `p = (x + 1) / 2`, multiplication is
//! an XNOR, and scaled addition a MUX. Provided as a comparison substrate —
//! the paper's split-unipolar choice avoids bipolar's halved useful range
//! and its sensitivity to correlation around zero.

use crate::bitstream::Bitstream;
use crate::error::ScError;
use crate::rng::StreamRng;
use crate::sng::generate_stream;

/// Maps a bipolar value `x ∈ [-1, 1]` (clamped) to its ones-density.
pub fn bipolar_to_density(x: f32) -> f32 {
    (x.clamp(-1.0, 1.0) + 1.0) / 2.0
}

/// Maps a ones-density back to the bipolar value `2p − 1`.
pub fn density_to_bipolar(p: f64) -> f64 {
    2.0 * p - 1.0
}

/// Generates a bipolar stream for `x ∈ [-1, 1]`, resetting deterministic
/// RNGs first.
///
/// # Examples
///
/// ```
/// use geo_sc::{bipolar, Lfsr};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let mut rng = Lfsr::new(7, 1)?;
/// let s = bipolar::generate_bipolar(-0.5, 128, &mut rng);
/// assert!((bipolar::value(&s) + 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn generate_bipolar(x: f32, len: usize, rng: &mut dyn StreamRng) -> Bitstream {
    rng.reset();
    let density = bipolar_to_density(x);
    let level = crate::encode::quantize_unipolar(density, rng.width());
    generate_stream(level, len, rng)
}

/// The bipolar value carried by a stream: `2·ones/len − 1`.
pub fn value(s: &Bitstream) -> f64 {
    density_to_bipolar(s.value())
}

/// Bipolar multiplication: cycle-wise XNOR.
///
/// For uncorrelated operands, `value(xnor(a, b)) ≈ value(a) · value(b)`.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if lengths differ.
pub fn xnor_mul(a: &Bitstream, b: &Bitstream) -> Result<Bitstream, ScError> {
    let mut out = a.clone();
    out.xor_assign(b)?;
    Ok(!&out)
}

/// Bipolar scaled addition via MUX: `(a + b) / 2` when `select` carries
/// density 0.5.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if lengths differ.
pub fn mux_add(a: &Bitstream, b: &Bitstream, select: &Bitstream) -> Result<Bitstream, ScError> {
    crate::ops::mux_add(a, b, select)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;

    #[test]
    fn density_mapping_round_trips() {
        for x in [-1.0f32, -0.5, 0.0, 0.25, 1.0] {
            let p = bipolar_to_density(x);
            assert!((density_to_bipolar(f64::from(p)) - f64::from(x)).abs() < 1e-6);
        }
        assert_eq!(bipolar_to_density(5.0), 1.0);
        assert_eq!(bipolar_to_density(-5.0), 0.0);
    }

    #[test]
    fn generation_hits_the_target_value() {
        let mut rng = Lfsr::new(8, 3).unwrap();
        for x in [-0.75f32, -0.25, 0.0, 0.5, 1.0] {
            let s = generate_bipolar(x, 256, &mut rng);
            assert!(
                (value(&s) - f64::from(x)).abs() < 0.03,
                "x {x}: got {}",
                value(&s)
            );
        }
    }

    #[test]
    fn xnor_multiplies_decorrelated_streams() {
        let mut ra = Lfsr::with_polynomial(8, 0, 3).unwrap();
        let mut rb = Lfsr::with_polynomial(8, 1, 119).unwrap();
        for (x, y) in [(0.5f32, 0.5f32), (-0.5, 0.5), (-0.8, -0.6), (0.0, 0.9)] {
            let a = generate_bipolar(x, 256, &mut ra);
            let b = generate_bipolar(y, 256, &mut rb);
            let p = xnor_mul(&a, &b).unwrap();
            let err = (value(&p) - f64::from(x) * f64::from(y)).abs();
            assert!(err < 0.15, "x {x} y {y}: err {err}");
        }
    }

    #[test]
    fn xnor_sign_rules() {
        // Identical streams: x·x should be non-negative (maximal
        // correlation gives 1·anything → +1 density on XNOR with itself).
        let mut rng = Lfsr::new(8, 3).unwrap();
        let a = generate_bipolar(-0.7, 256, &mut rng);
        let p = xnor_mul(&a, &a).unwrap();
        assert!((value(&p) - 1.0).abs() < 1e-9, "self-XNOR is all ones");
    }

    #[test]
    fn mux_add_halves_the_sum() {
        let mut ra = Lfsr::with_polynomial(8, 0, 3).unwrap();
        let mut rb = Lfsr::with_polynomial(8, 1, 55).unwrap();
        let mut rs = Lfsr::with_polynomial(8, 0, 201).unwrap();
        let a = generate_bipolar(0.8, 256, &mut ra);
        let b = generate_bipolar(-0.4, 256, &mut rb);
        let sel = crate::sng::generate_unipolar(0.5, 256, &mut rs);
        let s = mux_add(&a, &b, &sel).unwrap();
        assert!((value(&s) - 0.2).abs() < 0.15, "got {}", value(&s));
    }

    #[test]
    fn length_mismatch_errors() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(16);
        assert!(xnor_mul(&a, &b).is_err());
    }
}
