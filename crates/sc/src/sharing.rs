//! RNG seed-sharing policies (paper §II-A, Fig. 1).
//!
//! GEO deliberately *shares* stream generators to simplify the error profile
//! training must learn:
//!
//! * [`SharingLevel::None`] — every weight SNG gets its own seed.
//! * [`SharingLevel::Moderate`] — all kernels (output channels) of a layer
//!   share one seed set, indexed by position within the kernel. This is the
//!   sweet spot GEO uses: up to 6.1 points more accurate than unshared TRNG
//!   once the network is trained for it.
//! * [`SharingLevel::Extreme`] — all rows of all kernels share one seed set
//!   indexed only by the W position; the resulting stream correlation
//!   collapses accuracy even with training.

use crate::error::ScError;
use crate::lfsr::{polynomial_count, Lfsr};
use crate::rng::{SobolRng, StreamRng, TrngRng};
use serde::{Deserialize, Serialize};

/// How aggressively weight-stream generators are shared within a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingLevel {
    /// Every SNG has a unique seed.
    None,
    /// One seed set shared across all kernels of the layer (GEO default).
    Moderate,
    /// One seed set shared across all rows of all kernels.
    Extreme,
}

impl SharingLevel {
    /// All levels, in increasing-sharing order (handy for sweeps).
    pub const ALL: [SharingLevel; 3] = [
        SharingLevel::None,
        SharingLevel::Moderate,
        SharingLevel::Extreme,
    ];
}

/// Which random-number source drives the SNG comparators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RngKind {
    /// Deterministic maximal-length LFSR (GEO's choice).
    Lfsr,
    /// Simulated true RNG: fresh entropy every pass.
    Trng,
    /// Low-discrepancy (van der Corput / Sobol) sequence.
    Sobol,
}

impl RngKind {
    /// Instantiates a generator of `width` bits for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`ScError::InvalidWidth`] / [`ScError::InvalidPolynomial`]
    /// for specs an LFSR cannot satisfy.
    pub fn build(self, width: u8, spec: RngSpec) -> Result<Box<dyn StreamRng>, ScError> {
        Ok(match self {
            RngKind::Lfsr => Box::new(Lfsr::with_polynomial(width, spec.poly, spec.seed)?),
            RngKind::Trng => Box::new(TrngRng::new(
                width,
                u64::from(spec.seed) | (spec.poly as u64) << 32,
            )),
            RngKind::Sobol => Box::new(SobolRng::new(width, spec.seed)),
        })
    }
}

/// A concrete generator identity: seed plus characteristic-polynomial index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RngSpec {
    /// Seed (folded onto the nonzero state space by LFSRs).
    pub seed: u32,
    /// Primitive-polynomial index (see [`polynomial_count`]).
    pub poly: usize,
}

/// Kernel dimensions of a convolution layer, `(Cout, Cin, H, W)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelDims {
    /// Output channels (number of kernels).
    pub cout: usize,
    /// Input channels.
    pub cin: usize,
    /// Kernel height.
    pub h: usize,
    /// Kernel width.
    pub w: usize,
}

impl KernelDims {
    /// Creates kernel dimensions.
    pub fn new(cout: usize, cin: usize, h: usize, w: usize) -> Self {
        KernelDims { cout, cin, h, w }
    }

    /// Weights per kernel, `Cin · H · W`.
    pub fn kernel_volume(&self) -> usize {
        self.cin * self.h * self.w
    }
}

/// Number of distinct generators available at a given width:
/// `polynomials × (2^width - 1)` seeds. Moderate sharing is applied "up to
/// the limit of availability of unique RNG seeds" — beyond this the plan
/// wraps around.
pub fn unique_generators(width: u8) -> usize {
    polynomial_count(width) * ((1usize << width) - 1)
}

/// Deterministic seed assignment for one layer under a sharing policy.
///
/// # Examples
///
/// ```
/// use geo_sc::sharing::{KernelDims, SeedPlan, SharingLevel};
///
/// let dims = KernelDims::new(16, 8, 3, 3);
/// let plan = SeedPlan::new(SharingLevel::Moderate, 7, 0, dims);
/// // Moderate: kernels 0 and 15 share generators at the same position.
/// assert_eq!(plan.weight_spec(0, 2, 1, 1), plan.weight_spec(15, 2, 1, 1));
/// // ...but different positions get different generators.
/// assert_ne!(plan.weight_spec(0, 2, 1, 1), plan.weight_spec(0, 2, 1, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedPlan {
    level: SharingLevel,
    width: u8,
    base_seed: u32,
    dims: KernelDims,
}

impl SeedPlan {
    /// Creates a plan for a layer with kernel `dims`, LFSR `width`, and a
    /// layer-unique `base_seed`.
    pub fn new(level: SharingLevel, width: u8, base_seed: u32, dims: KernelDims) -> Self {
        SeedPlan {
            level,
            width,
            base_seed,
            dims,
        }
    }

    /// The sharing level of the plan.
    pub fn level(&self) -> SharingLevel {
        self.level
    }

    /// Seed-space index of a weight position under the plan's sharing level.
    fn weight_index(&self, cout: usize, cin: usize, h: usize, w: usize) -> usize {
        match self.level {
            SharingLevel::None => {
                ((cout * self.dims.cin + cin) * self.dims.h + h) * self.dims.w + w
            }
            SharingLevel::Moderate => (cin * self.dims.h + h) * self.dims.w + w,
            SharingLevel::Extreme => w,
        }
    }

    fn spec_for_index(&self, index: usize) -> RngSpec {
        let period = (1usize << self.width) - 1;
        let polys = polynomial_count(self.width).max(1);
        RngSpec {
            seed: self.base_seed.wrapping_add((index % period) as u32),
            poly: (index / period) % polys,
        }
    }

    /// Generator identity for the weight at `(cout, cin, h, w)`.
    pub fn weight_spec(&self, cout: usize, cin: usize, h: usize, w: usize) -> RngSpec {
        self.spec_for_index(self.weight_index(cout, cin, h, w))
    }

    /// Generator identity for activation broadcast lane `lane`.
    ///
    /// Activation SNGs are broadcast across MAC rows (kernels), so they are
    /// always "moderately shared" by construction; their seed space is
    /// offset so it never collides with the weight seed space.
    pub fn activation_spec(&self, lane: usize) -> RngSpec {
        let period = (1usize << self.width) - 1;
        let polys = polynomial_count(self.width).max(1);
        // Offset by half the period to separate from weight seeds.
        let offset = period / 2 + 1;
        RngSpec {
            seed: self
                .base_seed
                .wrapping_add(((lane + offset) % period) as u32),
            poly: polys - 1 - (lane / period) % polys,
        }
    }

    /// Number of *distinct* weight generators the plan instantiates.
    pub fn distinct_weight_generators(&self) -> usize {
        let d = &self.dims;
        let raw = match self.level {
            SharingLevel::None => d.cout * d.kernel_volume(),
            SharingLevel::Moderate => d.kernel_volume(),
            SharingLevel::Extreme => d.w,
        };
        raw.min(unique_generators(self.width).max(1))
    }

    /// Builds the actual RNG for a spec.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`RngKind::build`].
    pub fn build_rng(&self, kind: RngKind, spec: RngSpec) -> Result<Box<dyn StreamRng>, ScError> {
        kind.build(self.width, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> KernelDims {
        KernelDims::new(4, 3, 5, 5)
    }

    #[test]
    fn none_gives_unique_specs_per_position() {
        let plan = SeedPlan::new(SharingLevel::None, 8, 0, dims());
        let mut seen = std::collections::HashSet::new();
        for co in 0..4 {
            for ci in 0..3 {
                for h in 0..5 {
                    for w in 0..5 {
                        seen.insert(plan.weight_spec(co, ci, h, w));
                    }
                }
            }
        }
        assert_eq!(seen.len(), 4 * 3 * 5 * 5);
        assert_eq!(plan.distinct_weight_generators(), 300);
    }

    #[test]
    fn moderate_shares_across_kernels_only() {
        let plan = SeedPlan::new(SharingLevel::Moderate, 8, 10, dims());
        for co in 1..4 {
            assert_eq!(plan.weight_spec(0, 1, 2, 3), plan.weight_spec(co, 1, 2, 3));
        }
        assert_ne!(plan.weight_spec(0, 1, 2, 3), plan.weight_spec(0, 1, 2, 4));
        assert_ne!(plan.weight_spec(0, 1, 2, 3), plan.weight_spec(0, 2, 2, 3));
        assert_eq!(plan.distinct_weight_generators(), 75);
    }

    #[test]
    fn extreme_shares_across_rows_and_channels() {
        let plan = SeedPlan::new(SharingLevel::Extreme, 8, 10, dims());
        assert_eq!(plan.weight_spec(0, 0, 0, 2), plan.weight_spec(3, 2, 4, 2));
        assert_ne!(plan.weight_spec(0, 0, 0, 2), plan.weight_spec(0, 0, 0, 3));
        assert_eq!(plan.distinct_weight_generators(), 5);
    }

    #[test]
    fn seed_space_wraps_beyond_unique_generators() {
        // 3-bit width: only 7 seeds × 2 polynomials = 14 generators.
        let big = KernelDims::new(1, 10, 10, 10);
        let plan = SeedPlan::new(SharingLevel::None, 3, 0, big);
        assert_eq!(unique_generators(3), 14);
        assert_eq!(plan.distinct_weight_generators(), 14);
        // Index 0 and index 7 share the seed but differ in polynomial.
        let a = plan.weight_spec(0, 0, 0, 0);
        let b = plan.weight_spec(0, 0, 0, 7);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.poly, b.poly);
        // Index 14 wraps entirely.
        let c = plan.weight_spec(0, 0, 1, 4);
        assert_eq!(a, c);
    }

    #[test]
    fn activation_lanes_are_shared_across_rows_by_construction() {
        let plan = SeedPlan::new(SharingLevel::Moderate, 8, 0, dims());
        // Activation specs don't depend on kernel index at all — same call.
        let a0 = plan.activation_spec(0);
        let a1 = plan.activation_spec(1);
        assert_ne!(a0, a1);
        // Offset keeps activation lane 0 away from weight index 0.
        assert_ne!(a0, plan.weight_spec(0, 0, 0, 0));
    }

    #[test]
    fn rng_kinds_build_working_generators() {
        let plan = SeedPlan::new(SharingLevel::Moderate, 8, 5, dims());
        let spec = plan.weight_spec(0, 0, 0, 0);
        for kind in [RngKind::Lfsr, RngKind::Trng, RngKind::Sobol] {
            let mut rng = plan.build_rng(kind, spec).unwrap();
            assert_eq!(rng.width(), 8);
            let v = rng.next_value();
            assert!(v < 256);
        }
    }

    #[test]
    fn lfsr_build_rejects_bad_width() {
        assert!(RngKind::Lfsr
            .build(2, RngSpec { seed: 1, poly: 0 })
            .is_err());
    }
}
