//! Stochastic arithmetic: the gate-level operations of an SC datapath.
//!
//! * AND — unipolar multiplication (exact when streams are uncorrelated).
//! * OR — unscaled accumulation (`1 - ∏(1-xᵢ)`), GEO's SC-domain adder.
//! * MUX — scaled addition `(x + y) / 2`.
//! * Parallel counter — exact bitwise popcount accumulation: the
//!   fixed-point side of partial binary accumulation (§III-B).

use crate::bitstream::Bitstream;
use crate::encode::SplitStream;
use crate::error::ScError;

/// Unipolar stochastic multiplication: the cycle-wise AND of two streams.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if the stream lengths differ.
///
/// # Examples
///
/// ```
/// use geo_sc::{generate_unipolar, ops, Lfsr};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let mut r1 = Lfsr::new(7, 1)?;
/// let mut r2 = Lfsr::with_polynomial(7, 1, 40)?;
/// let a = generate_unipolar(0.5, 128, &mut r1);
/// let b = generate_unipolar(0.5, 128, &mut r2);
/// let p = ops::and_mul(&a, &b)?;
/// assert!((p.value() - 0.25).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn and_mul(a: &Bitstream, b: &Bitstream) -> Result<Bitstream, ScError> {
    let mut out = a.clone();
    out.and_assign(b)?;
    Ok(out)
}

/// Split-unipolar multiplication of a unipolar activation with a signed
/// weight: the activation stream gates whichever half carries the weight.
pub fn and_mul_split(activation: &Bitstream, weight: &SplitStream) -> Result<SplitStream, ScError> {
    Ok(SplitStream::new(
        and_mul(activation, &weight.pos)?,
        and_mul(activation, &weight.neg)?,
    ))
}

/// OR accumulation of any number of streams.
///
/// Unscaled but lossy: overlapping ones collapse, so the result value is
/// `1 - ∏(1-xᵢ)` for independent inputs. GEO trains the network around this
/// compression instead of avoiding it.
///
/// # Errors
///
/// Returns [`ScError::EmptyInput`] when given no streams and
/// [`ScError::LengthMismatch`] when lengths differ.
pub fn or_acc<'a, I>(streams: I) -> Result<Bitstream, ScError>
where
    I: IntoIterator<Item = &'a Bitstream>,
{
    let mut iter = streams.into_iter();
    let first = iter.next().ok_or(ScError::EmptyInput)?;
    let mut out = first.clone();
    for s in iter {
        out.or_assign(s)?;
    }
    Ok(out)
}

/// OR accumulation of split-unipolar streams: halves accumulate
/// independently, the subtraction happens after conversion.
pub fn or_acc_split<'a, I>(streams: I) -> Result<SplitStream, ScError>
where
    I: IntoIterator<Item = &'a SplitStream>,
{
    let mut iter = streams.into_iter();
    let first = iter.next().ok_or(ScError::EmptyInput)?;
    let mut pos = first.pos.clone();
    let mut neg = first.neg.clone();
    for s in iter {
        pos.or_assign(&s.pos)?;
        neg.or_assign(&s.neg)?;
    }
    Ok(SplitStream::new(pos, neg))
}

/// MUX-based scaled addition: selects `a` or `b` per cycle using `select`,
/// producing `(a + b) / 2` when the select stream carries value 0.5.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] when lengths differ.
pub fn mux_add(a: &Bitstream, b: &Bitstream, select: &Bitstream) -> Result<Bitstream, ScError> {
    if a.len() != b.len() {
        return Err(ScError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.len() != select.len() {
        return Err(ScError::LengthMismatch {
            left: a.len(),
            right: select.len(),
        });
    }
    let not_sel = !select;
    let mut pick_a = a.clone();
    pick_a.and_assign(&not_sel)?;
    let mut pick_b = b.clone();
    pick_b.and_assign(select)?;
    pick_a.or_assign(&pick_b)?;
    Ok(pick_a)
}

/// Exact parallel-counter accumulation: the total ones count across all
/// streams, i.e. the value a bitwise popcount adder tree accumulates into
/// an output counter. This is the fixed-point side of partial binary
/// accumulation — exact, unlike OR.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] when lengths differ (the counter
/// fabric operates cycle-aligned).
pub fn parallel_count<'a, I>(streams: I) -> Result<u64, ScError>
where
    I: IntoIterator<Item = &'a Bitstream>,
{
    let mut iter = streams.into_iter();
    let Some(first) = iter.next() else {
        return Ok(0);
    };
    let len = first.len();
    let mut total = u64::from(first.count_ones());
    for s in iter {
        if s.len() != len {
            return Err(ScError::LengthMismatch {
                left: len,
                right: s.len(),
            });
        }
        total += u64::from(s.count_ones());
    }
    Ok(total)
}

/// Per-cycle popcount across streams: what the parallel counter outputs each
/// cycle before the accumulating register. Exposed for tests and for the
/// average-pooling fabric which needs the per-cycle sums.
pub fn cycle_counts(streams: &[&Bitstream]) -> Result<Vec<u32>, ScError> {
    let Some(first) = streams.first() else {
        return Ok(Vec::new());
    };
    let len = first.len();
    let mut counts = vec![0u32; len];
    for s in streams {
        if s.len() != len {
            return Err(ScError::LengthMismatch {
                left: len,
                right: s.len(),
            });
        }
        for (c, count) in counts.iter_mut().enumerate() {
            *count += u32::from(s.get(c));
        }
    }
    Ok(counts)
}

/// The analytic value of an OR accumulation of independent unipolar inputs:
/// `1 - ∏(1-xᵢ)`. Used by training to model the accumulation loss.
pub fn or_expected<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    1.0 - values.into_iter().map(|x| 1.0 - x).product::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;
    use crate::rng::StreamRng;
    use crate::sng::generate_stream;

    fn stream(width: u8, seed: u32, poly: usize, value: f32, len: usize) -> Bitstream {
        let mut lfsr = Lfsr::with_polynomial(width, poly, seed).unwrap();
        lfsr.reset();
        generate_stream(
            crate::encode::quantize_unipolar(value, width),
            len,
            &mut lfsr,
        )
    }

    #[test]
    fn and_mul_approximates_product_for_decorrelated_lfsrs() {
        let len = 256;
        for (x, y) in [(0.5f32, 0.5f32), (0.25, 0.75), (0.9, 0.3)] {
            let a = stream(8, 1, 0, x, len);
            let b = stream(8, 97, 1, y, len);
            let p = and_mul(&a, &b).unwrap();
            let err = (p.value() - f64::from(x) * f64::from(y)).abs();
            assert!(err < 0.08, "x={x} y={y} err={err}");
        }
    }

    #[test]
    fn and_mul_with_correlated_streams_computes_min_not_product() {
        // Same seed, same polynomial: fully correlated → AND gives min(x, y).
        let a = stream(8, 5, 0, 0.5, 256);
        let b = stream(8, 5, 0, 0.8, 256);
        let p = and_mul(&a, &b).unwrap();
        assert!((p.value() - 0.5).abs() < 0.02, "got {}", p.value());
    }

    #[test]
    fn or_acc_matches_analytic_value_for_independent_inputs() {
        let values = [0.1f32, 0.2, 0.15, 0.05];
        let streams: Vec<Bitstream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| stream(8, 31 * (i as u32 + 1) + 7, i % 2, v, 256))
            .collect();
        let acc = or_acc(&streams).unwrap();
        let expected = or_expected(values.iter().map(|&v| f64::from(v)));
        assert!(
            (acc.value() - expected).abs() < 0.08,
            "got {} expected {expected}",
            acc.value()
        );
    }

    #[test]
    fn or_acc_split_accumulates_halves_independently() {
        let mut r = Lfsr::new(7, 3).unwrap();
        let a = crate::sng::generate_split(0.4, 128, &mut r);
        let mut r2 = Lfsr::new(7, 55).unwrap();
        let b = crate::sng::generate_split(-0.3, 128, &mut r2);
        let acc = or_acc_split([&a, &b]).unwrap();
        assert!(acc.pos.count_ones() > 0);
        assert!(acc.neg.count_ones() > 0);
        // Positive half only saw a's positive part.
        assert_eq!(acc.pos, a.pos);
        assert_eq!(acc.neg, b.neg);
    }

    #[test]
    fn or_acc_rejects_empty_and_mismatched() {
        assert_eq!(or_acc(std::iter::empty()), Err(ScError::EmptyInput));
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(16);
        assert!(or_acc([&a, &b]).is_err());
    }

    #[test]
    fn mux_add_halves_the_sum() {
        let a = stream(8, 3, 0, 0.6, 256);
        let b = stream(8, 41, 1, 0.2, 256);
        let mut sel_rng = Lfsr::with_polynomial(8, 0, 77).unwrap();
        sel_rng.reset();
        let sel = generate_stream(128, 256, &mut sel_rng);
        let out = mux_add(&a, &b, &sel).unwrap();
        assert!((out.value() - 0.4).abs() < 0.08, "got {}", out.value());
    }

    #[test]
    fn mux_add_length_checks() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(8);
        let sel = Bitstream::zeros(9);
        assert!(mux_add(&a, &b, &sel).is_err());
        assert!(mux_add(&a, &Bitstream::zeros(9), &sel).is_err());
    }

    #[test]
    fn parallel_count_is_exact_sum() {
        let streams: Vec<Bitstream> = (0..5)
            .map(|i| Bitstream::from_fn(100, move |c| (c + i) % 4 == 0))
            .collect();
        let expected: u64 = streams.iter().map(|s| u64::from(s.count_ones())).sum();
        assert_eq!(parallel_count(&streams).unwrap(), expected);
        assert_eq!(parallel_count(std::iter::empty()).unwrap(), 0);
    }

    #[test]
    fn parallel_count_detects_mismatch() {
        let a = Bitstream::zeros(8);
        let b = Bitstream::zeros(9);
        assert!(parallel_count([&a, &b]).is_err());
    }

    #[test]
    fn cycle_counts_sum_to_parallel_count() {
        let streams: Vec<Bitstream> = (0..4)
            .map(|i| Bitstream::from_fn(64, move |c| (c * (i + 2)) % 5 < 2))
            .collect();
        let refs: Vec<&Bitstream> = streams.iter().collect();
        let counts = cycle_counts(&refs).unwrap();
        assert_eq!(counts.len(), 64);
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        assert_eq!(total, parallel_count(&streams).unwrap());
        assert!(cycle_counts(&[]).unwrap().is_empty());
    }

    #[test]
    fn or_expected_known_values() {
        assert!((or_expected([0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((or_expected([0.0, 0.0]) - 0.0).abs() < 1e-12);
        assert!((or_expected([1.0, 0.3]) - 1.0).abs() < 1e-12);
        assert!(or_expected(std::iter::empty()) == 0.0);
    }

    #[test]
    fn and_mul_split_routes_through_activation() {
        let mut ra = Lfsr::new(7, 9).unwrap();
        let act = crate::sng::generate_unipolar(0.5, 128, &mut ra);
        let mut rw = Lfsr::with_polynomial(7, 1, 33).unwrap();
        let w = crate::sng::generate_split(-0.6, 128, &mut rw);
        let p = and_mul_split(&act, &w).unwrap();
        assert_eq!(p.pos.count_ones(), 0);
        assert!((p.value() + 0.3).abs() < 0.08, "got {}", p.value());
    }
}
