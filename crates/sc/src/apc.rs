//! Approximate parallel counter (APC), after Kim, Lee & Choi, "Approximate
//! de-randomizer for stochastic circuits" (ISOCC 2015) — the baseline
//! accumulation fabric GEO's partial binary accumulation is compared
//! against in Fig. 5 and §III-B.
//!
//! An APC replaces the exact popcount tree with layers of approximate 2:2
//! compressors built from an AND (carry, weight 2) and an OR (sum, weight
//! 1). Each compressor is exact except when both inputs are one, where
//! `2·(a∧b) + (a∨b)` reports 3 instead of 2 — cheap, but biased upward.
//! The combined AND/OR behavior is why the paper calls one APC level
//! "equivalent to multiplexers" and unsuitable for stacking.

use crate::bitstream::Bitstream;
use crate::error::ScError;

/// One approximate compressor level: pairs of streams are replaced by a
/// weight-2 carry stream (AND) and a weight-1 sum stream (OR). Odd streams
/// pass through at their current weight.
fn compress_level(streams: Vec<(Bitstream, u64)>) -> Result<Vec<(Bitstream, u64)>, ScError> {
    let mut out = Vec::with_capacity(streams.len().div_ceil(2) * 2);
    let mut pending: Option<(Bitstream, u64)> = None;
    for (s, w) in streams {
        match pending.take() {
            Some((a, wa)) if wa == w => {
                let mut carry = a.clone();
                carry.and_assign(&s)?;
                let mut sum = a;
                sum.or_assign(&s)?;
                out.push((carry, wa * 2));
                out.push((sum, wa));
            }
            Some(other) => {
                // Odd stream of its weight class passes through.
                out.push(other);
                pending = Some((s, w));
            }
            None => pending = Some((s, w)),
        }
    }
    if let Some(last) = pending {
        out.push(last);
    }
    Ok(out)
}

/// Accumulates `streams` with an approximate parallel counter of
/// `levels` compressor layers, then counts ones exactly.
///
/// With `levels = 0` this degenerates to the exact parallel counter.
/// Each level roughly halves the number of streams the exact counter must
/// handle (the hardware saving) at the cost of the both-ones overcount.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] if stream lengths differ.
///
/// # Examples
///
/// ```
/// use geo_sc::{apc::apc_count, Bitstream};
///
/// # fn main() -> Result<(), geo_sc::ScError> {
/// let streams: Vec<Bitstream> =
///     (0..4).map(|i| Bitstream::from_fn(64, move |c| (c + i) % 4 == 0)).collect();
/// // Disjoint ones: APC is exact here.
/// assert_eq!(apc_count(&streams, 1)?, 64);
/// # Ok(())
/// # }
/// ```
pub fn apc_count(streams: &[Bitstream], levels: u32) -> Result<u64, ScError> {
    if streams.is_empty() {
        return Ok(0);
    }
    let len = streams[0].len();
    for s in streams {
        if s.len() != len {
            return Err(ScError::LengthMismatch {
                left: len,
                right: s.len(),
            });
        }
    }
    let mut work: Vec<(Bitstream, u64)> = streams.iter().map(|s| (s.clone(), 1)).collect();
    for _ in 0..levels {
        // Group by weight so compressors pair like weights.
        work.sort_by_key(|(_, w)| *w);
        work = compress_level(work)?;
        if work.len() <= 1 {
            break;
        }
    }
    Ok(work
        .iter()
        .map(|(s, w)| u64::from(s.count_ones()) * w)
        .sum())
}

/// Exact popcount total of the same streams, for error comparisons.
pub fn exact_count(streams: &[Bitstream]) -> u64 {
    streams.iter().map(|s| u64::from(s.count_ones())).sum()
}

/// One-level APC reduction over packed product words — the SWAR form of
/// [`apc_count`] with `levels = 1` that the engine's hot loops call.
///
/// `products` holds the product streams back to back, `words` packed
/// `u64` words per stream (so `products.len()` is a multiple of `words`);
/// stream `i` occupies `products[i·words..(i+1)·words]`. Streams are
/// paired in arrival order — `(s0, s1), (s2, s3), …` — each pair
/// contributing `2·ones(a ∧ b) + ones(a ∨ b)`, and an unpaired tail
/// stream is counted exactly, which is precisely the fold
/// `apc_count(streams, 1)` performs after its stable same-weight sort.
///
/// The single-word path consumes two pairs (four streams) per iteration
/// into independent counters combined pairwise at the end, keeping the
/// popcount units busy without a loop-carried dependency; the loop is
/// branch-free, which `scripts/check_apc_asm.sh` spot-checks in the
/// release disassembly. `#[inline(never)]` keeps the symbol addressable
/// for that check; the call cost is amortized over a whole accumulator's
/// worth of lanes.
#[inline(never)]
pub fn apc_reduce(products: &[u64], words: usize) -> i64 {
    if words == 0 {
        return 0;
    }
    debug_assert_eq!(products.len() % words, 0);
    let n = products.len() / words;
    if words == 1 {
        let mut c0 = 0i64;
        let mut c1 = 0i64;
        let mut quads = products.chunks_exact(4);
        for q in &mut quads {
            let (a, b) = (q[0], q[1]);
            let (c, d) = (q[2], q[3]);
            c0 += 2 * i64::from((a & b).count_ones()) + i64::from((a | b).count_ones());
            c1 += 2 * i64::from((c & d).count_ones()) + i64::from((c | d).count_ones());
        }
        let rest = quads.remainder();
        if rest.len() >= 2 {
            let (a, b) = (rest[0], rest[1]);
            c0 += 2 * i64::from((a & b).count_ones()) + i64::from((a | b).count_ones());
        }
        if rest.len() % 2 == 1 {
            c1 += i64::from(rest[rest.len() - 1].count_ones());
        }
        return c0 + c1;
    }
    let mut count = 0i64;
    let mut pairs = products.chunks_exact(2 * words);
    for p in &mut pairs {
        let (a, b) = p.split_at(words);
        for (&x, &y) in a.iter().zip(b) {
            count += 2 * i64::from((x & y).count_ones()) + i64::from((x | y).count_ones());
        }
    }
    if n % 2 == 1 {
        let tail = pairs.remainder();
        count += tail.iter().map(|w| i64::from(w.count_ones())).sum::<i64>();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;
    use crate::sng::generate_unipolar;

    #[test]
    fn zero_levels_is_exact() {
        let streams: Vec<Bitstream> = (0..6)
            .map(|i| Bitstream::from_fn(80, move |c| (c * 7 + i * 3) % 5 < 2))
            .collect();
        assert_eq!(apc_count(&streams, 0).unwrap(), exact_count(&streams));
    }

    #[test]
    fn disjoint_streams_are_counted_exactly() {
        let streams: Vec<Bitstream> = (0..4)
            .map(|i| Bitstream::from_fn(64, move |c| c % 4 == i))
            .collect();
        assert_eq!(apc_count(&streams, 1).unwrap(), 64);
        assert_eq!(apc_count(&streams, 2).unwrap(), 64);
    }

    #[test]
    fn overlapping_ones_overcount() {
        // Two identical dense streams: a+b = 2·ones, APC reports 3·ones.
        let s = Bitstream::from_fn(64, |c| c % 2 == 0);
        let streams = vec![s.clone(), s];
        let exact = exact_count(&streams); // 64
        let approx = apc_count(&streams, 1).unwrap(); // AND=32 ones ×2 + OR=32 ones ×1
        assert_eq!(exact, 64);
        assert_eq!(approx, 96);
    }

    #[test]
    fn error_grows_with_levels() {
        // Random-ish dense streams: stacking APC levels compounds the bias,
        // which is why the paper limits APC to one accumulation layer.
        let streams: Vec<Bitstream> = (0..8)
            .map(|i| {
                let mut lfsr = Lfsr::with_polynomial(8, i % 2, 17 * (i as u32) + 3).unwrap();
                generate_unipolar(0.5, 256, &mut lfsr)
            })
            .collect();
        let exact = exact_count(&streams) as f64;
        let e1 = (apc_count(&streams, 1).unwrap() as f64 - exact).abs();
        let e3 = (apc_count(&streams, 3).unwrap() as f64 - exact).abs();
        assert!(e3 >= e1, "one level err {e1}, three levels err {e3}");
        assert!(e1 > 0.0, "dense independent streams must overlap somewhere");
    }

    #[test]
    fn empty_input_counts_zero() {
        assert_eq!(apc_count(&[], 2).unwrap(), 0);
    }

    #[test]
    fn mismatched_lengths_error() {
        let streams = vec![Bitstream::zeros(8), Bitstream::zeros(9)];
        assert!(apc_count(&streams, 1).is_err());
    }

    #[test]
    fn apc_reduce_matches_apc_count_for_every_remainder_path() {
        // 0..=9 streams exercise the empty input, both four-stream loop
        // remainders, the final unpaired pair, and the odd tail, at one,
        // two, and four words per stream.
        for len in [64usize, 96, 256] {
            let words = len.div_ceil(64);
            for count in 0..=9usize {
                let streams: Vec<Bitstream> = (0..count)
                    .map(|i| Bitstream::from_fn(len, move |c| (c * 7 + i * 13) % 5 < 2))
                    .collect();
                let expected = apc_count(&streams, 1).unwrap() as i64;
                let packed: Vec<u64> = streams
                    .iter()
                    .flat_map(|s| s.as_words().iter().copied())
                    .collect();
                assert_eq!(
                    apc_reduce(&packed, words),
                    expected,
                    "len={len} count={count}"
                );
            }
        }
    }

    #[test]
    fn apc_reduce_pairs_in_arrival_order() {
        // Swapping two streams across a pair boundary changes the count,
        // pinning that the reduction pairs (s0,s1),(s2,s3) — the order
        // contract the engine's lane gather relies on.
        let a = 0xFFFF_0000_FFFF_0000u64;
        let b = 0xFFFF_FFFF_0000_0000u64;
        let c = 0x0000_0000_0000_0000u64;
        let ordered = apc_reduce(&[a, b, c, c], 1);
        let swapped = apc_reduce(&[a, c, b, c], 1);
        assert_ne!(ordered, swapped);
    }

    #[test]
    fn apc_reduce_zero_words_is_zero() {
        assert_eq!(apc_reduce(&[], 0), 0);
        assert_eq!(apc_reduce(&[], 1), 0);
    }
}
