//! Error types for the stochastic-computing substrate.

use std::fmt;

/// Errors produced by stream generation and bitstream manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScError {
    /// An LFSR or SNG width outside the supported 3..=16 bit range.
    InvalidWidth {
        /// The rejected width.
        width: u8,
    },
    /// A polynomial index with no entry in the primitive-polynomial table.
    InvalidPolynomial {
        /// LFSR width the polynomial was requested for.
        width: u8,
        /// The rejected polynomial index.
        index: usize,
    },
    /// Two bitstreams whose lengths must match did not.
    LengthMismatch {
        /// Length of the left-hand operand.
        left: usize,
        /// Length of the right-hand operand.
        right: usize,
    },
    /// An operation that requires at least one input received none.
    EmptyInput,
    /// A fault-model rate that is not a probability in `[0, 1]`.
    InvalidFaultRate {
        /// Name of the rejected [`crate::fault::FaultModel`] field.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ScError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScError::InvalidWidth { width } => {
                write!(f, "unsupported generator width {width} (supported: 3..=16)")
            }
            ScError::InvalidPolynomial { width, index } => {
                write!(
                    f,
                    "no primitive polynomial with index {index} for width {width}"
                )
            }
            ScError::LengthMismatch { left, right } => {
                write!(f, "bitstream length mismatch: {left} vs {right}")
            }
            ScError::EmptyInput => write!(f, "operation requires at least one input stream"),
            ScError::InvalidFaultRate { name, value } => {
                write!(
                    f,
                    "fault rate {name} = {value} is not a probability in [0, 1]"
                )
            }
        }
    }
}

impl std::error::Error for ScError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ScError::InvalidWidth { width: 2 };
        assert!(e.to_string().contains("width 2"));
        let e = ScError::LengthMismatch { left: 8, right: 16 };
        assert!(e.to_string().contains("8 vs 16"));
        let e = ScError::InvalidPolynomial { width: 8, index: 9 };
        assert!(e.to_string().contains("index 9"));
        assert!(!ScError::EmptyInput.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScError>();
    }
}
