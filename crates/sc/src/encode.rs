//! Unipolar and split-unipolar value encodings.
//!
//! Unipolar SC encodes `x ∈ [0, 1]` as the ones-density of a stream. Signed
//! values use the **split-unipolar** format (paper §II, after ACOUSTIC): a
//! weight `w ∈ [-1, 1]` is carried by two unipolar streams, one for the
//! positive part and one for the negative part, and the output converter
//! subtracts the two counters. This is why the effective stream length is
//! double the specified value (paper §IV).

use crate::bitstream::Bitstream;
use serde::{Deserialize, Serialize};

/// Quantizes `x ∈ [0, 1]` to a `bits`-bit comparator target in `0..=2^bits`.
///
/// Values outside `[0, 1]` are clamped. The target `2^bits` encodes an
/// all-ones stream (exact 1.0).
///
/// # Examples
///
/// ```
/// assert_eq!(geo_sc::quantize_unipolar(0.5, 8), 128);
/// assert_eq!(geo_sc::quantize_unipolar(1.0, 8), 256);
/// assert_eq!(geo_sc::quantize_unipolar(-3.0, 8), 0);
/// ```
pub fn quantize_unipolar(x: f32, bits: u8) -> u32 {
    let levels = (1u32 << bits) as f32;
    let q = (x * levels).round();
    q.clamp(0.0, levels) as u32
}

/// Inverse of [`quantize_unipolar`]: the value represented by level `q`.
pub fn dequantize_unipolar(q: u32, bits: u8) -> f32 {
    q as f32 / (1u32 << bits) as f32
}

/// A signed value split into unipolar positive and negative magnitudes.
///
/// Exactly one of `pos`/`neg` is nonzero for any nonzero input, matching how
/// split-unipolar hardware routes a weight to either the positive or the
/// negative stream generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitValue {
    /// Positive magnitude, in `[0, 1]`.
    pub pos: f32,
    /// Negative magnitude, in `[0, 1]`.
    pub neg: f32,
}

impl SplitValue {
    /// Splits `w ∈ [-1, 1]` (clamped) into its unipolar parts.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = geo_sc::SplitValue::new(-0.25);
    /// assert_eq!(s.pos, 0.0);
    /// assert_eq!(s.neg, 0.25);
    /// assert_eq!(s.value(), -0.25);
    /// ```
    pub fn new(w: f32) -> Self {
        let w = w.clamp(-1.0, 1.0);
        SplitValue {
            pos: w.max(0.0),
            neg: (-w).max(0.0),
        }
    }

    /// The signed value, `pos - neg`.
    pub fn value(&self) -> f32 {
        self.pos - self.neg
    }
}

impl From<f32> for SplitValue {
    fn from(w: f32) -> Self {
        SplitValue::new(w)
    }
}

/// A split-unipolar stream pair: the positive- and negative-part bitstreams
/// of one signed operand or accumulation result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitStream {
    /// Stream carrying the positive magnitude.
    pub pos: Bitstream,
    /// Stream carrying the negative magnitude.
    pub neg: Bitstream,
}

impl SplitStream {
    /// Pairs two equal-length streams.
    ///
    /// # Panics
    ///
    /// Panics if the streams have different lengths.
    pub fn new(pos: Bitstream, neg: Bitstream) -> Self {
        assert_eq!(pos.len(), neg.len(), "split stream halves must match");
        SplitStream { pos, neg }
    }

    /// An all-zero pair (signed value 0).
    pub fn zeros(len: usize) -> Self {
        SplitStream {
            pos: Bitstream::zeros(len),
            neg: Bitstream::zeros(len),
        }
    }

    /// Stream length in cycles (of each half; the effective hardware stream
    /// is twice this, as both halves are processed).
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the pair has zero cycles.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The signed value: ones-density of `pos` minus ones-density of `neg`.
    pub fn value(&self) -> f64 {
        self.pos.value() - self.neg.value()
    }

    /// The signed counter value an output converter's subtractor produces:
    /// `count_ones(pos) - count_ones(neg)`.
    pub fn signed_count(&self) -> i64 {
        i64::from(self.pos.count_ones()) - i64::from(self.neg.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_is_monotonic_and_clamped() {
        let mut prev = 0;
        for i in 0..=100 {
            let q = quantize_unipolar(i as f32 / 100.0, 8);
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(quantize_unipolar(2.0, 8), 256);
        assert_eq!(quantize_unipolar(-1.0, 8), 0);
    }

    #[test]
    fn quantize_dequantize_round_trip_error_is_half_lsb() {
        for bits in [4u8, 7, 8] {
            let lsb = 1.0 / (1u32 << bits) as f32;
            for i in 0..=200 {
                let x = i as f32 / 200.0;
                let back = dequantize_unipolar(quantize_unipolar(x, bits), bits);
                assert!((back - x).abs() <= lsb / 2.0 + 1e-6, "bits {bits}, x {x}");
            }
        }
    }

    #[test]
    fn split_value_has_one_nonzero_side() {
        for w in [-1.0f32, -0.3, 0.0, 0.7, 1.0] {
            let s = SplitValue::new(w);
            assert!((s.value() - w).abs() < 1e-6);
            assert!(s.pos == 0.0 || s.neg == 0.0);
            assert!(s.pos >= 0.0 && s.neg >= 0.0);
        }
    }

    #[test]
    fn split_value_clamps() {
        assert_eq!(SplitValue::new(3.0).value(), 1.0);
        assert_eq!(SplitValue::new(-3.0).value(), -1.0);
        assert_eq!(SplitValue::from(0.5).pos, 0.5);
    }

    #[test]
    fn split_stream_value_subtracts_halves() {
        let pos = Bitstream::from_fn(32, |i| i < 16); // 0.5
        let neg = Bitstream::from_fn(32, |i| i < 8); // 0.25
        let s = SplitStream::new(pos, neg);
        assert!((s.value() - 0.25).abs() < 1e-12);
        assert_eq!(s.signed_count(), 8);
        assert_eq!(s.len(), 32);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn split_stream_rejects_mismatched_halves() {
        let _ = SplitStream::new(Bitstream::zeros(8), Bitstream::zeros(16));
    }
}
