//! Deterministic bit-stream processing (after Faraji et al., DATE 2019 —
//! reference \[4\] of the paper).
//!
//! Instead of pseudo-random streams, operands are encoded as *unary*
//! (thermometer) streams and decorrelated structurally: one operand's
//! pattern repeats while the other's is clock-divided (each bit held for
//! the full length of the first stream). The AND of the two then computes
//! the **exact** product — at the cost of a stream length that is the
//! *product* of the operand resolutions, which is why GEO's trained
//! pseudo-random approach wins at equal latency.

use crate::bitstream::Bitstream;
use crate::error::ScError;

/// A unary (thermometer) stream: the first `level` of `len` cycles are one.
///
/// # Panics
///
/// Panics if `level > len`.
///
/// # Examples
///
/// ```
/// let s = geo_sc::deterministic::unary_stream(3, 8);
/// assert_eq!(s.count_ones(), 3);
/// assert!(s.get(0) && s.get(2) && !s.get(3));
/// ```
pub fn unary_stream(level: usize, len: usize) -> Bitstream {
    assert!(level <= len, "level {level} exceeds length {len}");
    Bitstream::from_fn(len, |c| c < level)
}

/// Repeats a base unary pattern of `(level, base_len)` for `reps`
/// repetitions — the "repeating" operand of clock-division decorrelation.
pub fn repeated_stream(level: usize, base_len: usize, reps: usize) -> Bitstream {
    assert!(level <= base_len, "level {level} exceeds base {base_len}");
    Bitstream::from_fn(base_len * reps, |c| c % base_len < level)
}

/// Clock-divides a unary pattern: each of the `base_len` bits is held for
/// `hold` cycles — the "stretched" operand.
pub fn clock_divided_stream(level: usize, base_len: usize, hold: usize) -> Bitstream {
    assert!(level <= base_len, "level {level} exceeds base {base_len}");
    Bitstream::from_fn(base_len * hold, |c| c / hold < level)
}

/// Exact deterministic multiplication of two levels with resolutions
/// `len_a` and `len_b`: AND of a repeated and a clock-divided stream over
/// `len_a · len_b` cycles.
///
/// The result's ones count is exactly `level_a · level_b`.
///
/// # Errors
///
/// Returns [`ScError::LengthMismatch`] only on internal inconsistency
/// (never for valid inputs).
///
/// # Panics
///
/// Panics if a level exceeds its resolution.
pub fn exact_product(
    level_a: usize,
    len_a: usize,
    level_b: usize,
    len_b: usize,
) -> Result<Bitstream, ScError> {
    let a = repeated_stream(level_a, len_a, len_b);
    let b = clock_divided_stream(level_b, len_b, len_a);
    let mut out = a;
    out.and_assign(&b)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_is_thermometer() {
        let s = unary_stream(5, 8);
        for c in 0..8 {
            assert_eq!(s.get(c), c < 5);
        }
        assert_eq!(unary_stream(0, 4).count_ones(), 0);
        assert_eq!(unary_stream(4, 4).count_ones(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn unary_rejects_overfull() {
        let _ = unary_stream(9, 8);
    }

    #[test]
    fn repetition_and_division_have_equal_length_and_value() {
        let r = repeated_stream(3, 8, 4);
        let d = clock_divided_stream(3, 8, 4);
        assert_eq!(r.len(), 32);
        assert_eq!(d.len(), 32);
        assert_eq!(r.count_ones(), 12);
        assert_eq!(d.count_ones(), 12);
        assert_ne!(r, d, "structurally decorrelated");
    }

    #[test]
    fn product_is_exact_for_all_small_levels() {
        let (len_a, len_b) = (8usize, 8usize);
        for a in 0..=len_a {
            for b in 0..=len_b {
                let p = exact_product(a, len_a, b, len_b).unwrap();
                assert_eq!(p.count_ones() as usize, a * b, "{a}/{len_a} × {b}/{len_b}");
                assert_eq!(p.len(), len_a * len_b);
            }
        }
    }

    #[test]
    fn exactness_costs_quadratic_length() {
        // 8-bit × 8-bit exact product needs 2^16 cycles — the latency
        // explosion GEO's trained pseudo-random streams avoid.
        let p = exact_product(200, 256, 100, 256).unwrap();
        assert_eq!(p.len(), 65536);
        assert_eq!(p.count_ones(), 20000);
    }
}
