//! Shared telemetry primitives: cheap atomic counters and scoped
//! stopwatches that compile to **true no-ops** unless the `telemetry`
//! cargo feature is enabled.
//!
//! Every layer of the stack (engine resolve/compute, program execution,
//! the performance simulator, bench harnesses) attributes its work
//! through these two types, so the instrumentation has one on/off switch
//! and one cost model:
//!
//! * [`Counter`] — a relaxed [`AtomicU64`](std::sync::atomic::AtomicU64).
//!   Totals are exact integer sums, so they are **bit-identical at every
//!   thread count** regardless of scheduling (addition is commutative);
//!   hot loops accumulate into a local `u64` and flush once per row, so
//!   the atomic is touched a handful of times per layer, not per MAC.
//! * [`Stopwatch`] — wall-clock phase timing. Times are *not* part of any
//!   determinism contract (they measure the host), only the counters are.
//!
//! With the feature **disabled** both types are field-less, every method
//! body is empty or constant, and [`enabled`] is `const false` — callers
//! guard per-iteration bookkeeping with `if telemetry::enabled() { … }`
//! so the optimizer removes it entirely. The `bench_forward` trajectory
//! numbers are recorded with the feature off, which is the "zero
//! overhead when off" claim DESIGN.md §12 makes precise.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::time::Instant;

/// Whether telemetry is compiled in (`telemetry` cargo feature).
///
/// `const`, so `if enabled() { … }` blocks vanish from release builds
/// when the feature is off.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// A monotonically increasing event counter.
///
/// Relaxed atomic when telemetry is compiled in; a zero-sized no-op
/// otherwise. See the module docs for the determinism argument.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "telemetry")]
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter {
            #[cfg(feature = "telemetry")]
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total (always 0 with telemetry compiled out).
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        #[cfg(feature = "telemetry")]
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A wall-clock stopwatch for scoped phase timing.
///
/// [`Stopwatch::start`] then [`Stopwatch::elapsed_ns`]; typically the
/// elapsed time is folded into a [`Counter`] holding accumulated
/// nanoseconds. Zero-sized and always-zero with telemetry compiled out.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(feature = "telemetry")]
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            #[cfg(feature = "telemetry")]
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`] (saturating; 0 with
    /// telemetry compiled out).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_iff_enabled() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        if enabled() {
            assert_eq!(c.get(), 4);
        } else {
            assert_eq!(c.get(), 0);
        }
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        if !enabled() {
            assert_eq!(b, 0);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn counter_sums_are_exact_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
