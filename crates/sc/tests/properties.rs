//! Property-based tests on the SC substrate's core invariants.

use geo_sc::{
    generate_stream, generate_unipolar, metrics, ops, quantize_unipolar, Bitstream, Lfsr, SobolRng,
    SplitValue, StreamRng,
};
use proptest::prelude::*;

fn bitstream_strategy(max_len: usize) -> impl Strategy<Value = Bitstream> {
    prop::collection::vec(any::<bool>(), 1..max_len).prop_map(Bitstream::from_bits)
}

fn paired_streams(max_len: usize) -> impl Strategy<Value = (Bitstream, Bitstream)> {
    (1..max_len).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<bool>(), len..=len).prop_map(Bitstream::from_bits),
            prop::collection::vec(any::<bool>(), len..=len).prop_map(Bitstream::from_bits),
        )
    })
}

proptest! {
    #[test]
    fn value_is_between_zero_and_one(s in bitstream_strategy(300)) {
        prop_assert!(s.value() >= 0.0 && s.value() <= 1.0);
    }

    #[test]
    fn and_value_never_exceeds_either_operand((a, b) in paired_streams(300)) {
        let p = ops::and_mul(&a, &b).unwrap();
        prop_assert!(p.value() <= a.value() + 1e-12);
        prop_assert!(p.value() <= b.value() + 1e-12);
    }

    #[test]
    fn or_value_bounded_by_sum_and_max((a, b) in paired_streams(300)) {
        let o = ops::or_acc([&a, &b]).unwrap();
        prop_assert!(o.value() + 1e-12 >= a.value().max(b.value()));
        prop_assert!(o.value() <= a.value() + b.value() + 1e-12);
    }

    #[test]
    fn de_morgan_holds_on_streams((a, b) in paired_streams(200)) {
        let lhs = !&(&a & &b);
        let rhs = &(!&a) | &(!&b);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn complement_value_sums_to_one(s in bitstream_strategy(300)) {
        let n = !&s;
        prop_assert!((s.value() + n.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scc_is_within_unit_interval((a, b) in paired_streams(300)) {
        let c = metrics::scc(&a, &b).unwrap();
        prop_assert!((-1.0..=1.0).contains(&c), "scc {}", c);
    }

    #[test]
    fn lfsr_stream_value_tracks_target(width in 4u8..=10, seed in 0u32..1000, x in 0f32..=1.0) {
        let len = 1usize << width;
        let mut lfsr = Lfsr::new(width, seed).unwrap();
        let s = generate_unipolar(x, len, &mut lfsr);
        let q = quantize_unipolar(x, width);
        let expected = f64::from(q) / f64::from(1u32 << width);
        // Maximal-length LFSR: at most one bit of generation error.
        prop_assert!((s.value() - expected).abs() <= 2.0 / len as f64 + 1e-9);
    }

    #[test]
    fn lfsr_generation_is_repeatable(width in 3u8..=12, seed in 0u32..5000, level in 0u32..256) {
        let len = 64usize;
        let mut l1 = Lfsr::new(width, seed).unwrap();
        let mut l2 = Lfsr::new(width, seed).unwrap();
        let level = level.min(1 << width);
        l1.reset();
        l2.reset();
        let a = generate_stream(level, len, &mut l1);
        let b = generate_stream(level, len, &mut l2);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sobol_stream_is_exact_over_full_window(width in 3u8..=10, level_frac in 0f32..=1.0) {
        let len = 1usize << width;
        let level = quantize_unipolar(level_frac, width);
        let mut ld = SobolRng::new(width, 0);
        ld.reset();
        let s = generate_stream(level, len, &mut ld);
        prop_assert_eq!(s.count_ones(), level);
    }

    #[test]
    fn split_value_reconstructs(w in -1.5f32..=1.5) {
        let s = SplitValue::new(w);
        prop_assert!((s.value() - w.clamp(-1.0, 1.0)).abs() < 1e-6);
        prop_assert!(s.pos * s.neg == 0.0, "one side must be zero");
    }

    #[test]
    fn parallel_count_is_linear(streams in prop::collection::vec(
        prop::collection::vec(any::<bool>(), 64..=64).prop_map(Bitstream::from_bits), 1..10)) {
        let total = ops::parallel_count(&streams).unwrap();
        let by_hand: u64 = streams.iter().map(|s| u64::from(s.count_ones())).sum();
        prop_assert_eq!(total, by_hand);
    }

    #[test]
    fn apc_overcounts_never_undercounts(streams in prop::collection::vec(
        prop::collection::vec(any::<bool>(), 32..=32).prop_map(Bitstream::from_bits), 2..8)) {
        // 2·(a∧b) + (a∨b) ≥ a + b cycle-wise, so APC error is one-sided.
        let exact = geo_sc::apc::exact_count(&streams);
        let approx = geo_sc::apc::apc_count(&streams, 3).unwrap();
        prop_assert!(approx >= exact, "approx {} < exact {}", approx, exact);
    }

    #[test]
    fn progressive_error_confined_to_early_cycles(value in any::<u8>(), width in 4u8..=8) {
        let mut lfsr = Lfsr::new(width, 29).unwrap();
        let sng = geo_sc::ProgressiveSng::new(value);
        let prog = sng.generate(128, &mut lfsr);
        let norm = sng.generate_normal(128, &mut lfsr);
        let boundary = geo_sc::progressive::first_exact_cycle(width) as usize;
        for c in boundary..128 {
            prop_assert_eq!(prog.get(c), norm.get(c));
        }
    }
}
