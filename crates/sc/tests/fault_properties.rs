//! Property-based tests on the fault-injection layer: the determinism and
//! exactness guarantees the engine integration relies on.

use geo_sc::{Bitstream, FaultInjector, FaultModel, Lfsr, StreamRng, StuckAtRng};
use proptest::prelude::*;

fn stream(seed: u64, len: usize) -> Bitstream {
    Bitstream::from_fn(len, |i| {
        (seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64)).is_multiple_of(3)
    })
}

proptest! {
    /// Same model + same domain + same pass → bit-for-bit identical
    /// corruption and identical counters, regardless of when the injector
    /// was built.
    #[test]
    fn same_seed_corruption_is_deterministic(
        seed in any::<u64>(),
        dom in any::<u64>(),
        level in 0u32..300,
        len in 1usize..500,
        ber in 1e-4f64..0.5,
    ) {
        let model = FaultModel::with_stream_ber(ber, seed);
        let mut a = FaultInjector::new(model).unwrap();
        let mut b = FaultInjector::new(model).unwrap();
        let mut sa = stream(seed, len);
        let mut sb = sa.clone();
        a.corrupt_level(dom, level, &mut sa);
        b.corrupt_level(dom, level, &mut sb);
        prop_assert_eq!(&sa, &sb);
        prop_assert_eq!(a.counters(), b.counters());
    }

    /// Corruption of one stream is a pure function of (model, domain,
    /// level, pass) — injecting other streams first must not change it.
    #[test]
    fn corruption_is_call_order_independent(
        seed in any::<u64>(),
        dom in any::<u64>(),
        len in 1usize..300,
    ) {
        let model = FaultModel::with_stream_ber(0.05, seed);
        let mut direct = FaultInjector::new(model).unwrap();
        let mut fresh = stream(seed, len);
        direct.corrupt_level(dom, 7, &mut fresh);

        let mut warmed = FaultInjector::new(model).unwrap();
        let mut other = stream(seed ^ 1, len);
        warmed.corrupt_level(dom ^ 0xABCD, 3, &mut other); // unrelated work first
        let mut probed = stream(seed, len);
        warmed.corrupt_level(dom, 7, &mut probed);
        prop_assert_eq!(fresh, probed);
    }

    /// A zero-rate model never touches a stream, never counts a fault, and
    /// never perturbs a generator spec — exactness, not "approximately off".
    #[test]
    fn zero_rate_is_exact(
        seed in any::<u64>(),
        dom in any::<u64>(),
        len in 1usize..500,
    ) {
        let mut inj = FaultInjector::new(FaultModel::with_stream_ber(0.0, seed)).unwrap();
        let original = stream(seed, len);
        let mut probed = original.clone();
        inj.corrupt_level(dom, 11, &mut probed);
        prop_assert_eq!(&original, &probed);
        let spec = geo_sc::RngSpec { seed: 0xACE1, poly: 0 };
        prop_assert_eq!(inj.corrupt_spec(dom, spec), spec);
        prop_assert_eq!(inj.stuck_mask(dom, 8), 0);
        prop_assert!(!inj.counters().any());
    }

    /// The realized flip fraction tracks the requested BER: for long
    /// streams it stays within a loose binomial band, and the counter
    /// matches the observed Hamming distance exactly.
    #[test]
    fn flip_rate_tracks_ber(seed in any::<u64>(), ber in 0.01f64..0.5) {
        let len = 20_000usize;
        let mut inj = FaultInjector::new(FaultModel::with_stream_ber(ber, seed)).unwrap();
        let original = stream(seed, len);
        let mut probed = original.clone();
        inj.corrupt_level(1, 1, &mut probed);
        let flips = (0..len).filter(|&i| original.get(i) != probed.get(i)).count() as u64;
        prop_assert_eq!(flips, inj.counters().stream_bits_flipped);
        let expect = ber * len as f64;
        let tol = 6.0 * (len as f64 * ber * (1.0 - ber)).sqrt() + 1.0;
        prop_assert!(
            (flips as f64 - expect).abs() < tol,
            "{} flips vs {} expected at ber {}", flips, expect, ber
        );
    }

    /// A stuck-at-one tap forces its bit in every generated value, so no
    /// output can have that bit clear.
    #[test]
    fn stuck_tap_forces_bit(seed in 1u32..0xFFFF, bit in 0u32..8) {
        let mask = 1u32 << bit;
        let mut rng = StuckAtRng::new(Box::new(Lfsr::new(8, seed).unwrap()), mask);
        for _ in 0..200 {
            prop_assert_eq!(rng.next_value() & mask, mask);
        }
        prop_assert_eq!(rng.width(), 8);
    }
}

#[test]
fn transient_faults_decorrelate_across_passes() {
    let mut inj = FaultInjector::new(FaultModel::with_stream_ber(0.1, 3)).unwrap();
    let original = stream(3, 4096);
    let mut first = original.clone();
    inj.corrupt_level(5, 2, &mut first);
    inj.begin_pass();
    let mut second = original.clone();
    inj.corrupt_level(5, 2, &mut second);
    assert_ne!(first, second, "per-pass fault draws must differ");
}

#[test]
fn static_faults_survive_passes() {
    let model = FaultModel {
        seed_corruption_rate: 1.0,
        lfsr_stuck_rate: 1.0,
        seed: 9,
        ..FaultModel::none()
    };
    let mut inj = FaultInjector::new(model).unwrap();
    let spec = geo_sc::RngSpec {
        seed: 0x1234,
        poly: 0,
    };
    let corrupted = inj.corrupt_spec(77, spec);
    let mask = inj.stuck_mask(77, 8);
    inj.begin_pass();
    inj.begin_pass();
    assert_eq!(
        inj.corrupt_spec(77, spec),
        corrupted,
        "static seed fault is stable"
    );
    assert_eq!(inj.stuck_mask(77, 8), mask, "static stuck tap is stable");
}
