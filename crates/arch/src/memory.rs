//! Memory models: on-chip SRAM (CACTI-like analytic fit) and HBM2 external
//! memory (after O'Connor et al., the model the paper cites for its LP
//! variant).

use serde::{Deserialize, Serialize};

/// An on-chip SRAM macro.
///
/// Analytic stand-in for CACTI 6.5 (see DESIGN.md §3): area linear in
/// capacity, access energy growing with the square root of capacity (wire
/// dominated), leakage linear in capacity. Constants anchored to published
/// 28 nm SRAM macros (≈0.35 µm²/bit including periphery; a 32 KB macro
/// reads 64 bits for ≈6 pJ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sram {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Read/write port width in bits.
    pub width_bits: usize,
}

impl Sram {
    /// Creates an SRAM macro model.
    pub fn new(bytes: usize, width_bits: usize) -> Self {
        Sram { bytes, width_bits }
    }

    /// Macro area in µm².
    pub fn area_um2(&self) -> f64 {
        const UM2_PER_BIT: f64 = 0.35;
        (self.bytes * 8) as f64 * UM2_PER_BIT
    }

    /// Energy of one full-width access, in picojoules.
    pub fn access_pj(&self) -> f64 {
        // E = (a + b·√bits_capacity) scaled by port width.
        let cap_bits = (self.bytes * 8) as f64;
        let per_bit = 0.004 + 0.00018 * cap_bits.sqrt();
        per_bit * self.width_bits as f64
    }

    /// Energy per byte moved, in picojoules.
    pub fn pj_per_byte(&self) -> f64 {
        self.access_pj() * 8.0 / self.width_bits as f64
    }

    /// Leakage power in nanowatts.
    pub fn leak_nw(&self) -> f64 {
        const NW_PER_BIT: f64 = 0.01;
        (self.bytes * 8) as f64 * NW_PER_BIT
    }

    /// Accesses needed to move `bytes` through the port.
    pub fn accesses_for(&self, bytes: usize) -> u64 {
        ((bytes * 8).div_ceil(self.width_bits)) as u64
    }

    /// Check bits per stored word under `scheme`.
    pub fn ecc_check_bits(&self, scheme: EccScheme) -> usize {
        scheme.check_bits(self.width_bits)
    }

    /// Storage overhead factor of `scheme`: protected capacity and port
    /// width grow by `(w + check_bits) / w`. `EccScheme::None` → 1.0.
    pub fn ecc_overhead_factor(&self, scheme: EccScheme) -> f64 {
        (self.width_bits + self.ecc_check_bits(scheme)) as f64 / self.width_bits as f64
    }

    /// Extra macro area in µm² for storing the check bits of `scheme`
    /// (encoder/decoder logic is counted with the datapath, not here).
    pub fn ecc_area_um2(&self, scheme: EccScheme) -> f64 {
        self.area_um2() * (self.ecc_overhead_factor(scheme) - 1.0)
    }

    /// Energy of one full-width access including check bits, in picojoules.
    pub fn ecc_access_pj(&self, scheme: EccScheme) -> f64 {
        self.access_pj() * self.ecc_overhead_factor(scheme)
    }

    /// Leakage power including check-bit storage, in nanowatts.
    pub fn ecc_leak_nw(&self, scheme: EccScheme) -> f64 {
        self.leak_nw() * self.ecc_overhead_factor(scheme)
    }

    /// Probability that one word read escapes the scheme's protection,
    /// given a raw per-bit upset probability `bit_ber` (e.g. from
    /// `OperatingPoint::bit_error_rate`).
    ///
    /// * `None`: any flipped bit corrupts the word — `1 − (1−p)^w`.
    /// * `Parity`: single flips are detected (and the access retried), so
    ///   only even-weight patterns escape; dominated by double flips
    ///   ≈ `C(n,2)·p²` over the `n = w+1` stored bits.
    /// * `Secded`: single flips corrected, doubles detected; triple flips
    ///   escape ≈ `C(n,3)·p³` over the `n = w+c` stored bits.
    pub fn residual_word_error(&self, scheme: EccScheme, bit_ber: f64) -> f64 {
        let p = bit_ber.clamp(0.0, 1.0);
        let n = (self.width_bits + self.ecc_check_bits(scheme)) as f64;
        let raw = match scheme {
            EccScheme::None => 1.0 - (1.0 - p).powf(n),
            EccScheme::Parity => n * (n - 1.0) / 2.0 * p * p,
            EccScheme::Secded => n * (n - 1.0) * (n - 2.0) / 6.0 * p * p * p,
        };
        raw.min(1.0)
    }
}

/// Error-protection scheme for an SRAM macro.
///
/// Modeled as a cost *query* on [`Sram`] rather than a field so existing
/// macro descriptions stay valid: the unprotected figures are the baseline
/// and each scheme reports its overhead on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EccScheme {
    /// No protection: raw bit upsets reach the datapath.
    #[default]
    None,
    /// One parity bit per word: detects (but cannot correct) odd-weight
    /// flips; the access is retried on detection.
    Parity,
    /// Hamming SECDED: corrects single flips, detects doubles.
    Secded,
}

impl EccScheme {
    /// Check bits required per `word_bits`-wide word.
    ///
    /// SECDED needs `⌈log₂(w)⌉ + 2` bits (e.g. 8 for a 64-bit word,
    /// the standard (72, 64) code).
    pub fn check_bits(&self, word_bits: usize) -> usize {
        match self {
            EccScheme::None => 0,
            EccScheme::Parity => 1,
            EccScheme::Secded => {
                let mut c = 0usize;
                while (1usize << c) < word_bits.max(1) {
                    c += 1;
                }
                c + 2
            }
        }
    }
}

/// HBM2 external memory model (O'Connor et al., MICRO 2017): ≈3.9 pJ/bit
/// end-to-end access energy, 256 GB/s per stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hbm2 {
    /// Access energy per bit, picojoules.
    pub pj_per_bit: f64,
    /// Peak bandwidth, gigabytes per second.
    pub bandwidth_gbs: f64,
}

impl Default for Hbm2 {
    fn default() -> Self {
        Hbm2 {
            pj_per_bit: 3.9,
            bandwidth_gbs: 256.0,
        }
    }
}

impl Hbm2 {
    /// Energy to move `bytes`, in picojoules.
    pub fn energy_pj(&self, bytes: u64) -> f64 {
        self.pj_per_bit * (bytes * 8) as f64
    }

    /// Time to move `bytes` at peak bandwidth, in nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_gbs
    }

    /// Cycles to move `bytes` at `freq_mhz`.
    pub fn transfer_cycles(&self, bytes: u64, freq_mhz: f64) -> u64 {
        (self.transfer_ns(bytes) * freq_mhz / 1e3).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_area_is_linear_in_capacity() {
        let a = Sram::new(32 * 1024, 64);
        let b = Sram::new(64 * 1024, 64);
        assert!((b.area_um2() / a.area_um2() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sram_access_energy_grows_sublinearly() {
        let small = Sram::new(8 * 1024, 64);
        let big = Sram::new(128 * 1024, 64);
        let ratio = big.access_pj() / small.access_pj();
        assert!(
            ratio > 1.5 && ratio < 16.0,
            "sublinear in capacity: {ratio}"
        );
    }

    #[test]
    fn sram_32kb_access_is_a_few_pj() {
        let m = Sram::new(32 * 1024, 64);
        let pj = m.access_pj();
        assert!(
            pj > 2.0 && pj < 15.0,
            "28nm-plausible access energy: {pj} pJ"
        );
    }

    #[test]
    fn wider_ports_cost_proportionally_more_per_access() {
        let narrow = Sram::new(32 * 1024, 32);
        let wide = Sram::new(32 * 1024, 128);
        assert!((wide.access_pj() / narrow.access_pj() - 4.0).abs() < 1e-9);
        // But the same per byte.
        assert!((wide.pj_per_byte() - narrow.pj_per_byte()).abs() < 1e-9);
    }

    #[test]
    fn access_counting() {
        let m = Sram::new(1024, 64);
        assert_eq!(m.accesses_for(8), 1);
        assert_eq!(m.accesses_for(9), 2);
        assert_eq!(m.accesses_for(64), 8);
    }

    #[test]
    fn secded_matches_standard_codes() {
        // (72, 64) and (39, 32): the classical Hamming SECDED widths.
        assert_eq!(EccScheme::Secded.check_bits(64), 8);
        assert_eq!(EccScheme::Secded.check_bits(32), 7);
        assert_eq!(EccScheme::Parity.check_bits(64), 1);
        assert_eq!(EccScheme::None.check_bits(64), 0);
    }

    #[test]
    fn ecc_costs_scale_with_check_bits() {
        let m = Sram::new(32 * 1024, 64);
        assert_eq!(m.ecc_area_um2(EccScheme::None), 0.0);
        assert_eq!(m.ecc_access_pj(EccScheme::None), m.access_pj());
        // (72, 64): 12.5% overhead on every figure.
        let f = m.ecc_overhead_factor(EccScheme::Secded);
        assert!((f - 72.0 / 64.0).abs() < 1e-12);
        assert!((m.ecc_access_pj(EccScheme::Secded) / m.access_pj() - f).abs() < 1e-12);
        assert!((m.ecc_leak_nw(EccScheme::Secded) / m.leak_nw() - f).abs() < 1e-12);
        assert!(
            m.ecc_area_um2(EccScheme::Parity) < m.ecc_area_um2(EccScheme::Secded),
            "parity is cheaper than SECDED"
        );
    }

    #[test]
    fn residual_error_orders_by_scheme_strength() {
        let m = Sram::new(32 * 1024, 64);
        let p = 1e-6; // the GEO DVFS point's BER
        let none = m.residual_word_error(EccScheme::None, p);
        let parity = m.residual_word_error(EccScheme::Parity, p);
        let secded = m.residual_word_error(EccScheme::Secded, p);
        assert!(
            none > parity && parity > secded,
            "{none} > {parity} > {secded}"
        );
        // Leading-order magnitudes: w·p, C(65,2)p², C(72,3)p³.
        assert!((none / (64.0 * p) - 1.0).abs() < 1e-3);
        assert!((parity / (65.0 * 64.0 / 2.0 * p * p) - 1.0).abs() < 1e-9);
        // Degenerate inputs stay probabilities.
        assert_eq!(m.residual_word_error(EccScheme::None, 1.0), 1.0);
        assert_eq!(m.residual_word_error(EccScheme::Secded, 0.0), 0.0);
        assert!(m.residual_word_error(EccScheme::Parity, 0.4) <= 1.0);
    }

    #[test]
    fn hbm2_defaults_match_cited_model() {
        let h = Hbm2::default();
        assert_eq!(h.pj_per_bit, 3.9);
        assert_eq!(h.bandwidth_gbs, 256.0);
        // 1 KB transfer: 8192 bits × 3.9 pJ.
        assert!((h.energy_pj(1024) - 31948.8).abs() < 0.1);
        assert!(h.transfer_ns(256) > 0.9 && h.transfer_ns(256) < 1.1);
        assert_eq!(h.transfer_cycles(256_000, 400.0), 400);
    }

    #[test]
    fn external_access_dwarfs_on_chip() {
        // The paper's "modest energy reduction is caused by the high cost
        // of external memory accesses" requires HBM ≫ SRAM per byte.
        let sram = Sram::new(256 * 1024, 128);
        let hbm = Hbm2::default();
        let hbm_per_byte = hbm.energy_pj(1);
        assert!(hbm_per_byte > 3.0 * sram.pj_per_byte());
    }
}
