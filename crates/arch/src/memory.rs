//! Memory models: on-chip SRAM (CACTI-like analytic fit) and HBM2 external
//! memory (after O'Connor et al., the model the paper cites for its LP
//! variant).

use serde::{Deserialize, Serialize};

/// An on-chip SRAM macro.
///
/// Analytic stand-in for CACTI 6.5 (see DESIGN.md §3): area linear in
/// capacity, access energy growing with the square root of capacity (wire
/// dominated), leakage linear in capacity. Constants anchored to published
/// 28 nm SRAM macros (≈0.35 µm²/bit including periphery; a 32 KB macro
/// reads 64 bits for ≈6 pJ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sram {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Read/write port width in bits.
    pub width_bits: usize,
}

impl Sram {
    /// Creates an SRAM macro model.
    pub fn new(bytes: usize, width_bits: usize) -> Self {
        Sram { bytes, width_bits }
    }

    /// Macro area in µm².
    pub fn area_um2(&self) -> f64 {
        const UM2_PER_BIT: f64 = 0.35;
        (self.bytes * 8) as f64 * UM2_PER_BIT
    }

    /// Energy of one full-width access, in picojoules.
    pub fn access_pj(&self) -> f64 {
        // E = (a + b·√bits_capacity) scaled by port width.
        let cap_bits = (self.bytes * 8) as f64;
        let per_bit = 0.004 + 0.00018 * cap_bits.sqrt();
        per_bit * self.width_bits as f64
    }

    /// Energy per byte moved, in picojoules.
    pub fn pj_per_byte(&self) -> f64 {
        self.access_pj() * 8.0 / self.width_bits as f64
    }

    /// Leakage power in nanowatts.
    pub fn leak_nw(&self) -> f64 {
        const NW_PER_BIT: f64 = 0.01;
        (self.bytes * 8) as f64 * NW_PER_BIT
    }

    /// Accesses needed to move `bytes` through the port.
    pub fn accesses_for(&self, bytes: usize) -> u64 {
        ((bytes * 8).div_ceil(self.width_bits)) as u64
    }
}

/// HBM2 external memory model (O'Connor et al., MICRO 2017): ≈3.9 pJ/bit
/// end-to-end access energy, 256 GB/s per stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hbm2 {
    /// Access energy per bit, picojoules.
    pub pj_per_bit: f64,
    /// Peak bandwidth, gigabytes per second.
    pub bandwidth_gbs: f64,
}

impl Default for Hbm2 {
    fn default() -> Self {
        Hbm2 {
            pj_per_bit: 3.9,
            bandwidth_gbs: 256.0,
        }
    }
}

impl Hbm2 {
    /// Energy to move `bytes`, in picojoules.
    pub fn energy_pj(&self, bytes: u64) -> f64 {
        self.pj_per_bit * (bytes * 8) as f64
    }

    /// Time to move `bytes` at peak bandwidth, in nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_gbs
    }

    /// Cycles to move `bytes` at `freq_mhz`.
    pub fn transfer_cycles(&self, bytes: u64, freq_mhz: f64) -> u64 {
        (self.transfer_ns(bytes) * freq_mhz / 1e3).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_area_is_linear_in_capacity() {
        let a = Sram::new(32 * 1024, 64);
        let b = Sram::new(64 * 1024, 64);
        assert!((b.area_um2() / a.area_um2() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sram_access_energy_grows_sublinearly() {
        let small = Sram::new(8 * 1024, 64);
        let big = Sram::new(128 * 1024, 64);
        let ratio = big.access_pj() / small.access_pj();
        assert!(ratio > 1.5 && ratio < 16.0, "sublinear in capacity: {ratio}");
    }

    #[test]
    fn sram_32kb_access_is_a_few_pj() {
        let m = Sram::new(32 * 1024, 64);
        let pj = m.access_pj();
        assert!(pj > 2.0 && pj < 15.0, "28nm-plausible access energy: {pj} pJ");
    }

    #[test]
    fn wider_ports_cost_proportionally_more_per_access() {
        let narrow = Sram::new(32 * 1024, 32);
        let wide = Sram::new(32 * 1024, 128);
        assert!((wide.access_pj() / narrow.access_pj() - 4.0).abs() < 1e-9);
        // But the same per byte.
        assert!((wide.pj_per_byte() - narrow.pj_per_byte()).abs() < 1e-9);
    }

    #[test]
    fn access_counting() {
        let m = Sram::new(1024, 64);
        assert_eq!(m.accesses_for(8), 1);
        assert_eq!(m.accesses_for(9), 2);
        assert_eq!(m.accesses_for(64), 8);
    }

    #[test]
    fn hbm2_defaults_match_cited_model() {
        let h = Hbm2::default();
        assert_eq!(h.pj_per_bit, 3.9);
        assert_eq!(h.bandwidth_gbs, 256.0);
        // 1 KB transfer: 8192 bits × 3.9 pJ.
        assert!((h.energy_pj(1024) - 31948.8).abs() < 0.1);
        assert!(h.transfer_ns(256) > 0.9 && h.transfer_ns(256) < 1.1);
        assert_eq!(h.transfer_cycles(256_000, 400.0), 400);
    }

    #[test]
    fn external_access_dwarfs_on_chip() {
        // The paper's "modest energy reduction is caused by the high cost
        // of external memory accesses" requires HBM ≫ SRAM per byte.
        let sram = Sram::new(256 * 1024, 128);
        let hbm = Hbm2::default();
        let hbm_per_byte = hbm.energy_pj(1) ;
        assert!(hbm_per_byte > 3.0 * sram.pj_per_byte());
    }
}
