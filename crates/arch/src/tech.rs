//! 28 nm technology constants and scaling rules.
//!
//! Stand-in for the commercial 28 nm HVT library the paper synthesizes
//! with (see DESIGN.md §3): per-gate-equivalent area/energy/leakage
//! constants with supply-voltage scaling. Absolute values are calibrated to
//! land near published 28 nm standard-cell figures; every experiment in the
//! paper compares *ratios* under one consistent constant set, which this
//! preserves.

use serde::{Deserialize, Serialize};

/// One gate equivalent (GE) = the area of a NAND2 cell.
pub const GE_AREA_UM2: f64 = 0.49;
/// Dynamic energy per GE toggle at nominal voltage, in femtojoules.
pub const GE_DYN_FJ: f64 = 0.8;
/// Leakage power per GE (HVT cells), in nanowatts at nominal voltage.
pub const GE_LEAK_NW: f64 = 0.15;

/// Gate-equivalent cost of common cells.
pub mod ge {
    /// 2-input NAND/AND/OR-class gate.
    pub const GATE2: f64 = 1.0;
    /// 2-input XOR.
    pub const XOR2: f64 = 2.0;
    /// D flip-flop.
    pub const DFF: f64 = 4.5;
    /// Full adder.
    pub const FULL_ADDER: f64 = 4.5;
    /// 2:1 multiplexer.
    pub const MUX2: f64 = 2.5;
    /// Per-bit comparator cost (magnitude compare).
    pub const CMP_BIT: f64 = 2.0;
}

/// Operating point: supply voltage and clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

impl OperatingPoint {
    /// Nominal 28 nm point used by the baselines: 0.9 V, 400 MHz.
    pub fn nominal() -> Self {
        OperatingPoint {
            voltage: 0.9,
            freq_mhz: 400.0,
        }
    }

    /// GEO's DVFS point: the >30% critical-path cut from pipelining
    /// (§III-D) converts into a 0.81 V supply at the same 400 MHz.
    pub fn geo_dvfs() -> Self {
        OperatingPoint {
            voltage: 0.81,
            freq_mhz: 400.0,
        }
    }

    /// Dynamic-energy scale factor vs. nominal: `(V / V_nom)²`.
    pub fn dynamic_scale(&self) -> f64 {
        let r = self.voltage / 0.9;
        r * r
    }

    /// Leakage-power scale factor vs. nominal (≈ linear-plus in V; a
    /// conservative `(V/V_nom)^1.5` model).
    pub fn leakage_scale(&self) -> f64 {
        (self.voltage / 0.9).powf(1.5)
    }

    /// Clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        1e3 / self.freq_mhz
    }

    /// Datapath bit-error rate at this supply voltage.
    ///
    /// Undervolting erodes timing margin, and near-threshold failure rates
    /// grow exponentially with the voltage deficit — the standard
    /// Razor/voltage-speculation observation. We anchor the curve at
    /// 10⁻⁹ errors/bit at the nominal 0.9 V and let it grow one decade per
    /// 30 mV below nominal (clamped to 0.5, a fully random bit):
    ///
    /// * 0.9 V (nominal) → 10⁻⁹
    /// * 0.81 V (GEO's DVFS point) → 10⁻⁶
    /// * 0.72 V (aggressive) → 10⁻³
    ///
    /// Feed the result into
    /// [`geo_sc::fault::FaultModel::stream_ber`] to co-simulate
    /// accuracy-vs-voltage (the `fault_sweep` bench binary does exactly
    /// this). Above-nominal voltages round down to the nominal floor.
    pub fn bit_error_rate(&self) -> f64 {
        const NOMINAL_V: f64 = 0.9;
        const BER_NOMINAL: f64 = 1e-9;
        const VOLTS_PER_DECADE: f64 = 0.03;
        let deficit = (NOMINAL_V - self.voltage).max(0.0);
        (BER_NOMINAL * 10f64.powf(deficit / VOLTS_PER_DECADE)).min(0.5)
    }
}

/// An area/energy/leakage triple for a hardware block.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockCost {
    /// Area in µm².
    pub area_um2: f64,
    /// Dynamic energy per active cycle, in femtojoules (at nominal V).
    pub dyn_fj_per_cycle: f64,
    /// Leakage power in nanowatts (at nominal V).
    pub leak_nw: f64,
}

impl BlockCost {
    /// Cost of a block of `ge` gate equivalents with activity factor
    /// `alpha` (fraction of gates toggling per active cycle).
    pub fn from_ge(ge: f64, alpha: f64) -> Self {
        BlockCost {
            area_um2: ge * GE_AREA_UM2,
            dyn_fj_per_cycle: ge * alpha * GE_DYN_FJ,
            leak_nw: ge * GE_LEAK_NW,
        }
    }

    /// Sums two block costs.
    pub fn plus(self, other: BlockCost) -> BlockCost {
        BlockCost {
            area_um2: self.area_um2 + other.area_um2,
            dyn_fj_per_cycle: self.dyn_fj_per_cycle + other.dyn_fj_per_cycle,
            leak_nw: self.leak_nw + other.leak_nw,
        }
    }

    /// Scales the block by an instance count.
    pub fn times(self, n: f64) -> BlockCost {
        BlockCost {
            area_um2: self.area_um2 * n,
            dyn_fj_per_cycle: self.dyn_fj_per_cycle * n,
            leak_nw: self.leak_nw * n,
        }
    }
}

/// Converts µm² to mm².
pub fn um2_to_mm2(um2: f64) -> f64 {
    um2 * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_matches_paper() {
        let p = OperatingPoint::nominal();
        assert_eq!(p.voltage, 0.9);
        assert_eq!(p.freq_mhz, 400.0);
        assert!((p.dynamic_scale() - 1.0).abs() < 1e-12);
        assert!((p.leakage_scale() - 1.0).abs() < 1e-12);
        assert!((p.period_ns() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ber_curve_hits_anchor_points() {
        let nominal = OperatingPoint::nominal().bit_error_rate();
        assert!((nominal - 1e-9).abs() < 1e-12);
        let dvfs = OperatingPoint::geo_dvfs().bit_error_rate();
        assert!(
            (dvfs - 1e-6).abs() / 1e-6 < 1e-6,
            "0.81 V → 1e-6, got {dvfs}"
        );
        // Deep undervolting clamps at a fully random bit.
        let deep = OperatingPoint {
            voltage: 0.3,
            freq_mhz: 400.0,
        };
        assert_eq!(deep.bit_error_rate(), 0.5);
        // Overvolting never goes below the nominal floor.
        let over = OperatingPoint {
            voltage: 1.0,
            freq_mhz: 400.0,
        };
        assert_eq!(over.bit_error_rate(), 1e-9);
    }

    #[test]
    fn ber_curve_is_monotone_in_undervoltage() {
        let mut prev = 0.0;
        for step in 0..30 {
            let v = 0.9 - 0.01 * step as f64;
            let ber = OperatingPoint {
                voltage: v,
                freq_mhz: 400.0,
            }
            .bit_error_rate();
            assert!(ber >= prev, "ber({v}) = {ber} < {prev}");
            prev = ber;
        }
    }

    #[test]
    fn dvfs_point_saves_energy() {
        let p = OperatingPoint::geo_dvfs();
        assert_eq!(p.voltage, 0.81);
        // 0.81/0.9 = 0.9 → dynamic scale 0.81.
        assert!((p.dynamic_scale() - 0.81).abs() < 1e-9);
        assert!(p.leakage_scale() < 1.0);
        assert_eq!(p.freq_mhz, 400.0, "DVFS keeps frequency (paper §III-D)");
    }

    #[test]
    fn block_cost_composition() {
        let a = BlockCost::from_ge(100.0, 0.5);
        assert!((a.area_um2 - 49.0).abs() < 1e-9);
        assert!((a.dyn_fj_per_cycle - 40.0).abs() < 1e-9);
        let b = a.plus(a).times(2.0);
        assert!((b.area_um2 - 196.0).abs() < 1e-9);
        assert!((b.leak_nw - 60.0).abs() < 1e-9);
    }

    #[test]
    fn unit_conversion() {
        assert!((um2_to_mm2(1e6) - 1.0).abs() < 1e-12);
    }
}
