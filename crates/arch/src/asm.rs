//! Text assembler / disassembler for GEO programs.
//!
//! The compiler is no longer the only way to produce a [`Program`]: this
//! module defines a line-oriented assembly syntax (modeled on the
//! assembler / serialized-program split of stack-machine toolchains) so
//! programs can be written by hand, diffed in review, and differentially
//! tested against the compiler.
//!
//! ```text
//! ; comment to end of line
//! .program "LeNet-5 (MNIST)"      ; required, once, before any code
//! .layer                          ; marks a layer start (begin_layer)
//!   ldw.ext 123456                ; LoadWeightsExternal { bytes }
//!   ldw 2400                      ; LoadWeights { bytes }
//!   lda 75                        ; LoadActivations { bytes }
//!   gen cycles=64 macs=25600 layer=0 sng=0 cout=0..32 pos=0..64 col=0/1
//!   nm.acc elements=8192 layer=0  ; NearMemAccumulate
//!   nm.bn elements=2048 layer=0   ; NearMemBatchNorm
//!   sta 8192                      ; WriteActivations { bytes }
//!   sync
//! ```
//!
//! [`disassemble`] emits the canonical form (two-space indent, operands in
//! the order above); [`assemble`] additionally accepts arbitrary
//! whitespace, `;` comments, hex literals (`0x…`), and `gen`/`nm.*`
//! key-value operands in any order. Canonical text is a fixpoint:
//! `disassemble(assemble(text)) == text`, and for every program
//! `assemble(disassemble(p)) == p` — the contract
//! `crates/arch/tests/artifact_roundtrip.rs` pins across the compiled
//! bench programs.

use crate::isa::{Instr, Program, Tile};
use std::fmt;

/// An assembly error, located at a 1-based source line (0 for
/// program-level errors such as a missing `.program` directive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line the error was detected on; 0 if program-level.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "line {}: {}", self.line, self.kind)
        }
    }
}

/// Classification of assembly / disassembly failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// No `.program "<name>"` directive before the first statement.
    MissingProgram,
    /// A second `.program` directive, or one after code has started.
    MisplacedProgram,
    /// A quoted string that is unterminated or malformed.
    BadString(String),
    /// A mnemonic or directive this ISA does not define.
    UnknownMnemonic(String),
    /// An operand that is missing for its instruction.
    MissingOperand(&'static str),
    /// An operand that failed to parse or is out of range for its type.
    BadOperand {
        /// Operand name.
        operand: &'static str,
        /// The offending text.
        found: String,
    },
    /// A token beyond what the instruction accepts (or a duplicate
    /// key-value operand).
    ExtraOperand(String),
    /// Disassembly-side: the in-memory program cannot be rendered (layer
    /// table not in order, or a name with control characters).
    Unrepresentable(String),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::MissingProgram => {
                write!(f, "missing `.program \"<name>\"` directive")
            }
            AsmErrorKind::MisplacedProgram => {
                write!(f, "`.program` must appear exactly once, before any code")
            }
            AsmErrorKind::BadString(s) => write!(f, "malformed string literal: {s}"),
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::MissingOperand(op) => write!(f, "missing operand `{op}`"),
            AsmErrorKind::BadOperand { operand, found } => {
                write!(f, "bad value `{found}` for operand `{operand}`")
            }
            AsmErrorKind::ExtraOperand(t) => write!(f, "unexpected operand `{t}`"),
            AsmErrorKind::Unrepresentable(why) => {
                write!(f, "program not representable as assembly: {why}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, kind: AsmErrorKind) -> AsmError {
    AsmError { line, kind }
}

/// Renders `program` in canonical assembly text.
///
/// # Errors
///
/// Returns [`AsmErrorKind::Unrepresentable`] if the layer table is not
/// non-decreasing and within bounds (text `.layer` markers are inherently
/// ordered), or if the program name contains control characters.
pub fn disassemble(program: &Program) -> Result<String, AsmError> {
    if let Some(w) = program
        .layer_starts
        .windows(2)
        .find(|w| w[0] > w[1])
        .or_else(|| {
            program
                .layer_starts
                .last()
                .filter(|&&s| s > program.instrs.len())
                .map(std::slice::from_ref)
        })
    {
        return Err(err(
            0,
            AsmErrorKind::Unrepresentable(format!("layer table not in order: {w:?}")),
        ));
    }
    let mut out = String::new();
    out.push_str(".program ");
    out.push_str(&quote(&program.name)?);
    out.push('\n');
    let mut si = 0;
    for i in 0..=program.instrs.len() {
        while si < program.layer_starts.len() && program.layer_starts[si] == i {
            out.push_str(".layer\n");
            si += 1;
        }
        if let Some(instr) = program.instrs.get(i) {
            out.push_str("  ");
            out.push_str(&render(instr));
            out.push('\n');
        }
    }
    Ok(out)
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns a located [`AsmError`] for unknown mnemonics, missing /
/// duplicate / malformed operands, malformed strings, or a missing or
/// misplaced `.program` directive.
pub fn assemble(text: &str) -> Result<Program, AsmError> {
    let mut name: Option<String> = None;
    let mut program = Program::new("");
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".program") {
            if name.is_some() || !program.instrs.is_empty() || !program.layer_starts.is_empty() {
                return Err(err(lineno, AsmErrorKind::MisplacedProgram));
            }
            name = Some(unquote(rest.trim(), lineno)?);
        } else if line == ".layer" {
            if name.is_none() {
                return Err(err(lineno, AsmErrorKind::MissingProgram));
            }
            program.begin_layer();
        } else {
            if name.is_none() {
                return Err(err(lineno, AsmErrorKind::MissingProgram));
            }
            program.push(parse_instr(line, lineno)?);
        }
    }
    program.name = name.ok_or_else(|| err(0, AsmErrorKind::MissingProgram))?;
    Ok(program)
}

/// Canonical one-line rendering of an instruction.
fn render(instr: &Instr) -> String {
    match *instr {
        Instr::LoadWeightsExternal { bytes } => format!("ldw.ext {bytes}"),
        Instr::LoadWeights { bytes } => format!("ldw {bytes}"),
        Instr::LoadActivations { bytes } => format!("lda {bytes}"),
        Instr::Generate {
            cycles,
            active_macs,
            ref tile,
        } => format!(
            "gen cycles={cycles} macs={active_macs} layer={} sng={} cout={}..{} pos={}..{} col={}/{}",
            tile.layer,
            tile.sng_group,
            tile.cout_begin,
            tile.cout_end,
            tile.pos_begin,
            tile.pos_end,
            tile.col_pass,
            tile.col_passes,
        ),
        Instr::NearMemAccumulate { elements, layer } => {
            format!("nm.acc elements={elements} layer={layer}")
        }
        Instr::NearMemBatchNorm { elements, layer } => {
            format!("nm.bn elements={elements} layer={layer}")
        }
        Instr::WriteActivations { bytes } => format!("sta {bytes}"),
        Instr::Sync => "sync".to_string(),
    }
}

fn parse_instr(line: &str, lineno: usize) -> Result<Instr, AsmError> {
    let mut tokens = line.split_whitespace();
    let mnemonic = tokens.next().unwrap_or_default();
    let rest: Vec<&str> = tokens.collect();
    let one_positional = |variant: fn(u64) -> Instr| -> Result<Instr, AsmError> {
        match rest.as_slice() {
            [v] => Ok(variant(parse_u64("bytes", v, lineno)?)),
            [] => Err(err(lineno, AsmErrorKind::MissingOperand("bytes"))),
            [_, extra, ..] => Err(err(lineno, AsmErrorKind::ExtraOperand((*extra).into()))),
        }
    };
    match mnemonic {
        "ldw.ext" => one_positional(|bytes| Instr::LoadWeightsExternal { bytes }),
        "ldw" => one_positional(|bytes| Instr::LoadWeights { bytes }),
        "lda" => one_positional(|bytes| Instr::LoadActivations { bytes }),
        "sta" => one_positional(|bytes| Instr::WriteActivations { bytes }),
        "sync" => match rest.as_slice() {
            [] => Ok(Instr::Sync),
            [extra, ..] => Err(err(lineno, AsmErrorKind::ExtraOperand((*extra).into()))),
        },
        "nm.acc" | "nm.bn" => {
            let mut ops = KeyValues::parse(&rest, &["elements", "layer"], lineno)?;
            let elements = ops.take_u64("elements")?;
            let layer = ops.take_u32("layer")?;
            Ok(if mnemonic == "nm.acc" {
                Instr::NearMemAccumulate { elements, layer }
            } else {
                Instr::NearMemBatchNorm { elements, layer }
            })
        }
        "gen" => {
            let mut ops = KeyValues::parse(
                &rest,
                &["cycles", "macs", "layer", "sng", "cout", "pos", "col"],
                lineno,
            )?;
            let cycles = ops.take_u64("cycles")?;
            let active_macs = ops.take_u64("macs")?;
            let layer = ops.take_u32("layer")?;
            let sng_group = ops.take_u32("sng")?;
            let (cout_begin, cout_end) = ops.take_range("cout")?;
            let (pos_begin, pos_end) = ops.take_range("pos")?;
            let (col_pass, col_passes) = ops.take_pair("col", '/')?;
            Ok(Instr::Generate {
                cycles,
                active_macs,
                tile: Tile {
                    layer,
                    sng_group,
                    cout_begin,
                    cout_end,
                    pos_begin,
                    pos_end,
                    col_pass,
                    col_passes,
                },
            })
        }
        other => Err(err(lineno, AsmErrorKind::UnknownMnemonic(other.into()))),
    }
}

/// `key=value` operand list: tokens are matched against a closed key set,
/// duplicates rejected, and every key must be consumed exactly once.
struct KeyValues<'a> {
    /// `(key, value)` pairs, with values taken out as they are consumed.
    pairs: Vec<(&'static str, Option<&'a str>)>,
    lineno: usize,
}

impl<'a> KeyValues<'a> {
    fn parse(tokens: &[&'a str], keys: &[&'static str], lineno: usize) -> Result<Self, AsmError> {
        let mut pairs: Vec<(&'static str, Option<&'a str>)> =
            keys.iter().map(|&k| (k, None)).collect();
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return Err(err(lineno, AsmErrorKind::ExtraOperand((*token).into())));
            };
            let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) else {
                return Err(err(lineno, AsmErrorKind::ExtraOperand((*token).into())));
            };
            if slot.1.replace(value).is_some() {
                return Err(err(lineno, AsmErrorKind::ExtraOperand((*token).into())));
            }
        }
        Ok(KeyValues { pairs, lineno })
    }

    fn raw(&mut self, key: &'static str) -> Result<&'a str, AsmError> {
        self.pairs
            .iter_mut()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| v.take())
            .ok_or_else(|| err(self.lineno, AsmErrorKind::MissingOperand(key)))
    }

    fn take_u64(&mut self, key: &'static str) -> Result<u64, AsmError> {
        let v = self.raw(key)?;
        parse_u64(key, v, self.lineno)
    }

    fn take_u32(&mut self, key: &'static str) -> Result<u32, AsmError> {
        let v = self.raw(key)?;
        parse_u32(key, v, self.lineno)
    }

    /// `key=a..b` (half-open range operand).
    fn take_range(&mut self, key: &'static str) -> Result<(u32, u32), AsmError> {
        let v = self.raw(key)?;
        let Some((a, b)) = v.split_once("..") else {
            return Err(err(
                self.lineno,
                AsmErrorKind::BadOperand {
                    operand: key,
                    found: v.into(),
                },
            ));
        };
        Ok((
            parse_u32(key, a, self.lineno)?,
            parse_u32(key, b, self.lineno)?,
        ))
    }

    /// `key=a<sep>b` (pass-of-passes operand).
    fn take_pair(&mut self, key: &'static str, sep: char) -> Result<(u32, u32), AsmError> {
        let v = self.raw(key)?;
        let Some((a, b)) = v.split_once(sep) else {
            return Err(err(
                self.lineno,
                AsmErrorKind::BadOperand {
                    operand: key,
                    found: v.into(),
                },
            ));
        };
        Ok((
            parse_u32(key, a, self.lineno)?,
            parse_u32(key, b, self.lineno)?,
        ))
    }
}

fn parse_u64(operand: &'static str, text: &str, lineno: usize) -> Result<u64, AsmError> {
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| {
        err(
            lineno,
            AsmErrorKind::BadOperand {
                operand,
                found: text.into(),
            },
        )
    })
}

fn parse_u32(operand: &'static str, text: &str, lineno: usize) -> Result<u32, AsmError> {
    u32::try_from(parse_u64(operand, text, lineno)?).map_err(|_| {
        err(
            lineno,
            AsmErrorKind::BadOperand {
                operand,
                found: text.into(),
            },
        )
    })
}

/// Quotes a program name, escaping `\` and `"`.
fn quote(name: &str) -> Result<String, AsmError> {
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        if c.is_control() {
            return Err(err(
                0,
                AsmErrorKind::Unrepresentable(format!("name contains control character {:?}", c)),
            ));
        }
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    Ok(out)
}

/// Parses a quoted program name.
fn unquote(text: &str, lineno: usize) -> Result<String, AsmError> {
    let bad = |why: &str| err(lineno, AsmErrorKind::BadString(format!("{why}: {text}")));
    let mut chars = text.chars();
    if chars.next() != Some('"') {
        return Err(bad("expected opening quote"));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err(bad("unterminated")),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some(c @ ('"' | '\\')) => out.push(c),
                _ => return Err(bad("invalid escape")),
            },
            Some(c) if c.is_control() => return Err(bad("control character in string")),
            Some(c) => out.push(c),
        }
    }
    if chars.next().is_some() {
        return Err(bad("trailing characters after closing quote"));
    }
    Ok(out)
}

/// Strips a `;` comment, honoring quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ';' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelConfig;
    use crate::compiler::compile;
    use crate::network::NetworkDesc;

    fn sample_program() -> Program {
        let mut p = Program::new("sample (v1) \"quoted\"");
        p.begin_layer();
        p.push(Instr::LoadWeightsExternal { bytes: 123_456 });
        p.push(Instr::LoadWeights { bytes: 2400 });
        p.push(Instr::LoadActivations { bytes: 75 });
        p.push(Instr::Generate {
            cycles: 256,
            active_macs: 25_600,
            tile: Tile {
                layer: 3,
                sng_group: 1,
                cout_begin: 32,
                cout_end: 64,
                pos_begin: 256,
                pos_end: 512,
                col_pass: 1,
                col_passes: 2,
            },
        });
        p.push(Instr::NearMemAccumulate {
            elements: 8192,
            layer: 3,
        });
        p.begin_layer();
        p.push(Instr::NearMemBatchNorm {
            elements: 2048,
            layer: 3,
        });
        p.push(Instr::WriteActivations { bytes: 8192 });
        p.push(Instr::Sync);
        p
    }

    #[test]
    fn every_instruction_round_trips_through_text() {
        let p = sample_program();
        let text = disassemble(&p).unwrap();
        let back = assemble(&text).unwrap();
        assert_eq!(back, p);
        // Canonical text is a fixpoint.
        assert_eq!(disassemble(&back).unwrap(), text);
    }

    #[test]
    fn compiled_program_round_trips_through_text() {
        let net = NetworkDesc::lenet5_mnist();
        let p = compile(&net, &AccelConfig::ulp_geo(32, 64));
        let text = disassemble(&p).unwrap();
        assert_eq!(assemble(&text).unwrap(), p);
    }

    #[test]
    fn accepts_comments_whitespace_hex_and_any_operand_order() {
        let text = r#"
            ; a hand-written program
            .program "hand ; written"   ; semicolon inside the quotes stays
            .layer
               ldw 0x960                ; hex literal
               gen macs=25600 cycles=256 sng=1 layer=3 col=1/2 pos=256..512 cout=32..64
               sync
        "#;
        let p = assemble(text).unwrap();
        assert_eq!(p.name, "hand ; written");
        assert_eq!(p.instrs.len(), 3);
        assert_eq!(p.instrs[0], Instr::LoadWeights { bytes: 0x960 });
        assert_eq!(p.layer_starts, vec![0]);
        match p.instrs[1] {
            Instr::Generate {
                cycles, ref tile, ..
            } => {
                assert_eq!(cycles, 256);
                assert_eq!((tile.cout_begin, tile.cout_end), (32, 64));
                assert_eq!((tile.col_pass, tile.col_passes), (1, 2));
            }
            ref other => panic!("expected gen, got {other:?}"),
        }
    }

    #[test]
    fn trailing_and_empty_layers_round_trip() {
        let mut p = Program::new("layers");
        p.begin_layer();
        p.begin_layer(); // empty first layer
        p.push(Instr::Sync);
        p.begin_layer(); // trailing empty layer
        let text = disassemble(&p).unwrap();
        assert_eq!(assemble(&text).unwrap(), p);
    }

    #[test]
    fn errors_are_located_and_typed() {
        let cases: &[(&str, AsmErrorKind)] = &[
            ("sync", AsmErrorKind::MissingProgram),
            (".layer", AsmErrorKind::MissingProgram),
            (
                ".program \"a\"\n.program \"b\"",
                AsmErrorKind::MisplacedProgram,
            ),
            (
                ".program \"a\"\nfrobnicate 1",
                AsmErrorKind::UnknownMnemonic("frobnicate".into()),
            ),
            (".program \"a\"\nldw", AsmErrorKind::MissingOperand("bytes")),
            (
                ".program \"a\"\nldw 12 13",
                AsmErrorKind::ExtraOperand("13".into()),
            ),
            (
                ".program \"a\"\nsync now",
                AsmErrorKind::ExtraOperand("now".into()),
            ),
            (
                ".program \"a\"\nldw twelve",
                AsmErrorKind::BadOperand {
                    operand: "bytes",
                    found: "twelve".into(),
                },
            ),
            (
                ".program \"a\"\nnm.acc elements=1",
                AsmErrorKind::MissingOperand("layer"),
            ),
            (
                ".program \"a\"\nnm.acc elements=1 layer=1 layer=2",
                AsmErrorKind::ExtraOperand("layer=2".into()),
            ),
            (
                ".program \"a\"\ngen cycles=1 macs=1 layer=0 sng=0 cout=zero..1 pos=0..1 col=0/1",
                AsmErrorKind::BadOperand {
                    operand: "cout",
                    found: "zero".into(),
                },
            ),
            (
                ".program \"a\"\ngen cycles=1 macs=1 layer=0 sng=0 cout=5 pos=0..1 col=0/1",
                AsmErrorKind::BadOperand {
                    operand: "cout",
                    found: "5".into(),
                },
            ),
            (
                ".program \"a\"\nnm.acc elements=1 layer=4294967296",
                AsmErrorKind::BadOperand {
                    operand: "layer",
                    found: "4294967296".into(),
                },
            ),
            (
                ".program unquoted",
                AsmErrorKind::BadString("expected opening quote: unquoted".into()),
            ),
            (
                ".program \"open",
                AsmErrorKind::BadString("unterminated: \"open".into()),
            ),
        ];
        for (text, kind) in cases {
            let e = assemble(text).unwrap_err();
            assert_eq!(&e.kind, kind, "for input {text:?}");
            assert!(!e.to_string().is_empty());
        }
        // The missing-directive error for a file with no code at all is
        // program-level (line 0).
        assert_eq!(assemble("; nothing\n").unwrap_err().line, 0);
        // Located errors carry the right line.
        assert_eq!(assemble(".program \"a\"\n\nldw x").unwrap_err().line, 3);
    }

    #[test]
    fn unrepresentable_programs_are_rejected() {
        let mut p = Program::new("bad");
        p.push(Instr::Sync);
        p.layer_starts = vec![1, 0];
        assert!(matches!(
            disassemble(&p).unwrap_err().kind,
            AsmErrorKind::Unrepresentable(_)
        ));
        p.layer_starts = vec![5];
        assert!(matches!(
            disassemble(&p).unwrap_err().kind,
            AsmErrorKind::Unrepresentable(_)
        ));
        let p = Program::new("new\nline");
        assert!(matches!(
            disassemble(&p).unwrap_err().kind,
            AsmErrorKind::Unrepresentable(_)
        ));
    }
}
