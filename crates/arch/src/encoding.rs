//! Binary instruction encoding for the GEO ISA.
//!
//! GEO is programmable with its own instruction memory (§III-A); this
//! module defines a compact fixed-width encoding (8 bytes per instruction:
//! 1 opcode byte + 7 bytes of immediate) so compiled programs have a
//! concrete footprint, and the control/instruction-memory budget of a
//! design point can be checked against real networks.

use crate::isa::{Instr, Program};
use std::fmt;

/// Bytes per encoded instruction.
pub const INSTR_BYTES: usize = 8;

/// Errors produced when decoding an instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The byte stream length is not a multiple of [`INSTR_BYTES`].
    TruncatedStream {
        /// Offending length.
        len: usize,
    },
    /// An unknown opcode byte.
    UnknownOpcode {
        /// The rejected opcode.
        opcode: u8,
        /// Instruction index.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedStream { len } => {
                write!(
                    f,
                    "stream of {len} bytes is not a whole number of instructions"
                )
            }
            DecodeError::UnknownOpcode { opcode, index } => {
                write!(f, "unknown opcode {opcode:#04x} at instruction {index}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_LDW_EXT: u8 = 0x01;
const OP_LDW: u8 = 0x02;
const OP_LDA: u8 = 0x03;
const OP_GEN: u8 = 0x04;
const OP_NMACC: u8 = 0x05;
const OP_NMBN: u8 = 0x06;
const OP_STA: u8 = 0x07;
const OP_SYNC: u8 = 0x08;

fn put(buf: &mut Vec<u8>, opcode: u8, imm: u64) {
    buf.push(opcode);
    buf.extend_from_slice(&imm.to_le_bytes()[..7]);
}

fn imm(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..7].copy_from_slice(&bytes[1..8]);
    u64::from_le_bytes(b)
}

/// Encodes one instruction into `buf`.
///
/// `Generate`'s two fields pack as 28-bit cycles + 28-bit active-MAC count
/// (both far beyond any realizable pass).
pub fn encode_instr(instr: &Instr, buf: &mut Vec<u8>) {
    match *instr {
        Instr::LoadWeightsExternal { bytes } => put(buf, OP_LDW_EXT, bytes),
        Instr::LoadWeights { bytes } => put(buf, OP_LDW, bytes),
        Instr::LoadActivations { bytes } => put(buf, OP_LDA, bytes),
        Instr::Generate {
            cycles,
            active_macs,
        } => put(
            buf,
            OP_GEN,
            (cycles & 0xFFF_FFFF) | ((active_macs & 0xFFF_FFFF) << 28),
        ),
        Instr::NearMemAccumulate { elements } => put(buf, OP_NMACC, elements),
        Instr::NearMemBatchNorm { elements } => put(buf, OP_NMBN, elements),
        Instr::WriteActivations { bytes } => put(buf, OP_STA, bytes),
        Instr::Sync => put(buf, OP_SYNC, 0),
    }
}

/// Encodes a whole program; its length is the instruction-memory footprint
/// in bytes.
pub fn encode(program: &Program) -> Vec<u8> {
    let mut buf = Vec::with_capacity(program.instrs.len() * INSTR_BYTES);
    for i in &program.instrs {
        encode_instr(i, &mut buf);
    }
    buf
}

/// Decodes an instruction stream produced by [`encode`].
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated streams or unknown opcodes.
pub fn decode(bytes: &[u8]) -> Result<Vec<Instr>, DecodeError> {
    if !bytes.len().is_multiple_of(INSTR_BYTES) {
        return Err(DecodeError::TruncatedStream { len: bytes.len() });
    }
    let mut out = Vec::with_capacity(bytes.len() / INSTR_BYTES);
    for (index, chunk) in bytes.chunks(INSTR_BYTES).enumerate() {
        let v = imm(chunk);
        out.push(match chunk[0] {
            OP_LDW_EXT => Instr::LoadWeightsExternal { bytes: v },
            OP_LDW => Instr::LoadWeights { bytes: v },
            OP_LDA => Instr::LoadActivations { bytes: v },
            OP_GEN => Instr::Generate {
                cycles: v & 0xFFF_FFFF,
                active_macs: (v >> 28) & 0xFFF_FFFF,
            },
            OP_NMACC => Instr::NearMemAccumulate { elements: v },
            OP_NMBN => Instr::NearMemBatchNorm { elements: v },
            OP_STA => Instr::WriteActivations { bytes: v },
            OP_SYNC => Instr::Sync,
            opcode => return Err(DecodeError::UnknownOpcode { opcode, index }),
        });
    }
    Ok(out)
}

/// Instruction-memory footprint of a program in bytes.
pub fn footprint_bytes(program: &Program) -> usize {
    program.instrs.len() * INSTR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelConfig;
    use crate::compiler::compile;
    use crate::network::NetworkDesc;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::LoadWeightsExternal { bytes: 123_456 },
            Instr::LoadWeights { bytes: 2400 },
            Instr::LoadActivations { bytes: 75 },
            Instr::Generate {
                cycles: 256,
                active_macs: 25_600,
            },
            Instr::NearMemAccumulate { elements: 8192 },
            Instr::NearMemBatchNorm { elements: 2048 },
            Instr::WriteActivations { bytes: 8192 },
            Instr::Sync,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        let mut buf = Vec::new();
        for i in &sample_instrs() {
            encode_instr(i, &mut buf);
        }
        let decoded = decode(&buf).unwrap();
        assert_eq!(decoded, sample_instrs());
    }

    #[test]
    fn compiled_programs_round_trip() {
        let net = NetworkDesc::cnn4_cifar();
        let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
        let bytes = encode(&program);
        assert_eq!(bytes.len(), footprint_bytes(&program));
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, program.instrs);
    }

    #[test]
    fn footprints_fit_a_small_instruction_memory() {
        // §III-A: GEO has its own instruction memory; the evaluation
        // networks must compile into a few KB.
        for net in [
            NetworkDesc::cnn4_cifar(),
            NetworkDesc::lenet5_mnist(),
            NetworkDesc::vgg16_scaled_cifar(),
        ] {
            let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
            let kb = footprint_bytes(&program) as f64 / 1024.0;
            assert!(kb < 64.0, "{}: {kb:.1} KiB", net.name);
        }
    }

    #[test]
    fn generate_packing_preserves_large_fields() {
        let mut buf = Vec::new();
        let i = Instr::Generate {
            cycles: 0xABC_DEF,
            active_macs: 0x123_456,
        };
        encode_instr(&i, &mut buf);
        assert_eq!(decode(&buf).unwrap()[0], i);
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        assert_eq!(
            decode(&[0u8; 7]).unwrap_err(),
            DecodeError::TruncatedStream { len: 7 }
        );
        let mut buf = vec![0xFFu8];
        buf.extend_from_slice(&[0; 7]);
        assert!(matches!(
            decode(&buf).unwrap_err(),
            DecodeError::UnknownOpcode {
                opcode: 0xFF,
                index: 0
            }
        ));
        let e = DecodeError::TruncatedStream { len: 7 };
        assert!(!e.to_string().is_empty());
    }
}
