//! Binary instruction encoding for the GEO ISA.
//!
//! GEO is programmable with its own instruction memory (§III-A); this
//! module defines a compact fixed-width encoding (8-byte words: 1 opcode
//! byte + 7 bytes of immediate) so compiled programs have a concrete
//! footprint, and the control/instruction-memory budget of a design point
//! can be checked against real networks.
//!
//! Most instructions are one word. `GEN` carries its output-tile operand
//! ([`crate::isa::Tile`]) in two mandatory extension words (`TILE0`,
//! `TILE1`) following the base word, the way variable-length ISAs attach
//! addressing-mode bytes.

use crate::isa::{Instr, Program, Tile};
use std::fmt;

/// Bytes per encoded instruction word.
pub const INSTR_BYTES: usize = 8;

/// Words per encoded `GEN` (base + two tile-extension words).
pub const GEN_WORDS: usize = 3;

/// Errors produced when decoding an instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The byte stream length is not a multiple of [`INSTR_BYTES`].
    TruncatedStream {
        /// Offending length.
        len: usize,
    },
    /// An unknown opcode byte.
    UnknownOpcode {
        /// The rejected opcode.
        opcode: u8,
        /// Word index.
        index: usize,
    },
    /// A `GEN` word without both tile-extension words, or a stray
    /// tile-extension word outside a `GEN`.
    BadTileExtension {
        /// Word index.
        index: usize,
    },
    /// A decoded operand violates a range invariant the encoder enforces:
    /// reserved immediate bits set (`SYNC`), or a cross-field bound such
    /// as `col_pass < col_passes`. Field masks make per-field widths
    /// unforgeable, so this is the re-check that keeps a byte stream
    /// *patched after encoding* from decoding into a plausible but
    /// invalid instruction.
    FieldRange {
        /// Instruction mnemonic (`GEN`, `SYNC`, …).
        instr: &'static str,
        /// Operand name as it appears in [`Instr`]/[`Tile`].
        field: &'static str,
        /// The rejected value.
        value: u64,
        /// Largest valid value for the field at this position.
        max: u64,
        /// Word index.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedStream { len } => {
                write!(
                    f,
                    "stream of {len} bytes is not a whole number of instruction words"
                )
            }
            DecodeError::UnknownOpcode { opcode, index } => {
                write!(f, "unknown opcode {opcode:#04x} at word {index}")
            }
            DecodeError::BadTileExtension { index } => {
                write!(f, "malformed GEN tile extension at word {index}")
            }
            DecodeError::FieldRange {
                instr,
                field,
                value,
                max,
                index,
            } => write!(
                f,
                "{instr}.{field} = {value} at word {index} exceeds its valid range (max {max})"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors produced when encoding an instruction stream.
///
/// Every operand is range-checked against its packed field width before
/// the word is emitted. Without the check, an out-of-range value would
/// silently wrap under the field mask and decode back to a *different,
/// valid-looking* instruction — the worst kind of corruption, invisible
/// until a tile covers the wrong output channels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// An operand does not fit the bit-field the encoding assigns it.
    FieldRange {
        /// Instruction mnemonic (`GEN`, `LDW`, …).
        instr: &'static str,
        /// Operand name as it appears in [`Instr`]/[`Tile`].
        field: &'static str,
        /// The rejected value.
        value: u64,
        /// Largest encodable value for the field.
        max: u64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::FieldRange {
                instr,
                field,
                value,
                max,
            } => write!(
                f,
                "{instr}.{field} = {value} does not fit its encoded field (max {max})"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

const OP_LDW_EXT: u8 = 0x01;
const OP_LDW: u8 = 0x02;
const OP_LDA: u8 = 0x03;
const OP_GEN: u8 = 0x04;
const OP_NMACC: u8 = 0x05;
const OP_NMBN: u8 = 0x06;
const OP_STA: u8 = 0x07;
const OP_SYNC: u8 = 0x08;
const OP_TILE0: u8 = 0x09;
const OP_TILE1: u8 = 0x0A;

/// Near-memory immediates pack as 48-bit element counts + 8-bit layer.
const NM_ELEM_MASK: u64 = 0xFFFF_FFFF_FFFF;

/// Largest value of a full 56-bit immediate (byte counts).
const IMM_MAX: u64 = (1 << 56) - 1;

/// Checks that `value` fits the `field`'s encoded width.
fn check(
    instr: &'static str,
    field: &'static str,
    value: u64,
    max: u64,
) -> Result<u64, EncodeError> {
    if value <= max {
        Ok(value)
    } else {
        Err(EncodeError::FieldRange {
            instr,
            field,
            value,
            max,
        })
    }
}

fn put(buf: &mut Vec<u8>, opcode: u8, imm: u64) {
    buf.push(opcode);
    buf.extend_from_slice(&imm.to_le_bytes()[..7]);
}

fn imm(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..7].copy_from_slice(&bytes[1..8]);
    u64::from_le_bytes(b)
}

/// `TILE0`: layer (8) | SNG group (8) | cout_begin (12) | cout_end (12) |
/// col_pass (8) | col_passes (8) — 56 bits.
fn tile0_imm(t: &Tile) -> Result<u64, EncodeError> {
    let imm = check("GEN", "layer", t.layer.into(), 0xFF)?
        | (check("GEN", "sng_group", t.sng_group.into(), 0xFF)? << 8)
        | (check("GEN", "cout_begin", t.cout_begin.into(), 0xFFF)? << 16)
        | (check("GEN", "cout_end", t.cout_end.into(), 0xFFF)? << 28)
        | (check("GEN", "col_pass", t.col_pass.into(), 0xFF)? << 40)
        | (check("GEN", "col_passes", t.col_passes.into(), 0xFF)? << 48);
    // Cross-field bound, mirrored by `decode`: a pass index at or past the
    // declared pass count addresses a column that does not exist.
    if t.col_pass >= t.col_passes {
        return Err(EncodeError::FieldRange {
            instr: "GEN",
            field: "col_pass",
            value: t.col_pass.into(),
            max: u64::from(t.col_passes.saturating_sub(1)),
        });
    }
    Ok(imm)
}

/// `TILE1`: pos_begin (28) | pos_end (28) — 56 bits.
fn tile1_imm(t: &Tile) -> Result<u64, EncodeError> {
    Ok(check("GEN", "pos_begin", t.pos_begin.into(), 0xFFF_FFFF)?
        | (check("GEN", "pos_end", t.pos_end.into(), 0xFFF_FFFF)? << 28))
}

fn tile_from_imms(t0: u64, t1: u64) -> Tile {
    Tile {
        layer: (t0 & 0xFF) as u32,
        sng_group: ((t0 >> 8) & 0xFF) as u32,
        cout_begin: ((t0 >> 16) & 0xFFF) as u32,
        cout_end: ((t0 >> 28) & 0xFFF) as u32,
        col_pass: ((t0 >> 40) & 0xFF) as u32,
        col_passes: ((t0 >> 48) & 0xFF) as u32,
        pos_begin: (t1 & 0xFFF_FFFF) as u32,
        pos_end: ((t1 >> 28) & 0xFFF_FFFF) as u32,
    }
}

/// Encodes one instruction into `buf` (one word, or [`GEN_WORDS`] for
/// `GEN`).
///
/// `Generate`'s stream fields pack as 28-bit cycles + 28-bit active-MAC
/// count (both far beyond any realizable pass); its tile rides in the two
/// extension words.
///
/// # Errors
///
/// Returns [`EncodeError::FieldRange`] if any operand exceeds its packed
/// field width; nothing is written to `buf` in that case.
pub fn encode_instr(instr: &Instr, buf: &mut Vec<u8>) -> Result<(), EncodeError> {
    match *instr {
        Instr::LoadWeightsExternal { bytes } => {
            put(buf, OP_LDW_EXT, check("LDW.EXT", "bytes", bytes, IMM_MAX)?);
        }
        Instr::LoadWeights { bytes } => put(buf, OP_LDW, check("LDW", "bytes", bytes, IMM_MAX)?),
        Instr::LoadActivations { bytes } => {
            put(buf, OP_LDA, check("LDA", "bytes", bytes, IMM_MAX)?);
        }
        Instr::Generate {
            cycles,
            active_macs,
            ref tile,
        } => {
            let base = check("GEN", "cycles", cycles, 0xFFF_FFFF)?
                | (check("GEN", "active_macs", active_macs, 0xFFF_FFFF)? << 28);
            // Validate both tile words before emitting anything, so a
            // range error cannot leave a partial GEN in the buffer.
            let t0 = tile0_imm(tile)?;
            let t1 = tile1_imm(tile)?;
            put(buf, OP_GEN, base);
            put(buf, OP_TILE0, t0);
            put(buf, OP_TILE1, t1);
        }
        Instr::NearMemAccumulate { elements, layer } => put(
            buf,
            OP_NMACC,
            check("NM.ACC", "elements", elements, NM_ELEM_MASK)?
                | (check("NM.ACC", "layer", layer.into(), 0xFF)? << 48),
        ),
        Instr::NearMemBatchNorm { elements, layer } => put(
            buf,
            OP_NMBN,
            check("NM.BN", "elements", elements, NM_ELEM_MASK)?
                | (check("NM.BN", "layer", layer.into(), 0xFF)? << 48),
        ),
        Instr::WriteActivations { bytes } => {
            put(buf, OP_STA, check("STA", "bytes", bytes, IMM_MAX)?)
        }
        Instr::Sync => put(buf, OP_SYNC, 0),
    }
    Ok(())
}

/// Encodes a whole program; its length is the instruction-memory footprint
/// in bytes.
///
/// # Errors
///
/// Returns [`EncodeError::FieldRange`] for the first operand that does
/// not fit its packed field.
pub fn encode(program: &Program) -> Result<Vec<u8>, EncodeError> {
    let mut buf = Vec::with_capacity(program.instrs.len() * INSTR_BYTES);
    for i in &program.instrs {
        encode_instr(i, &mut buf)?;
    }
    Ok(buf)
}

/// Decodes an instruction stream produced by [`encode`].
///
/// Strict: every accepted stream re-encodes to exactly the same bytes
/// (decode and encode are mutually inverse bijections on the valid set),
/// and every operand range the encoder enforces is re-checked here — a
/// byte stream patched after encoding cannot decode into an instruction
/// the encoder would have rejected.
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated streams, unknown opcodes,
/// malformed `GEN` tile extensions, or out-of-range operands
/// ([`DecodeError::FieldRange`]).
pub fn decode(bytes: &[u8]) -> Result<Vec<Instr>, DecodeError> {
    if !bytes.len().is_multiple_of(INSTR_BYTES) {
        return Err(DecodeError::TruncatedStream { len: bytes.len() });
    }
    let chunks: Vec<&[u8]> = bytes.chunks(INSTR_BYTES).collect();
    let mut out = Vec::with_capacity(chunks.len());
    let mut index = 0;
    while index < chunks.len() {
        let chunk = chunks[index];
        let v = imm(chunk);
        out.push(match chunk[0] {
            OP_LDW_EXT => Instr::LoadWeightsExternal { bytes: v },
            OP_LDW => Instr::LoadWeights { bytes: v },
            OP_LDA => Instr::LoadActivations { bytes: v },
            OP_GEN => {
                let t0 = chunks.get(index + 1).filter(|c| c[0] == OP_TILE0);
                let t1 = chunks.get(index + 2).filter(|c| c[0] == OP_TILE1);
                match (t0, t1) {
                    (Some(t0), Some(t1)) => {
                        let tile = tile_from_imms(imm(t0), imm(t1));
                        // Re-check the cross-field bound the encoder
                        // enforces: a patched TILE0 word must not decode
                        // into a pass the tile does not declare.
                        if tile.col_pass >= tile.col_passes {
                            return Err(DecodeError::FieldRange {
                                instr: "GEN",
                                field: "col_pass",
                                value: tile.col_pass.into(),
                                max: u64::from(tile.col_passes.saturating_sub(1)),
                                index,
                            });
                        }
                        index += GEN_WORDS - 1;
                        Instr::Generate {
                            cycles: v & 0xFFF_FFFF,
                            active_macs: (v >> 28) & 0xFFF_FFFF,
                            tile,
                        }
                    }
                    _ => return Err(DecodeError::BadTileExtension { index }),
                }
            }
            OP_TILE0 | OP_TILE1 => return Err(DecodeError::BadTileExtension { index }),
            OP_NMACC => Instr::NearMemAccumulate {
                elements: v & NM_ELEM_MASK,
                layer: ((v >> 48) & 0xFF) as u32,
            },
            OP_NMBN => Instr::NearMemBatchNorm {
                elements: v & NM_ELEM_MASK,
                layer: ((v >> 48) & 0xFF) as u32,
            },
            OP_STA => Instr::WriteActivations { bytes: v },
            OP_SYNC => {
                // `SYNC` has no operands; its 56 immediate bits are
                // reserved-zero. Accepting a nonzero immediate would make
                // decode → encode lossy and let corrupted streams
                // round-trip to *different* bytes.
                if v != 0 {
                    return Err(DecodeError::FieldRange {
                        instr: "SYNC",
                        field: "imm",
                        value: v,
                        max: 0,
                        index,
                    });
                }
                Instr::Sync
            }
            opcode => return Err(DecodeError::UnknownOpcode { opcode, index }),
        });
        index += 1;
    }
    Ok(out)
}

/// Instruction-memory footprint of a program in bytes.
pub fn footprint_bytes(program: &Program) -> usize {
    (program.instrs.len() + (GEN_WORDS - 1) * program.generate_count()) * INSTR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelConfig;
    use crate::compiler::compile;
    use crate::network::NetworkDesc;

    fn sample_tile() -> Tile {
        Tile {
            layer: 3,
            sng_group: 1,
            cout_begin: 32,
            cout_end: 64,
            pos_begin: 256,
            pos_end: 512,
            col_pass: 1,
            col_passes: 2,
        }
    }

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::LoadWeightsExternal { bytes: 123_456 },
            Instr::LoadWeights { bytes: 2400 },
            Instr::LoadActivations { bytes: 75 },
            Instr::Generate {
                cycles: 256,
                active_macs: 25_600,
                tile: sample_tile(),
            },
            Instr::NearMemAccumulate {
                elements: 8192,
                layer: 3,
            },
            Instr::NearMemBatchNorm {
                elements: 2048,
                layer: 3,
            },
            Instr::WriteActivations { bytes: 8192 },
            Instr::Sync,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        let mut buf = Vec::new();
        for i in &sample_instrs() {
            encode_instr(i, &mut buf).unwrap();
        }
        let decoded = decode(&buf).unwrap();
        assert_eq!(decoded, sample_instrs());
    }

    #[test]
    fn compiled_programs_round_trip() {
        let net = NetworkDesc::cnn4_cifar();
        let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
        let bytes = encode(&program).unwrap();
        assert_eq!(bytes.len(), footprint_bytes(&program));
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, program.instrs);
    }

    #[test]
    fn out_of_range_fields_fail_typed_instead_of_wrapping() {
        // cout_end has a 12-bit field; 0x1040 used to wrap to 0x040 and
        // decode as a plausible but wrong tile.
        let mut tile = sample_tile();
        tile.cout_end = 0x1040;
        let mut buf = Vec::new();
        let err = encode_instr(
            &Instr::Generate {
                cycles: 256,
                active_macs: 25_600,
                tile,
            },
            &mut buf,
        )
        .unwrap_err();
        assert_eq!(
            err,
            EncodeError::FieldRange {
                instr: "GEN",
                field: "cout_end",
                value: 0x1040,
                max: 0xFFF,
            }
        );
        // Nothing was emitted: no partial GEN word in the buffer.
        assert!(buf.is_empty());
        assert!(err.to_string().contains("cout_end"));

        // Near-memory element counts are 48-bit.
        let err = encode_instr(
            &Instr::NearMemAccumulate {
                elements: NM_ELEM_MASK + 1,
                layer: 0,
            },
            &mut buf,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EncodeError::FieldRange {
                instr: "NM.ACC",
                field: "elements",
                ..
            }
        ));
    }

    #[test]
    fn footprints_fit_a_small_instruction_memory() {
        // §III-A: GEO has its own instruction memory; the evaluation
        // networks must compile into a few KB.
        for net in [
            NetworkDesc::cnn4_cifar(),
            NetworkDesc::lenet5_mnist(),
            NetworkDesc::vgg16_scaled_cifar(),
        ] {
            let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
            let kb = footprint_bytes(&program) as f64 / 1024.0;
            assert!(kb < 64.0, "{}: {kb:.1} KiB", net.name);
        }
    }

    #[test]
    fn generate_packing_preserves_large_fields() {
        let mut buf = Vec::new();
        let i = Instr::Generate {
            cycles: 0xABC_DEF,
            active_macs: 0x123_456,
            tile: Tile {
                layer: 255,
                sng_group: 255,
                cout_begin: 4000,
                cout_end: 4095,
                pos_begin: 0xFFF_FFF0,
                pos_end: 0xFFF_FFFF,
                col_pass: 254,
                col_passes: 255,
            },
        };
        encode_instr(&i, &mut buf).unwrap();
        assert_eq!(buf.len(), GEN_WORDS * INSTR_BYTES);
        assert_eq!(decode(&buf).unwrap()[0], i);
    }

    #[test]
    fn near_memory_packing_preserves_layer() {
        let mut buf = Vec::new();
        let i = Instr::NearMemAccumulate {
            elements: NM_ELEM_MASK,
            layer: 200,
        };
        encode_instr(&i, &mut buf).unwrap();
        assert_eq!(decode(&buf).unwrap()[0], i);
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        assert_eq!(
            decode(&[0u8; 7]).unwrap_err(),
            DecodeError::TruncatedStream { len: 7 }
        );
        let mut buf = vec![0xFFu8];
        buf.extend_from_slice(&[0; 7]);
        assert!(matches!(
            decode(&buf).unwrap_err(),
            DecodeError::UnknownOpcode {
                opcode: 0xFF,
                index: 0
            }
        ));
        let e = DecodeError::TruncatedStream { len: 7 };
        assert!(!e.to_string().is_empty());
    }

    /// Satellite regression for the PR 5 range-validation gap: `encode`
    /// has checked operand ranges since PR 5, but `decode` used to accept
    /// anything the field masks let through. Patch out-of-range operands
    /// into an otherwise valid byte stream and require the typed
    /// [`DecodeError::FieldRange`] instead of a plausible-looking
    /// instruction.
    #[test]
    fn decode_recheck_rejects_patched_out_of_range_operands() {
        // SYNC carries reserved-zero immediate bits; patch them nonzero.
        let mut buf = Vec::new();
        for i in &sample_instrs() {
            encode_instr(i, &mut buf).unwrap();
        }
        let sync_word = buf.len() - INSTR_BYTES;
        assert_eq!(buf[sync_word], OP_SYNC);
        buf[sync_word + 3] = 0xAB;
        assert_eq!(
            decode(&buf).unwrap_err(),
            DecodeError::FieldRange {
                instr: "SYNC",
                field: "imm",
                value: 0xAB_0000,
                max: 0,
                index: buf.len() / INSTR_BYTES - 1,
            }
        );

        // col_pass rides in TILE0 bits 40..48 (word byte 6); patch it past
        // the declared col_passes.
        let mut buf = Vec::new();
        encode_instr(
            &Instr::Generate {
                cycles: 256,
                active_macs: 25_600,
                tile: sample_tile(),
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(buf[INSTR_BYTES], OP_TILE0);
        buf[INSTR_BYTES + 6] = 0x77;
        let err = decode(&buf).unwrap_err();
        assert_eq!(
            err,
            DecodeError::FieldRange {
                instr: "GEN",
                field: "col_pass",
                value: 0x77,
                max: 1,
                index: 0,
            }
        );
        assert!(err.to_string().contains("col_pass"));
    }

    #[test]
    fn encode_rejects_col_pass_outside_declared_passes() {
        let mut tile = sample_tile();
        tile.col_pass = 2; // == col_passes
        let mut buf = Vec::new();
        let err = encode_instr(
            &Instr::Generate {
                cycles: 256,
                active_macs: 25_600,
                tile,
            },
            &mut buf,
        )
        .unwrap_err();
        assert_eq!(
            err,
            EncodeError::FieldRange {
                instr: "GEN",
                field: "col_pass",
                value: 2,
                max: 1,
            }
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn decode_rejects_gen_without_tile_words() {
        // A lone GEN base word is malformed.
        let mut buf = Vec::new();
        super::put(&mut buf, super::OP_GEN, 0);
        assert_eq!(
            decode(&buf).unwrap_err(),
            DecodeError::BadTileExtension { index: 0 }
        );
        // So is a stray tile-extension word.
        let mut buf = Vec::new();
        super::put(&mut buf, super::OP_TILE0, 0);
        assert_eq!(
            decode(&buf).unwrap_err(),
            DecodeError::BadTileExtension { index: 0 }
        );
    }
}
