//! Binary instruction encoding for the GEO ISA.
//!
//! GEO is programmable with its own instruction memory (§III-A); this
//! module defines a compact fixed-width encoding (8-byte words: 1 opcode
//! byte + 7 bytes of immediate) so compiled programs have a concrete
//! footprint, and the control/instruction-memory budget of a design point
//! can be checked against real networks.
//!
//! Most instructions are one word. `GEN` carries its output-tile operand
//! ([`crate::isa::Tile`]) in two mandatory extension words (`TILE0`,
//! `TILE1`) following the base word, the way variable-length ISAs attach
//! addressing-mode bytes.

use crate::isa::{Instr, Program, Tile};
use std::fmt;

/// Bytes per encoded instruction word.
pub const INSTR_BYTES: usize = 8;

/// Words per encoded `GEN` (base + two tile-extension words).
pub const GEN_WORDS: usize = 3;

/// Errors produced when decoding an instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The byte stream length is not a multiple of [`INSTR_BYTES`].
    TruncatedStream {
        /// Offending length.
        len: usize,
    },
    /// An unknown opcode byte.
    UnknownOpcode {
        /// The rejected opcode.
        opcode: u8,
        /// Word index.
        index: usize,
    },
    /// A `GEN` word without both tile-extension words, or a stray
    /// tile-extension word outside a `GEN`.
    BadTileExtension {
        /// Word index.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TruncatedStream { len } => {
                write!(
                    f,
                    "stream of {len} bytes is not a whole number of instruction words"
                )
            }
            DecodeError::UnknownOpcode { opcode, index } => {
                write!(f, "unknown opcode {opcode:#04x} at word {index}")
            }
            DecodeError::BadTileExtension { index } => {
                write!(f, "malformed GEN tile extension at word {index}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_LDW_EXT: u8 = 0x01;
const OP_LDW: u8 = 0x02;
const OP_LDA: u8 = 0x03;
const OP_GEN: u8 = 0x04;
const OP_NMACC: u8 = 0x05;
const OP_NMBN: u8 = 0x06;
const OP_STA: u8 = 0x07;
const OP_SYNC: u8 = 0x08;
const OP_TILE0: u8 = 0x09;
const OP_TILE1: u8 = 0x0A;

/// Near-memory immediates pack as 48-bit element counts + 8-bit layer.
const NM_ELEM_MASK: u64 = 0xFFFF_FFFF_FFFF;

fn put(buf: &mut Vec<u8>, opcode: u8, imm: u64) {
    buf.push(opcode);
    buf.extend_from_slice(&imm.to_le_bytes()[..7]);
}

fn imm(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..7].copy_from_slice(&bytes[1..8]);
    u64::from_le_bytes(b)
}

/// `TILE0`: layer (8) | SNG group (8) | cout_begin (12) | cout_end (12) |
/// col_pass (8) | col_passes (8) — 56 bits.
fn tile0_imm(t: &Tile) -> u64 {
    u64::from(t.layer & 0xFF)
        | (u64::from(t.sng_group & 0xFF) << 8)
        | (u64::from(t.cout_begin & 0xFFF) << 16)
        | (u64::from(t.cout_end & 0xFFF) << 28)
        | (u64::from(t.col_pass & 0xFF) << 40)
        | (u64::from(t.col_passes & 0xFF) << 48)
}

/// `TILE1`: pos_begin (28) | pos_end (28) — 56 bits.
fn tile1_imm(t: &Tile) -> u64 {
    u64::from(t.pos_begin & 0xFFF_FFFF) | (u64::from(t.pos_end & 0xFFF_FFFF) << 28)
}

fn tile_from_imms(t0: u64, t1: u64) -> Tile {
    Tile {
        layer: (t0 & 0xFF) as u32,
        sng_group: ((t0 >> 8) & 0xFF) as u32,
        cout_begin: ((t0 >> 16) & 0xFFF) as u32,
        cout_end: ((t0 >> 28) & 0xFFF) as u32,
        col_pass: ((t0 >> 40) & 0xFF) as u32,
        col_passes: ((t0 >> 48) & 0xFF) as u32,
        pos_begin: (t1 & 0xFFF_FFFF) as u32,
        pos_end: ((t1 >> 28) & 0xFFF_FFFF) as u32,
    }
}

/// Encodes one instruction into `buf` (one word, or [`GEN_WORDS`] for
/// `GEN`).
///
/// `Generate`'s stream fields pack as 28-bit cycles + 28-bit active-MAC
/// count (both far beyond any realizable pass); its tile rides in the two
/// extension words.
pub fn encode_instr(instr: &Instr, buf: &mut Vec<u8>) {
    match *instr {
        Instr::LoadWeightsExternal { bytes } => put(buf, OP_LDW_EXT, bytes),
        Instr::LoadWeights { bytes } => put(buf, OP_LDW, bytes),
        Instr::LoadActivations { bytes } => put(buf, OP_LDA, bytes),
        Instr::Generate {
            cycles,
            active_macs,
            ref tile,
        } => {
            put(
                buf,
                OP_GEN,
                (cycles & 0xFFF_FFFF) | ((active_macs & 0xFFF_FFFF) << 28),
            );
            put(buf, OP_TILE0, tile0_imm(tile));
            put(buf, OP_TILE1, tile1_imm(tile));
        }
        Instr::NearMemAccumulate { elements, layer } => put(
            buf,
            OP_NMACC,
            (elements & NM_ELEM_MASK) | (u64::from(layer & 0xFF) << 48),
        ),
        Instr::NearMemBatchNorm { elements, layer } => put(
            buf,
            OP_NMBN,
            (elements & NM_ELEM_MASK) | (u64::from(layer & 0xFF) << 48),
        ),
        Instr::WriteActivations { bytes } => put(buf, OP_STA, bytes),
        Instr::Sync => put(buf, OP_SYNC, 0),
    }
}

/// Encodes a whole program; its length is the instruction-memory footprint
/// in bytes.
pub fn encode(program: &Program) -> Vec<u8> {
    let mut buf = Vec::with_capacity(program.instrs.len() * INSTR_BYTES);
    for i in &program.instrs {
        encode_instr(i, &mut buf);
    }
    buf
}

/// Decodes an instruction stream produced by [`encode`].
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated streams, unknown opcodes, or
/// malformed `GEN` tile extensions.
pub fn decode(bytes: &[u8]) -> Result<Vec<Instr>, DecodeError> {
    if !bytes.len().is_multiple_of(INSTR_BYTES) {
        return Err(DecodeError::TruncatedStream { len: bytes.len() });
    }
    let chunks: Vec<&[u8]> = bytes.chunks(INSTR_BYTES).collect();
    let mut out = Vec::with_capacity(chunks.len());
    let mut index = 0;
    while index < chunks.len() {
        let chunk = chunks[index];
        let v = imm(chunk);
        out.push(match chunk[0] {
            OP_LDW_EXT => Instr::LoadWeightsExternal { bytes: v },
            OP_LDW => Instr::LoadWeights { bytes: v },
            OP_LDA => Instr::LoadActivations { bytes: v },
            OP_GEN => {
                let t0 = chunks.get(index + 1).filter(|c| c[0] == OP_TILE0);
                let t1 = chunks.get(index + 2).filter(|c| c[0] == OP_TILE1);
                match (t0, t1) {
                    (Some(t0), Some(t1)) => {
                        index += GEN_WORDS - 1;
                        Instr::Generate {
                            cycles: v & 0xFFF_FFFF,
                            active_macs: (v >> 28) & 0xFFF_FFFF,
                            tile: tile_from_imms(imm(t0), imm(t1)),
                        }
                    }
                    _ => return Err(DecodeError::BadTileExtension { index }),
                }
            }
            OP_TILE0 | OP_TILE1 => return Err(DecodeError::BadTileExtension { index }),
            OP_NMACC => Instr::NearMemAccumulate {
                elements: v & NM_ELEM_MASK,
                layer: ((v >> 48) & 0xFF) as u32,
            },
            OP_NMBN => Instr::NearMemBatchNorm {
                elements: v & NM_ELEM_MASK,
                layer: ((v >> 48) & 0xFF) as u32,
            },
            OP_STA => Instr::WriteActivations { bytes: v },
            OP_SYNC => Instr::Sync,
            opcode => return Err(DecodeError::UnknownOpcode { opcode, index }),
        });
        index += 1;
    }
    Ok(out)
}

/// Instruction-memory footprint of a program in bytes.
pub fn footprint_bytes(program: &Program) -> usize {
    (program.instrs.len() + (GEN_WORDS - 1) * program.generate_count()) * INSTR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelConfig;
    use crate::compiler::compile;
    use crate::network::NetworkDesc;

    fn sample_tile() -> Tile {
        Tile {
            layer: 3,
            sng_group: 1,
            cout_begin: 32,
            cout_end: 64,
            pos_begin: 256,
            pos_end: 512,
            col_pass: 1,
            col_passes: 2,
        }
    }

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::LoadWeightsExternal { bytes: 123_456 },
            Instr::LoadWeights { bytes: 2400 },
            Instr::LoadActivations { bytes: 75 },
            Instr::Generate {
                cycles: 256,
                active_macs: 25_600,
                tile: sample_tile(),
            },
            Instr::NearMemAccumulate {
                elements: 8192,
                layer: 3,
            },
            Instr::NearMemBatchNorm {
                elements: 2048,
                layer: 3,
            },
            Instr::WriteActivations { bytes: 8192 },
            Instr::Sync,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        let mut buf = Vec::new();
        for i in &sample_instrs() {
            encode_instr(i, &mut buf);
        }
        let decoded = decode(&buf).unwrap();
        assert_eq!(decoded, sample_instrs());
    }

    #[test]
    fn compiled_programs_round_trip() {
        let net = NetworkDesc::cnn4_cifar();
        let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
        let bytes = encode(&program);
        assert_eq!(bytes.len(), footprint_bytes(&program));
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, program.instrs);
    }

    #[test]
    fn footprints_fit_a_small_instruction_memory() {
        // §III-A: GEO has its own instruction memory; the evaluation
        // networks must compile into a few KB.
        for net in [
            NetworkDesc::cnn4_cifar(),
            NetworkDesc::lenet5_mnist(),
            NetworkDesc::vgg16_scaled_cifar(),
        ] {
            let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
            let kb = footprint_bytes(&program) as f64 / 1024.0;
            assert!(kb < 64.0, "{}: {kb:.1} KiB", net.name);
        }
    }

    #[test]
    fn generate_packing_preserves_large_fields() {
        let mut buf = Vec::new();
        let i = Instr::Generate {
            cycles: 0xABC_DEF,
            active_macs: 0x123_456,
            tile: Tile {
                layer: 255,
                sng_group: 255,
                cout_begin: 4000,
                cout_end: 4095,
                pos_begin: 0xFFF_FFF0,
                pos_end: 0xFFF_FFFF,
                col_pass: 254,
                col_passes: 255,
            },
        };
        encode_instr(&i, &mut buf);
        assert_eq!(buf.len(), GEN_WORDS * INSTR_BYTES);
        assert_eq!(decode(&buf).unwrap()[0], i);
    }

    #[test]
    fn near_memory_packing_preserves_layer() {
        let mut buf = Vec::new();
        let i = Instr::NearMemAccumulate {
            elements: NM_ELEM_MASK,
            layer: 200,
        };
        encode_instr(&i, &mut buf);
        assert_eq!(decode(&buf).unwrap()[0], i);
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        assert_eq!(
            decode(&[0u8; 7]).unwrap_err(),
            DecodeError::TruncatedStream { len: 7 }
        );
        let mut buf = vec![0xFFu8];
        buf.extend_from_slice(&[0; 7]);
        assert!(matches!(
            decode(&buf).unwrap_err(),
            DecodeError::UnknownOpcode {
                opcode: 0xFF,
                index: 0
            }
        ));
        let e = DecodeError::TruncatedStream { len: 7 };
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn decode_rejects_gen_without_tile_words() {
        // A lone GEN base word is malformed.
        let mut buf = Vec::new();
        super::put(&mut buf, super::OP_GEN, 0);
        assert_eq!(
            decode(&buf).unwrap_err(),
            DecodeError::BadTileExtension { index: 0 }
        );
        // So is a stray tile-extension word.
        let mut buf = Vec::new();
        super::put(&mut buf, super::OP_TILE0, 0);
        assert_eq!(
            decode(&buf).unwrap_err(),
            DecodeError::BadTileExtension { index: 0 }
        );
    }
}
