//! The performance/energy simulator: executes a compiled [`Program`] on an
//! [`AccelConfig`], modeling ping-pong memory overlap, progressive shadow
//! buffering, near-memory operations, DVFS, and per-category energy — the
//! paper's "custom performance simulator" (§IV).

use crate::accel::{AccelConfig, Category};
use crate::isa::{Instr, Program};
use crate::progressive_timing;
use serde::{Deserialize, Serialize};

/// Result of simulating one inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Configuration name.
    pub config: String,
    /// Network name.
    pub network: String,
    /// Total cycles per frame.
    pub cycles: u64,
    /// Latency per frame in seconds.
    pub seconds: f64,
    /// Energy per frame in joules (dynamic + leakage + external).
    pub energy_j: f64,
    /// Dynamic energy per category, in picojoules.
    pub breakdown_pj: Vec<(Category, f64)>,
    /// Leakage energy in picojoules.
    pub leakage_pj: f64,
    /// External-memory energy in picojoules (LP variants).
    pub external_pj: f64,
    /// Frames per second.
    pub fps: f64,
    /// Frames per joule.
    pub frames_per_joule: f64,
    /// Average power in milliwatts.
    pub power_mw: f64,
    /// Total accelerator area in mm².
    pub area_mm2: f64,
}

impl SimReport {
    /// Energy per frame excluding external memory (the paper's "when those
    /// are omitted" comparison in §IV-C).
    pub fn energy_j_no_external(&self) -> f64 {
        self.energy_j - self.external_pj * 1e-12
    }
}

/// Simulates one inference of `program` on `accel`.
pub fn simulate(accel: &AccelConfig, program: &Program) -> SimReport {
    let op = accel.operating_point();
    let dyn_scale = op.dynamic_scale();
    let shadow = accel.opts.progressive_shadow;

    let mut cycles: u64 = 0;
    let mut pending_load: u64 = 0; // overlappable with the next GEN
    let mut ext_cycles: u64 = 0; // external transfers overlap via ping-pong

    let mut dyn_pj = vec![0.0f64; Category::ALL.len()];
    let mut external_pj = 0.0f64;

    let cat_idx = |c: Category| c.index();
    // Per-cycle dynamic energy (fJ) of each logic category while active.
    let cat_dyn: Vec<f64> = Category::ALL
        .iter()
        .map(|&c| accel.category_cost(c).dyn_fj_per_cycle)
        .collect();

    // Near-memory vector width: one fixed-point unit per port byte (the
    // "array of fixed-point MAC units, tightly coupled with activation
    // memory" of §III-C).
    let nm_lanes = (accel.act_mem.width_bits / 8).max(1) as u64;

    for instr in &program.instrs {
        match *instr {
            Instr::LoadWeightsExternal { bytes } => {
                if let Some(hbm) = &accel.external {
                    ext_cycles += hbm.transfer_cycles(bytes, op.freq_mhz);
                    external_pj += hbm.energy_pj(bytes);
                }
            }
            Instr::LoadWeights { bytes } => {
                // Weight memory is banked per MAC row (Fig. 4a: "Weight
                // Memory 0..N"), so rows fill their SNG buffers in
                // parallel; latency divides by the row count, energy does
                // not.
                let accesses = accel.wgt_mem.accesses_for(bytes as usize);
                let lc = accesses.div_ceil(accel.rows as u64);
                if shadow {
                    pending_load += lc;
                } else {
                    cycles += lc;
                }
                dyn_pj[cat_idx(Category::WgtMemory)] +=
                    accesses as f64 * accel.wgt_mem.access_pj() * dyn_scale;
            }
            Instr::LoadActivations { bytes } => {
                let lc = accel.act_mem.accesses_for(bytes as usize);
                if shadow {
                    pending_load += lc;
                } else {
                    cycles += lc;
                }
                dyn_pj[cat_idx(Category::ActMemory)] +=
                    lc as f64 * accel.act_mem.access_pj() * dyn_scale;
            }
            Instr::Generate {
                cycles: c,
                active_macs,
                ..
            } => {
                // Queued work (shadow-buffered loads, time-multiplexed
                // near-memory ops) hides behind compute; only the operand
                // start latency remains exposed. Without shadow buffering,
                // loads were already paid serially above.
                let start = progressive_timing::start_latency(shadow) as u64;
                cycles += c.max(pending_load) + start;
                pending_load = 0;
                let util = active_macs as f64 / accel.macs().max(1) as f64;
                // §III-A computation skipping: pooled layers (identified
                // by their shorter `sp` stream — the compiler emits
                // `2·sp` Generate cycles only for them) convert once per
                // 2×2 pooling window, quartering converter activity.
                let pooled = accel.opts.pooled_conversion_skip
                    && accel.stream_pooled != accel.stream_other
                    && c == 2 * accel.stream_pooled as u64;
                for &cat in &[
                    Category::ScMacArrays,
                    Category::ActSng,
                    Category::ActSngBuffers,
                    Category::WgtSng,
                    Category::WgtSngBuffers,
                    Category::OutputConv,
                ] {
                    // MAC arrays and converters scale with utilization;
                    // generation machinery runs regardless.
                    let scale = match cat {
                        Category::OutputConv if pooled => util * 0.25,
                        Category::ScMacArrays | Category::OutputConv => util,
                        _ => 1.0,
                    };
                    dyn_pj[cat_idx(cat)] +=
                        cat_dyn[cat_idx(cat)] * 1e-3 * c as f64 * scale * dyn_scale;
                }
            }
            Instr::NearMemAccumulate { elements, .. }
            | Instr::NearMemBatchNorm { elements, .. } => {
                // 2-cycle read-add-write vector instruction (§III-C). The
                // near-memory units are time multiplexed with compute, so
                // their cycles hide behind subsequent generation passes.
                let c = 2 * elements.div_ceil(nm_lanes);
                pending_load += c;
                let accesses = 2 * elements.div_ceil(nm_lanes);
                dyn_pj[cat_idx(Category::ActMemory)] +=
                    accesses as f64 * accel.act_mem.access_pj() * dyn_scale;
                dyn_pj[cat_idx(Category::OutputConv)] +=
                    c as f64 * cat_dyn[cat_idx(Category::OutputConv)] * 1e-3 * 0.2 * dyn_scale;
            }
            Instr::WriteActivations { bytes } => {
                // Ping-pong activation banks let writebacks overlap the
                // next layer's loads and compute; they still cost energy.
                let lc = accel.act_mem.accesses_for(bytes as usize);
                pending_load += lc;
                dyn_pj[cat_idx(Category::ActMemory)] +=
                    lc as f64 * accel.act_mem.access_pj() * dyn_scale;
            }
            Instr::Sync => {
                // Layer boundary marker; outstanding memory work carries
                // into the next layer thanks to the ping-pong banks and is
                // drained against its compute.
            }
        }
    }
    cycles += pending_load;
    // External transfers overlap with compute via weight ping-pong banks;
    // they bound latency only when compute is faster.
    cycles = cycles.max(ext_cycles);

    let seconds = cycles as f64 * op.period_ns() * 1e-9;
    let leak_mw = accel.leakage_mw();
    let leakage_pj = leak_mw * 1e9 * seconds; // mW × s = mJ → pJ ×1e9
    let dyn_total_pj: f64 = dyn_pj.iter().sum();
    let energy_j = (dyn_total_pj + leakage_pj + external_pj) * 1e-12;
    let fps = 1.0 / seconds;
    SimReport {
        config: accel.name.clone(),
        network: program.name.clone(),
        cycles,
        seconds,
        energy_j,
        breakdown_pj: Category::ALL.iter().copied().zip(dyn_pj).collect(),
        leakage_pj,
        external_pj,
        fps,
        frames_per_joule: 1.0 / energy_j,
        power_mw: energy_j / seconds * 1e3,
        area_mm2: accel.total_area_mm2(),
    }
}

/// Convenience: compile and simulate a network on an accelerator.
pub fn run(accel: &AccelConfig, net: &crate::network::NetworkDesc) -> SimReport {
    let program = crate::compiler::compile(net, accel);
    simulate(accel, &program)
}

/// Bytes a compiled program moves for one layer, split by memory path.
///
/// The weight, activation-load, and writeback paths all go through the
/// double-buffered (ping-pong) on-chip banks that let transfers overlap
/// compute (Fig. 4); [`LayerTraffic::pingpong_bytes`] is their sum.
/// External (HBM2) transfers are kept separate — they feed the ping-pong
/// weight banks but are billed to the external interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerTraffic {
    /// Bytes loaded from external memory (LP variants; 0 on-chip).
    pub external_bytes: u64,
    /// Bytes loaded from weight memory into the weight SNG buffers.
    pub weight_bytes: u64,
    /// Bytes loaded from activation memory into the activation SNG
    /// buffers.
    pub activation_load_bytes: u64,
    /// Bytes written back to the activation banks.
    pub writeback_bytes: u64,
    /// Elements touched by near-memory accumulate/batch-norm ops.
    pub near_mem_elements: u64,
}

impl LayerTraffic {
    /// Total bytes moved through the ping-pong (double-buffered) on-chip
    /// banks: weight loads + activation loads + writebacks.
    #[must_use]
    pub fn pingpong_bytes(&self) -> u64 {
        self.weight_bytes + self.activation_load_bytes + self.writeback_bytes
    }
}

/// Per-layer memory traffic of a compiled program, in layer order.
///
/// Always available (no `telemetry` feature needed): the byte counts are
/// static properties of the program, not runtime counters. The program
/// executor in `geo-core` merges these into its telemetry report as
/// `pingpong_bytes`.
#[must_use]
pub fn memory_traffic(program: &Program) -> Vec<LayerTraffic> {
    (0..program.layer_count())
        .map(|li| {
            let mut t = LayerTraffic::default();
            for instr in program.layer_instrs(li).unwrap_or(&[]) {
                match *instr {
                    Instr::LoadWeightsExternal { bytes } => t.external_bytes += bytes,
                    Instr::LoadWeights { bytes } => t.weight_bytes += bytes,
                    Instr::LoadActivations { bytes } => t.activation_load_bytes += bytes,
                    Instr::WriteActivations { bytes } => t.writeback_bytes += bytes,
                    Instr::NearMemAccumulate { elements, .. }
                    | Instr::NearMemBatchNorm { elements, .. } => t.near_mem_elements += elements,
                    Instr::Generate { .. } | Instr::Sync => {}
                }
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkDesc;

    #[test]
    fn cnn4_on_ulp_runs_in_plausible_time() {
        let r = run(&AccelConfig::ulp_geo(32, 64), &NetworkDesc::cnn4_cifar());
        assert!(
            r.cycles > 1_000 && r.cycles < 10_000_000,
            "cycles {}",
            r.cycles
        );
        assert!(r.fps > 1_000.0, "fps {}", r.fps);
        assert!(r.energy_j > 0.0 && r.energy_j < 1e-3);
        assert!(
            r.power_mw > 1.0 && r.power_mw < 2_000.0,
            "power {}",
            r.power_mw
        );
    }

    #[test]
    fn shadow_buffering_speeds_up_inference() {
        // Fig. 6: progressive shadow buffers hide memory latency (≈1.7×
        // with the rest of the GEN bundle).
        let net = NetworkDesc::cnn4_cifar();
        let base = run(&AccelConfig::ulp_base(), &net);
        let gen = run(&AccelConfig::ulp_gen(), &net);
        let speedup = base.seconds / gen.seconds;
        assert!(speedup > 1.1, "GEN speedup {speedup}");
        assert!(speedup < 4.0, "GEN speedup {speedup} stays plausible");
    }

    #[test]
    fn gen_exec_is_much_faster_and_lower_energy_than_base() {
        // Fig. 6: GEO-GEN-EXEC-32,64 ≈ 4.3× faster, 5.2× lower energy.
        let net = NetworkDesc::cnn4_cifar();
        let base = run(&AccelConfig::ulp_base(), &net);
        let full = run(&AccelConfig::ulp_gen_exec(), &net);
        let speedup = base.seconds / full.seconds;
        let energy_ratio = base.energy_j / full.energy_j;
        assert!(speedup > 2.5, "GEN-EXEC speedup {speedup}");
        assert!(energy_ratio > 2.5, "GEN-EXEC energy gain {energy_ratio}");
    }

    #[test]
    fn geo_beats_acoustic_at_iso_accuracy_streams() {
        // Table II: GEO-ULP-32,64 vs ACOUSTIC-ULP-128 ≈ 4.4× faster,
        // 5.3× more energy efficient.
        let net = NetworkDesc::cnn4_cifar();
        let geo = run(&AccelConfig::ulp_geo(32, 64), &net);
        let aco = run(&AccelConfig::acoustic_ulp(128), &net);
        let speedup = aco.seconds / geo.seconds;
        let energy = aco.energy_j / geo.energy_j;
        assert!(speedup > 2.0, "GEO vs ACOUSTIC speedup {speedup}");
        assert!(energy > 2.0, "GEO vs ACOUSTIC energy {energy}");
    }

    #[test]
    fn shorter_streams_scale_throughput() {
        let net = NetworkDesc::cnn4_cifar();
        let s64 = run(&AccelConfig::ulp_geo(32, 64), &net);
        let s32 = run(&AccelConfig::ulp_geo(16, 32), &net);
        let ratio = s32.fps / s64.fps;
        assert!(ratio > 1.4 && ratio < 2.5, "stream halving ratio {ratio}");
    }

    #[test]
    fn lp_vgg_includes_external_energy() {
        let r = run(
            &AccelConfig::lp_geo(64, 128),
            &NetworkDesc::vgg16_scaled_cifar(),
        );
        assert!(r.external_pj > 0.0);
        assert!(r.energy_j_no_external() < r.energy_j);
        assert!(r.fps > 10.0, "VGG fps {}", r.fps);
    }

    #[test]
    fn breakdown_sums_to_dynamic_total() {
        let r = run(&AccelConfig::ulp_geo(32, 64), &NetworkDesc::cnn4_cifar());
        let sum: f64 = r.breakdown_pj.iter().map(|(_, e)| e).sum();
        let reconstructed = (sum + r.leakage_pj + r.external_pj) * 1e-12;
        assert!((reconstructed - r.energy_j).abs() / r.energy_j < 1e-9);
        assert_eq!(r.breakdown_pj.len(), 8);
    }

    #[test]
    fn memory_traffic_matches_program_totals() {
        let net = NetworkDesc::cnn4_cifar();
        let accel = AccelConfig::ulp_geo(32, 64);
        let program = crate::compiler::compile(&net, &accel);
        let per_layer = memory_traffic(&program);
        assert_eq!(per_layer.len(), program.layer_count());
        let (ext, wgt, act, wb) = program.traffic();
        assert_eq!(per_layer.iter().map(|t| t.external_bytes).sum::<u64>(), ext);
        assert_eq!(per_layer.iter().map(|t| t.weight_bytes).sum::<u64>(), wgt);
        assert_eq!(
            per_layer
                .iter()
                .map(|t| t.activation_load_bytes)
                .sum::<u64>(),
            act
        );
        assert_eq!(per_layer.iter().map(|t| t.writeback_bytes).sum::<u64>(), wb);
        assert!(per_layer.iter().any(|t| t.pingpong_bytes() > 0));
        assert!(per_layer.iter().any(|t| t.near_mem_elements > 0));
    }

    #[test]
    fn vgg_pricing_consistent_with_static_traffic_at_both_design_points() {
        // The compiled paper-scale VGG-16 program, priced on the on-chip
        // ULP and the external-memory LP design points: the simulator's
        // energy split must track the static per-layer traffic accounting
        // (external energy iff the program moves external bytes), and the
        // static per-layer totals must reconcile with the program's own
        // aggregate counters.
        let net = NetworkDesc::vgg16_scaled_cifar();
        for accel in [AccelConfig::ulp_geo(32, 64), AccelConfig::lp_geo(64, 128)] {
            let program = crate::compiler::compile(&net, &accel);
            let per_layer = memory_traffic(&program);
            assert_eq!(per_layer.len(), program.layer_count(), "{}", accel.name);
            let (ext, wgt, act, wb) = program.traffic();
            assert_eq!(per_layer.iter().map(|t| t.external_bytes).sum::<u64>(), ext);
            assert_eq!(per_layer.iter().map(|t| t.weight_bytes).sum::<u64>(), wgt);
            assert_eq!(
                per_layer
                    .iter()
                    .map(|t| t.activation_load_bytes)
                    .sum::<u64>(),
                act
            );
            assert_eq!(per_layer.iter().map(|t| t.writeback_bytes).sum::<u64>(), wb);
            let r = simulate(&accel, &program);
            assert_eq!(
                ext > 0,
                r.external_pj > 0.0,
                "{}: external energy must track external traffic",
                accel.name
            );
            assert_eq!(
                accel.external.is_some(),
                ext > 0,
                "{}: only LP design points move external bytes",
                accel.name
            );
            assert!(r.fps > 10.0, "{}: VGG fps {}", accel.name, r.fps);
            assert!(r.energy_j > 0.0 && r.energy_j < 1e-2);
        }
        // Depth sanity: 13 convs move strictly more on-chip bytes than
        // the 4-conv CIFAR network on the same design point.
        let ulp = AccelConfig::ulp_geo(32, 64);
        let pingpong = |net: &NetworkDesc| -> u64 {
            memory_traffic(&crate::compiler::compile(net, &ulp))
                .iter()
                .map(LayerTraffic::pingpong_bytes)
                .sum()
        };
        let (vgg, cnn4) = (pingpong(&net), pingpong(&NetworkDesc::cnn4_cifar()));
        assert!(vgg > cnn4, "vgg {vgg} bytes vs cnn4 {cnn4} bytes");
    }

    #[test]
    fn dvfs_lowers_energy_not_speed() {
        let net = NetworkDesc::cnn4_cifar();
        let mut no_dvfs = AccelConfig::ulp_geo(32, 64);
        no_dvfs.opts.pipeline_dvfs = false;
        no_dvfs.name = "GEO-no-dvfs".into();
        let with = run(&AccelConfig::ulp_geo(32, 64), &net);
        let without = run(&no_dvfs, &net);
        assert!(with.energy_j < without.energy_j);
        // Same frequency → comparable cycle counts.
        assert!((with.cycles as f64 / without.cycles as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn pooled_conversion_skip_lowers_only_converter_energy() {
        // §III-A: skipping conversion on pooled layers quarters the
        // output converters' activity there and touches nothing else —
        // cycles and every other category are identical with the flag
        // off.
        let net = NetworkDesc::cnn4_cifar();
        let mut no_skip = AccelConfig::ulp_geo(32, 64);
        no_skip.opts.pooled_conversion_skip = false;
        no_skip.name = "GEO-no-skip".into();
        let with = run(&AccelConfig::ulp_geo(32, 64), &net);
        let without = run(&no_skip, &net);
        assert_eq!(with.cycles, without.cycles);
        for ((cat, w), (_, wo)) in with.breakdown_pj.iter().zip(&without.breakdown_pj) {
            match cat {
                Category::OutputConv => {
                    assert!(*w < *wo, "converter energy did not drop: {w} vs {wo}")
                }
                _ => assert_eq!(w, wo, "{} changed", cat.label()),
            }
        }
        assert!(with.energy_j < without.energy_j);
    }

    #[test]
    fn equal_streams_defeat_pooled_detection() {
        // With `sp == s` the compiler emits indistinguishable Generate
        // cycles for pooled and unpooled layers, so the simulator cannot
        // (and must not) discount any of them.
        let net = NetworkDesc::cnn4_cifar();
        let mut no_skip = AccelConfig::ulp_geo(64, 64);
        no_skip.opts.pooled_conversion_skip = false;
        no_skip.name = "GEO-equal-no-skip".into();
        let with = run(&AccelConfig::ulp_geo(64, 64), &net);
        let without = run(&no_skip, &net);
        assert_eq!(with.cycles, without.cycles);
        assert_eq!(with.breakdown_pj, without.breakdown_pj);
    }
}
