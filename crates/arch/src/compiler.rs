//! Compiler from network descriptors to GEO programs.
//!
//! Implements the paper's schedule: weight-stationary with the vertically
//! sliding window, activation broadcast across rows, and — when a kernel
//! exceeds the row's MAC capacity — near-memory partial-sum accumulation
//! (§III-C). Accelerators without near-memory support fall back to the
//! strict output-stationary schedule with its reload penalty.

use crate::accel::AccelConfig;
use crate::dataflow::{count_accesses, kernel_passes, ArraySpec, Dataflow};
use crate::isa::{Instr, Program, Tile};
use crate::network::{LayerShape, NetworkDesc};

/// Output layers always run 128-cycle streams (×2 split-unipolar): small
/// performance impact, noticeable accuracy benefit (§IV).
pub const OUTPUT_STREAM: usize = 128;

/// The array geometry of an accelerator config, for dataflow accounting.
pub fn array_spec(accel: &AccelConfig) -> ArraySpec {
    ArraySpec::new(accel.rows, accel.row_macs, accel.positions_per_pass)
}

/// Stream length assigned to a layer.
fn stream_len(accel: &AccelConfig, layer: &LayerShape, is_output: bool) -> usize {
    if is_output {
        OUTPUT_STREAM
    } else if layer.pooled() {
        accel.stream_pooled
    } else {
        accel.stream_other
    }
}

/// Stream cycles for a layer (×2 for split-unipolar halves).
fn stream_cycles(accel: &AccelConfig, layer: &LayerShape, is_output: bool) -> u64 {
    2 * stream_len(accel, layer, is_output) as u64
}

/// Operand bits loaded per value: the LFSR width under progressive
/// truncation, the full 8 bits otherwise.
fn operand_bits(accel: &AccelConfig, layer: &LayerShape, is_output: bool) -> u8 {
    let width = stream_len(accel, layer, is_output).trailing_zeros() as u8;
    width.min(8)
}

/// Compiles `net` for `accel`.
pub fn compile(net: &NetworkDesc, accel: &AccelConfig) -> Program {
    let mut prog = Program::new(&net.name);
    let spec = array_spec(accel);
    let near_mem = accel.opts.near_memory;
    for (li, layer) in net.layers.iter().enumerate() {
        let is_output = li + 1 == net.layers.len();
        prog.begin_layer();
        let v = layer.kernel_volume();
        let cout = layer.output_channels();
        let (oh, ow) = layer.output_hw();
        let outputs = (oh * ow).max(1);

        let col_passes = kernel_passes(v, accel.row_macs);
        let cout_groups = cout.div_ceil(accel.rows) as u64;
        let pos_groups = outputs.div_ceil(accel.positions_per_pass) as u64;
        let cycles = stream_cycles(accel, layer, is_output);

        // Traffic totals come from the dataflow model; the compiler
        // spreads them uniformly over the passes it emits.
        let dataflow = if near_mem || col_passes == 1 {
            Dataflow::WeightStationary
        } else {
            Dataflow::OutputStationary
        };
        let acc = count_accesses(layer, dataflow, &spec);
        let gen_passes = (cout_groups * col_passes * pos_groups).max(1);
        // Sliding-window operand reuse needs the shadow stages to carry
        // bits across passes; without them every pass refetches its full
        // window (×Kh traffic). Progressive truncation loads only the
        // LFSR-width top bits of each 8-bit operand (§II-B).
        let act_traffic = if accel.opts.progressive_shadow {
            let width = u64::from(operand_bits(accel, layer, is_output));
            acc.act_reads * width / 8
        } else {
            let kh = match layer {
                LayerShape::Conv { kernel, .. } => *kernel as u64,
                LayerShape::Fc { .. } => 1,
            };
            acc.act_reads * kh
        };
        let act_bytes_per_pass = act_traffic.div_ceil(gen_passes).max(1);
        let wgt_loads = (cout_groups * col_passes).max(1);
        let wgt_bytes_per_load = acc.weight_reads.div_ceil(if near_mem || col_passes == 1 {
            wgt_loads
        } else {
            gen_passes // strict OS reloads weights every pass
        });

        let rows_active = accel.rows.min(cout) as u64;
        let active_macs = rows_active * (accel.row_macs.min(v) as u64);

        for cg in 0..cout_groups {
            if accel.external.is_some() {
                prog.push(Instr::LoadWeightsExternal {
                    bytes: acc.weight_reads / cout_groups,
                });
            }
            let cout_begin = (cg as usize * accel.rows).min(cout) as u32;
            let cout_end = ((cg as usize + 1) * accel.rows).min(cout) as u32;
            for cp in 0..col_passes {
                if near_mem || col_passes == 1 {
                    prog.push(Instr::LoadWeights {
                        bytes: wgt_bytes_per_load,
                    });
                }
                for pg in 0..pos_groups {
                    if !(near_mem || col_passes == 1) {
                        // Strict output-stationary: weights reload per pass.
                        prog.push(Instr::LoadWeights {
                            bytes: wgt_bytes_per_load,
                        });
                    }
                    prog.push(Instr::LoadActivations {
                        bytes: act_bytes_per_pass,
                    });
                    let pos_begin = (pg as usize * accel.positions_per_pass).min(outputs) as u32;
                    let pos_end =
                        ((pg as usize + 1) * accel.positions_per_pass).min(outputs) as u32;
                    prog.push(Instr::Generate {
                        cycles,
                        active_macs,
                        tile: Tile {
                            layer: li as u32,
                            sng_group: cg as u32,
                            cout_begin,
                            cout_end,
                            pos_begin,
                            pos_end,
                            col_pass: cp as u32,
                            col_passes: col_passes as u32,
                        },
                    });
                }
                if near_mem && cp > 0 {
                    // Accumulate this column pass's partial sums into the
                    // running sums in activation memory.
                    prog.push(Instr::NearMemAccumulate {
                        elements: rows_active * pos_groups * accel.positions_per_pass as u64,
                        layer: li as u32,
                    });
                }
            }
        }
        // Writeback after pooling: 4× fewer elements on pooled layers
        // (pooling happens in the output converters before BN — §III-B).
        let out_elems = if layer.pooled() {
            layer.outputs() / 4
        } else {
            layer.outputs()
        };
        if near_mem {
            prog.push(Instr::NearMemBatchNorm {
                elements: out_elems,
                layer: li as u32,
            });
        }
        prog.push(Instr::WriteActivations { bytes: out_elems });
        prog.push(Instr::Sync);
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkDesc;

    #[test]
    fn compiles_cnn4_with_expected_pass_structure() {
        let net = NetworkDesc::cnn4_cifar();
        let accel = AccelConfig::ulp_geo(32, 64);
        let prog = compile(&net, &accel);
        assert_eq!(prog.layer_starts.len(), 4);
        // Layer 1: V=75 fits (1 col pass), Cout=32 = rows (1 group),
        // outputs 32×32=1024 → 128 position groups.
        let gens = prog.generate_count();
        assert!(gens >= 128, "at least layer-1 passes, got {gens}");
        let (_, wgt, act, wb) = prog.traffic();
        assert!(wgt > 0 && act > 0 && wb > 0);
    }

    #[test]
    fn output_layer_uses_128_streams() {
        let net = NetworkDesc::lenet5_mnist();
        let accel = AccelConfig::ulp_geo(16, 32);
        let prog = compile(&net, &accel);
        // Find the last Generate: must be 2×128 cycles.
        let last_gen = prog
            .instrs
            .iter()
            .rev()
            .find_map(|i| match i {
                Instr::Generate { cycles, .. } => Some(*cycles),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_gen, 256);
        // And the first conv (pooled) runs 2×16.
        let first_gen = prog
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::Generate { cycles, .. } => Some(*cycles),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_gen, 32);
    }

    #[test]
    fn near_memory_emits_accumulates_for_spilled_kernels() {
        // VGG's 512-channel layers spill the 1024-MAC rows.
        let net = NetworkDesc::vgg16_scaled_cifar();
        let accel = AccelConfig::lp_geo(64, 128);
        let prog = compile(&net, &accel);
        let nmacc = prog
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::NearMemAccumulate { .. }))
            .count();
        assert!(nmacc > 0, "spilled kernels need near-memory accumulation");
    }

    #[test]
    fn no_near_memory_falls_back_to_reloading() {
        // Isolate one deep layer whose kernel spills the MAC rows — the
        // case §III-C's 10.3× warning is about.
        let net = NetworkDesc {
            name: "deep-conv".into(),
            layers: vec![crate::network::LayerShape::Conv {
                cin: 512,
                cout: 512,
                kernel: 3,
                stride: 1,
                pad: 1,
                in_h: 8,
                in_w: 8,
                pooled: false,
            }],
        };
        let mut with = AccelConfig::lp_geo(64, 128);
        with.external = None; // compare on-chip traffic only
        let mut without = with.clone();
        without.opts.near_memory = false;
        without.name = "LP-no-nearmem".into();
        let p_with = compile(&net, &with);
        let p_without = compile(&net, &without);
        let (_, wgt_with, act_with, _) = p_with.traffic();
        let (_, wgt_without, act_without, _) = p_without.traffic();
        assert!(
            wgt_without + act_without > 3 * (wgt_with + act_with),
            "strict OS reloads: {} vs {}",
            wgt_without + act_without,
            wgt_with + act_with
        );
        // And no near-memory instructions are emitted.
        assert!(p_without.instrs.iter().all(|i| !matches!(
            i,
            Instr::NearMemAccumulate { .. } | Instr::NearMemBatchNorm { .. }
        )));
    }

    /// The tiles of each layer's `GEN` passes must exactly cover the
    /// layer's output volume once per column pass: in bounds, pairwise
    /// disjoint, total area = col_passes × cout × outputs. This is what
    /// lets an executor trust a program's operand addressing.
    #[test]
    fn tiles_cover_each_layer_exactly() {
        for (net, accel) in [
            (NetworkDesc::cnn4_cifar(), AccelConfig::ulp_geo(32, 64)),
            (NetworkDesc::lenet5_mnist(), AccelConfig::ulp_geo(16, 32)),
            (
                NetworkDesc::vgg16_scaled_cifar(),
                AccelConfig::lp_geo(64, 128),
            ),
        ] {
            let prog = compile(&net, &accel);
            for (li, layer) in net.layers.iter().enumerate() {
                let cout = layer.output_channels();
                let (oh, ow) = layer.output_hw();
                let outputs = (oh * ow).max(1);
                let tiles: Vec<_> = prog.tiles().filter(|t| t.layer as usize == li).collect();
                assert!(!tiles.is_empty(), "{} layer {li} has no tiles", net.name);
                let col_passes = tiles[0].col_passes as usize;
                let mut covered = vec![false; col_passes * cout * outputs];
                for t in &tiles {
                    assert!(t.cout_begin < t.cout_end && t.cout_end as usize <= cout);
                    assert!(t.pos_begin < t.pos_end && t.pos_end as usize <= outputs);
                    assert!((t.col_pass as usize) < col_passes);
                    assert_eq!(t.col_passes as usize, col_passes);
                    assert_eq!(t.sng_group as usize, t.cout_begin as usize / accel.rows);
                    for c in t.cout_begin..t.cout_end {
                        for p in t.pos_begin..t.pos_end {
                            let cell =
                                (t.col_pass as usize * cout + c as usize) * outputs + p as usize;
                            assert!(
                                !std::mem::replace(&mut covered[cell], true),
                                "{} layer {li}: cell ({c},{p}) covered twice in col pass {}",
                                net.name,
                                t.col_pass
                            );
                        }
                    }
                }
                assert!(
                    covered.iter().all(|&b| b),
                    "{} layer {li}: output volume not fully covered",
                    net.name
                );
            }
        }
    }

    #[test]
    fn external_memory_loads_only_for_lp() {
        let net = NetworkDesc::cnn4_cifar();
        let ulp = compile(&net, &AccelConfig::ulp_geo(32, 64));
        assert_eq!(ulp.traffic().0, 0, "ULP has no external loads");
        let lp = compile(&net, &AccelConfig::lp_geo(64, 128));
        assert!(lp.traffic().0 > 0, "LP streams weights from HBM2");
    }

    #[test]
    fn pooled_layers_write_quarter_outputs() {
        let net = NetworkDesc::cnn4_cifar(); // layer 1: 32×32×32 outputs, pooled
        let accel = AccelConfig::ulp_geo(32, 64);
        let prog = compile(&net, &accel);
        let first_wb = prog
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::WriteActivations { bytes } => Some(*bytes),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_wb, 32 * 32 * 32 / 4);
    }
}
