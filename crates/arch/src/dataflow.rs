//! Dataflow analysis: memory-access counting for weight-, output-, and
//! input-stationary schedules (paper §III-C).
//!
//! GEO's compute hierarchy mimics a vertically sliding convolution window,
//! yielding weight-stationary execution where only one activation row is
//! reloaded between passes. When a kernel doesn't fit the array, GEO
//! stores converted partial sums in activation memory via the near-memory
//! read-add-write path instead of degrading to a strict output-stationary
//! schedule.

use crate::network::LayerShape;
use serde::{Deserialize, Serialize};

/// The schedule family used for a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights resident; activations stream past (GEO with near-memory
    /// partial sums when kernels don't fit).
    WeightStationary,
    /// Outputs resident in converters; weights *and* activations reloaded
    /// between passes (the strict fallback §III-C warns about).
    OutputStationary,
    /// Activations resident; weights stream past.
    InputStationary,
}

/// The MAC-array geometry the schedule maps onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArraySpec {
    /// Parallel rows (output channels computed simultaneously).
    pub rows: usize,
    /// MAC units per row (kernel elements unrolled).
    pub row_macs: usize,
    /// Output positions computed per pass via the sliding window.
    pub positions_per_pass: usize,
}

impl ArraySpec {
    /// Creates an array geometry.
    pub fn new(rows: usize, row_macs: usize, positions_per_pass: usize) -> Self {
        ArraySpec {
            rows,
            row_macs,
            positions_per_pass,
        }
    }
}

/// Element-granular memory access counts for one layer under one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Weight-memory reads.
    pub weight_reads: u64,
    /// Activation-memory reads.
    pub act_reads: u64,
    /// Partial-sum reads+writes (near-memory accumulate traffic).
    pub psum_accesses: u64,
    /// Final output writes.
    pub output_writes: u64,
}

impl AccessCounts {
    /// Total accesses across all classes.
    pub fn total(&self) -> u64 {
        self.weight_reads + self.act_reads + self.psum_accesses + self.output_writes
    }

    /// Fraction of accesses that are partial-sum traffic.
    pub fn psum_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.psum_accesses as f64 / self.total() as f64
        }
    }
}

/// Number of passes needed to cover a kernel of `volume` on `row_macs`
/// MACs.
pub fn kernel_passes(volume: usize, row_macs: usize) -> u64 {
    (volume.div_ceil(row_macs.max(1))) as u64
}

/// Counts element-granular memory accesses for `layer` under `dataflow`
/// on `array`.
pub fn count_accesses(layer: &LayerShape, dataflow: Dataflow, array: &ArraySpec) -> AccessCounts {
    let v = layer.kernel_volume() as u64;
    let cout = layer.output_channels() as u64;
    let (oh, ow) = layer.output_hw();
    let outputs = (oh * ow) as u64;
    let out_elems = cout * outputs;
    let passes = kernel_passes(layer.kernel_volume(), array.row_macs);
    let kh = match layer {
        LayerShape::Conv { kernel, .. } => *kernel as u64,
        LayerShape::Fc { .. } => 1,
    };
    let p = (array.positions_per_pass as u64).max(1);
    match dataflow {
        Dataflow::WeightStationary => {
            // Weights loaded once; the vertical sliding window reuses each
            // activation across the kernel's height, so activation traffic
            // is the window stream divided by kh; partial sums only when
            // the kernel doesn't fit.
            AccessCounts {
                weight_reads: cout * v,
                act_reads: (outputs * v) / kh.max(1) + v,
                psum_accesses: 2 * out_elems * (passes - 1),
                output_writes: out_elems,
            }
        }
        Dataflow::OutputStationary => {
            // Outputs accumulate in converters; every pass reloads its
            // weight and activation operands, and output tiles of size
            // `p · rows` force `out_elems / (p · rows)` full weight sweeps.
            let out_tiles = out_elems.div_ceil(p * array.rows as u64).max(1);
            AccessCounts {
                weight_reads: cout * v * out_tiles.min(outputs),
                act_reads: outputs * v, // no sliding reuse across passes
                psum_accesses: 0,
                output_writes: out_elems,
            }
        }
        Dataflow::InputStationary => {
            // Activations resident in the SNG buffers (double-buffered
            // window sets); weights restream for every resident tile and
            // partially-accumulated outputs spill between tiles.
            let act_capacity = (2 * array.row_macs) as u64;
            let in_tiles = layer.input_activations().div_ceil(act_capacity).max(1);
            AccessCounts {
                weight_reads: cout * v * in_tiles.min(outputs),
                act_reads: layer.input_activations(),
                psum_accesses: 2 * out_elems * (passes.max(in_tiles) - 1),
                output_writes: out_elems,
            }
        }
    }
}

/// Access totals for a whole network.
pub fn network_accesses(
    layers: &[LayerShape],
    dataflow: Dataflow,
    array: &ArraySpec,
) -> AccessCounts {
    let mut total = AccessCounts::default();
    for l in layers {
        let c = count_accesses(l, dataflow, array);
        total.weight_reads += c.weight_reads;
        total.act_reads += c.act_reads;
        total.psum_accesses += c.psum_accesses;
        total.output_writes += c.output_writes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_layer() -> LayerShape {
        LayerShape::Conv {
            cin: 256,
            cout: 256,
            kernel: 3,
            stride: 1,
            pad: 1,
            in_h: 8,
            in_w: 8,
            pooled: false,
        }
    }

    fn array() -> ArraySpec {
        ArraySpec::new(32, 800, 8)
    }

    #[test]
    fn weight_stationary_wins_on_conv_layers() {
        let l = vgg_layer();
        let ws = count_accesses(&l, Dataflow::WeightStationary, &array());
        let os = count_accesses(&l, Dataflow::OutputStationary, &array());
        let is = count_accesses(&l, Dataflow::InputStationary, &array());
        assert!(ws.total() < os.total());
        assert!(ws.total() < is.total());
    }

    #[test]
    fn strict_output_stationary_penalty_is_large() {
        // §III-C: strict output-stationary can cost up to ~10× vs ideal WS.
        let l = vgg_layer();
        let ws = count_accesses(&l, Dataflow::WeightStationary, &array()).total();
        let os = count_accesses(&l, Dataflow::OutputStationary, &array()).total();
        let ratio = os as f64 / ws as f64;
        assert!(ratio > 3.0, "OS penalty ratio {ratio}");
    }

    #[test]
    fn input_stationary_penalty_is_moderate() {
        // §III-C: WS reduces accesses up to ~3.3× vs input-stationary.
        let l = vgg_layer();
        let ws = count_accesses(&l, Dataflow::WeightStationary, &array()).total();
        let is = count_accesses(&l, Dataflow::InputStationary, &array()).total();
        let ratio = is as f64 / ws as f64;
        assert!(ratio > 1.5, "IS penalty ratio {ratio}");
    }

    #[test]
    fn psum_traffic_appears_only_when_kernel_spills() {
        let small = LayerShape::Conv {
            cin: 16,
            cout: 32,
            kernel: 3,
            stride: 1,
            pad: 1,
            in_h: 16,
            in_w: 16,
            pooled: false,
        }; // volume 144 ≤ 800 MACs
        let ws = count_accesses(&small, Dataflow::WeightStationary, &array());
        assert_eq!(ws.psum_accesses, 0);

        let big = vgg_layer(); // volume 2304 > 800
        let ws = count_accesses(&big, Dataflow::WeightStationary, &array());
        assert!(ws.psum_accesses > 0);
        // §III-C: partial sums are 13–20% of accesses — a minority share.
        let frac = ws.psum_fraction();
        assert!(frac > 0.02 && frac < 0.45, "psum fraction {frac}");
    }

    #[test]
    fn kernel_pass_math() {
        assert_eq!(kernel_passes(2304, 800), 3);
        assert_eq!(kernel_passes(800, 800), 1);
        assert_eq!(kernel_passes(1, 800), 1);
        assert_eq!(kernel_passes(10, 0), 10);
    }

    #[test]
    fn network_totals_sum_layers() {
        let layers = [vgg_layer(), vgg_layer()];
        let single = count_accesses(&layers[0], Dataflow::WeightStationary, &array());
        let total = network_accesses(&layers, Dataflow::WeightStationary, &array());
        assert_eq!(total.total(), 2 * single.total());
    }

    #[test]
    fn fc_layers_are_counted() {
        let fc = LayerShape::Fc {
            inf: 1024,
            outf: 512,
        };
        let ws = count_accesses(&fc, Dataflow::WeightStationary, &array());
        assert_eq!(ws.weight_reads, 512 * 1024);
        assert_eq!(ws.output_writes, 512);
    }
}
