//! Durable on-disk container for compiled GEO programs.
//!
//! A compiled [`Program`] is the single configuration a GEO deployment
//! runs from (§III: program-driven control), so caching it across
//! processes — compile once, serve many — demands a load boundary that is
//! robust by construction. This module defines the versioned binary
//! container around [`crate::encoding::encode`]'s instruction stream:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GEOA"
//! 4       2     format version (LE u16)
//! 6       8     NetworkDesc fingerprint (LE u64)
//! 14      4     CRC-32 of bytes 0..14
//! 18      …     section "name":   u32 LE len | program name (UTF-8) | CRC-32
//! …       …     section "layers": u32 LE len | layer starts (u32 LE each) | CRC-32
//! …       …     section "code":   u32 LE len | encoded instruction stream | CRC-32
//! ```
//!
//! Every multi-byte integer is little-endian; every section checksum is
//! CRC-32 (IEEE, reflected) over the section payload only. A loaded
//! artifact re-serializes to exactly the bytes it was loaded from, and
//! [`ProgramArtifact::from_bytes`] maps every malformed input to a typed
//! [`ArtifactError`] — never a panic, never a silently different program.
//! The fuzz harness and corrupt-artifact corpus in
//! `crates/arch/tests/artifact_fuzz.rs` pin both properties.

use crate::encoding::{self, DecodeError, EncodeError};
use crate::isa::Program;
use crate::network::NetworkDesc;
use std::fmt;

/// The container magic: `b"GEOA"` (GEO Artifact).
pub const MAGIC: [u8; 4] = *b"GEOA";

/// Current container format version. Bump on any layout change, including
/// changes to the instruction encoding or the fingerprint computation.
pub const FORMAT_VERSION: u16 = 1;

/// Bytes of the fixed header covered by the header checksum
/// (magic + version + fingerprint).
const HEADER_BYTES: usize = 4 + 2 + 8;

/// Errors produced when serializing or loading a program artifact.
///
/// Every malformed input maps to exactly one of these classes; the
/// corrupt-artifact corpus test asserts the mapping corruption class by
/// corruption class.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The byte stream ends before a required field or section payload.
    Truncated {
        /// Absolute offset the read needed to reach.
        expected: usize,
        /// Actual length of the byte stream.
        actual: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The rejected bytes.
        found: [u8; 4],
    },
    /// The container was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// The version this build reads and writes.
        supported: u16,
    },
    /// A stored CRC-32 does not match the checksum of the bytes it covers.
    ChecksumMismatch {
        /// Which region failed (`header`, `name`, `layers`, `code`).
        section: &'static str,
        /// Checksum stored in the artifact.
        stored: u32,
        /// Checksum computed over the loaded bytes.
        computed: u32,
    },
    /// Bytes remain after the last section — the stream is not exactly
    /// one artifact.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The code section fails strict instruction decoding.
    Decode(DecodeError),
    /// The program cannot be encoded (an operand exceeds its field).
    Encode(EncodeError),
    /// The container is structurally intact but semantically invalid:
    /// non-UTF-8 name, malformed or unordered layer table, or a
    /// fingerprint that does not match the network being loaded for.
    Semantic {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { expected, actual } => write!(
                f,
                "artifact truncated: needed {expected} bytes, stream has {actual}"
            ),
            ArtifactError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            ArtifactError::VersionMismatch { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads {supported})"
            ),
            ArtifactError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "{section} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ArtifactError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last section")
            }
            ArtifactError::Decode(e) => write!(f, "code section: {e}"),
            ArtifactError::Encode(e) => write!(f, "program not encodable: {e}"),
            ArtifactError::Semantic { detail } => write!(f, "semantic mismatch: {detail}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Decode(e) => Some(e),
            ArtifactError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for ArtifactError {
    fn from(e: DecodeError) -> Self {
        ArtifactError::Decode(e)
    }
}

impl From<EncodeError> for ArtifactError {
    fn from(e: EncodeError) -> Self {
        ArtifactError::Encode(e)
    }
}

/// CRC-32 lookup table (IEEE 802.3 polynomial, reflected), built at
/// compile time so the crate stays dependency-free.
static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// CRC-32 (IEEE, reflected) of `bytes` — the checksum every artifact
/// section carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A compiled program bound to the fingerprint of the network it was
/// compiled for, ready to serialize into the durable container format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramArtifact {
    version: u16,
    fingerprint: u64,
    program: Program,
}

impl ProgramArtifact {
    /// Wraps `program` with `net`'s fingerprint at the current
    /// [`FORMAT_VERSION`]. Serialization validity (operand ranges, layer
    /// table ordering) is checked by [`ProgramArtifact::to_bytes`].
    pub fn new(program: Program, net: &NetworkDesc) -> Self {
        ProgramArtifact {
            version: FORMAT_VERSION,
            fingerprint: net.fingerprint(),
            program,
        }
    }

    /// Format version this artifact was loaded from or created at.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Fingerprint of the network the program was compiled for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The contained program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Consumes the artifact, yielding the contained program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Checks the artifact was compiled for `net`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Semantic`] if the stored fingerprint does
    /// not match `net`'s — the program addresses a structurally different
    /// network and must not execute against this one.
    pub fn verify_for(&self, net: &NetworkDesc) -> Result<(), ArtifactError> {
        let expected = net.fingerprint();
        if self.fingerprint != expected {
            return Err(ArtifactError::Semantic {
                detail: format!(
                    "artifact fingerprint {:#018x} does not match network '{}' ({expected:#018x})",
                    self.fingerprint, net.name
                ),
            });
        }
        Ok(())
    }

    /// Serializes the artifact into the container format.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Encode`] if an instruction operand exceeds
    /// its field, or [`ArtifactError::Semantic`] if the layer table is
    /// unordered, out of bounds, or too large for the format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ArtifactError> {
        validate_layer_starts(&self.program.layer_starts, self.program.instrs.len())?;
        let code = encoding::encode(&self.program)?;

        let mut layers = Vec::with_capacity(self.program.layer_starts.len() * 4);
        for &start in &self.program.layer_starts {
            let start = u32::try_from(start).map_err(|_| ArtifactError::Semantic {
                detail: format!("layer start {start} exceeds the format's u32 range"),
            })?;
            layers.extend_from_slice(&start.to_le_bytes());
        }

        let mut buf = Vec::with_capacity(HEADER_BYTES + 4 + code.len() + 64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        let header_crc = crc32(&buf);
        buf.extend_from_slice(&header_crc.to_le_bytes());
        push_section(&mut buf, self.program.name.as_bytes())?;
        push_section(&mut buf, &layers)?;
        push_section(&mut buf, &code)?;
        Ok(buf)
    }

    /// Loads an artifact from `bytes`, validating container integrity
    /// (magic, version, per-section checksums, exact length) and strictly
    /// decoding the instruction stream.
    ///
    /// Never panics: arbitrary byte strings yield `Ok` or a typed
    /// [`ArtifactError`]. An accepted artifact re-serializes to exactly
    /// `bytes`.
    ///
    /// # Errors
    ///
    /// One [`ArtifactError`] variant per corruption class; see the type's
    /// documentation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(magic);
            return Err(ArtifactError::BadMagic { found });
        }
        let v = r.take(2)?;
        let version = u16::from_le_bytes([v[0], v[1]]);
        if version != FORMAT_VERSION {
            return Err(ArtifactError::VersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let fingerprint = r.u64()?;
        let stored = r.u32()?;
        let computed = crc32(&bytes[..HEADER_BYTES]);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch {
                section: "header",
                stored,
                computed,
            });
        }

        let name = r.section("name")?;
        let layers = r.section("layers")?;
        let code = r.section("code")?;
        if r.pos != bytes.len() {
            return Err(ArtifactError::TrailingBytes {
                extra: bytes.len() - r.pos,
            });
        }

        let name = String::from_utf8(name.to_vec()).map_err(|e| ArtifactError::Semantic {
            detail: format!("program name is not UTF-8 ({e})"),
        })?;
        if layers.len() % 4 != 0 {
            return Err(ArtifactError::Semantic {
                detail: format!(
                    "layer table of {} bytes is not a whole number of u32 entries",
                    layers.len()
                ),
            });
        }
        let layer_starts: Vec<usize> = layers
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) as usize)
            .collect();
        let instrs = encoding::decode(code)?;
        validate_layer_starts(&layer_starts, instrs.len())?;
        Ok(ProgramArtifact {
            version,
            fingerprint,
            program: Program {
                name,
                instrs,
                layer_starts,
            },
        })
    }
}

/// Layer starts must be non-decreasing and within the instruction stream;
/// anything else cannot have come from [`Program::begin_layer`] and would
/// make [`Program::layer_instrs`] lie about layer boundaries.
fn validate_layer_starts(starts: &[usize], instr_count: usize) -> Result<(), ArtifactError> {
    for (i, pair) in starts.windows(2).enumerate() {
        if pair[0] > pair[1] {
            return Err(ArtifactError::Semantic {
                detail: format!(
                    "layer table not in order: start[{i}] = {} > start[{}] = {}",
                    pair[0],
                    i + 1,
                    pair[1]
                ),
            });
        }
    }
    if let Some(&last) = starts.last() {
        if last > instr_count {
            return Err(ArtifactError::Semantic {
                detail: format!(
                    "layer start {last} is beyond the {instr_count}-instruction stream"
                ),
            });
        }
    }
    Ok(())
}

/// Appends one length-prefixed, checksummed section.
fn push_section(buf: &mut Vec<u8>, payload: &[u8]) -> Result<(), ArtifactError> {
    let len = u32::try_from(payload.len()).map_err(|_| ArtifactError::Semantic {
        detail: format!(
            "section of {} bytes exceeds the format's u32 range",
            payload.len()
        ),
    })?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    Ok(())
}

/// Bounds-checked cursor over the artifact bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self.pos.checked_add(n).ok_or(ArtifactError::Truncated {
            expected: usize::MAX,
            actual: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(ArtifactError::Truncated {
                expected: end,
                actual: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads one length-prefixed section and verifies its checksum.
    fn section(&mut self, name: &'static str) -> Result<&'a [u8], ArtifactError> {
        let len = self.u32()? as usize;
        let payload = self.take(len)?;
        let stored = self.u32()?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch {
                section: name,
                stored,
                computed,
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelConfig;
    use crate::compiler::compile;

    fn lenet_artifact() -> (NetworkDesc, ProgramArtifact) {
        let net = NetworkDesc::lenet5_mnist();
        let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
        let artifact = ProgramArtifact::new(program, &net);
        (net, artifact)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trips_byte_identically() {
        let (net, artifact) = lenet_artifact();
        let bytes = artifact.to_bytes().unwrap();
        let loaded = ProgramArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, artifact);
        assert_eq!(loaded.to_bytes().unwrap(), bytes);
        loaded.verify_for(&net).unwrap();
        assert_eq!(loaded.version(), FORMAT_VERSION);
        assert_eq!(loaded.fingerprint(), net.fingerprint());
    }

    #[test]
    fn verify_for_rejects_other_networks() {
        let (_, artifact) = lenet_artifact();
        let other = NetworkDesc::cnn4_cifar();
        let err = artifact.verify_for(&other).unwrap_err();
        assert!(matches!(err, ArtifactError::Semantic { .. }), "{err}");
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn rejects_unordered_or_out_of_bounds_layer_tables() {
        let (net, artifact) = lenet_artifact();
        let mut p = artifact.program().clone();
        p.layer_starts.swap(0, 1);
        // swap(0, 1) on [0, …] only reorders if start[1] > 0.
        assert!(p.layer_starts[0] > p.layer_starts[1]);
        let err = ProgramArtifact::new(p, &net).to_bytes().unwrap_err();
        assert!(matches!(err, ArtifactError::Semantic { .. }), "{err}");

        let mut p = artifact.program().clone();
        p.layer_starts.push(p.instrs.len() + 1);
        let err = ProgramArtifact::new(p, &net).to_bytes().unwrap_err();
        assert!(matches!(err, ArtifactError::Semantic { .. }), "{err}");
    }

    #[test]
    fn rejects_unencodable_programs_typed() {
        let (net, artifact) = lenet_artifact();
        let mut p = artifact.program().clone();
        p.instrs
            .push(crate::isa::Instr::LoadWeights { bytes: u64::MAX });
        let err = ProgramArtifact::new(p, &net).to_bytes().unwrap_err();
        assert!(matches!(err, ArtifactError::Encode(_)), "{err}");
    }

    #[test]
    fn empty_program_round_trips() {
        let net = NetworkDesc {
            name: "empty".into(),
            layers: vec![],
        };
        let artifact = ProgramArtifact::new(Program::new("empty"), &net);
        let bytes = artifact.to_bytes().unwrap();
        assert_eq!(ProgramArtifact::from_bytes(&bytes).unwrap(), artifact);
    }

    #[test]
    fn display_covers_every_variant() {
        let errs: Vec<ArtifactError> = vec![
            ArtifactError::Truncated {
                expected: 10,
                actual: 4,
            },
            ArtifactError::BadMagic { found: *b"NOPE" },
            ArtifactError::VersionMismatch {
                found: 9,
                supported: FORMAT_VERSION,
            },
            ArtifactError::ChecksumMismatch {
                section: "code",
                stored: 1,
                computed: 2,
            },
            ArtifactError::TrailingBytes { extra: 3 },
            DecodeError::TruncatedStream { len: 7 }.into(),
            EncodeError::FieldRange {
                instr: "LDW",
                field: "bytes",
                value: u64::MAX,
                max: 1,
            }
            .into(),
            ArtifactError::Semantic { detail: "x".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
