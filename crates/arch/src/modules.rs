//! Gate-level cost models of GEO's hardware blocks (paper §III, Fig. 4):
//! LFSRs, SNG comparators, SNG buffers (with progressive shadow buffers),
//! SC MAC gates, parallel counters, output converters, and near-memory
//! compute units.

use crate::tech::{ge, BlockCost};

/// Activity factors used to adjust active power, mirroring the paper's
/// RTL-derived activity adjustment ("many modules, such as SNG buffers and
/// batch normalization modules are idle most of the time").
pub mod activity {
    /// LFSRs toggle every compute cycle.
    pub const LFSR: f64 = 0.5;
    /// SNG comparators evaluate every compute cycle.
    pub const SNG_CMP: f64 = 0.4;
    /// SNG buffers only toggle while (re)loading.
    pub const SNG_BUFFER: f64 = 0.05;
    /// SC MAC gates toggle with stream data.
    pub const SC_MAC: f64 = 0.35;
    /// Counters/converters toggle with accumulation.
    pub const CONVERTER: f64 = 0.3;
    /// Near-memory units are time-multiplexed and mostly idle.
    pub const NEAR_MEM: f64 = 0.1;
}

/// An `n`-bit maximal-length LFSR: `n` flip-flops plus feedback XORs.
pub fn lfsr(bits: u8) -> BlockCost {
    let n = f64::from(bits);
    BlockCost::from_ge(n * ge::DFF + 3.0 * ge::XOR2, activity::LFSR)
}

/// An SNG comparator of `bits` bits (random number vs. target value).
pub fn sng_comparator(bits: u8) -> BlockCost {
    BlockCost::from_ge(f64::from(bits) * ge::CMP_BIT, activity::SNG_CMP)
}

/// An 8-bit SNG operand buffer. With `shadow = true` it includes the 2-bit
/// progressive shadow stage (§III-D) — only ¼ the flip-flops a full-width
/// shadow would need.
pub fn sng_buffer(shadow: bool) -> BlockCost {
    let bits = if shadow { 8.0 + 2.0 } else { 8.0 };
    BlockCost::from_ge(bits * ge::DFF, activity::SNG_BUFFER)
}

/// A full-width (8-bit) shadow buffer — what shadow buffering would cost
/// *without* progressive generation; used to quantify the 4× saving.
pub fn sng_buffer_full_shadow() -> BlockCost {
    BlockCost::from_ge(16.0 * ge::DFF, activity::SNG_BUFFER)
}

/// One split-unipolar SC multiplier: two AND gates (positive and negative
/// halves).
pub fn sc_multiplier() -> BlockCost {
    BlockCost::from_ge(2.0 * ge::GATE2, activity::SC_MAC)
}

/// An OR-accumulation tree over `inputs` streams (per split half):
/// `inputs − 1` OR gates.
pub fn or_tree(inputs: usize) -> BlockCost {
    BlockCost::from_ge(
        (inputs.saturating_sub(1)) as f64 * ge::GATE2,
        activity::SC_MAC,
    )
}

/// An exact parallel counter over `inputs` one-bit streams: a full-adder
/// tree producing a `log2(inputs)+1`-bit sum each cycle. An `n`-input
/// counter reduces `n` bits to `⌈log2(n+1)⌉` with ≈ `n − 1` full-adder
/// equivalents (each FA absorbs one bit, counting the widening low-level
/// adders).
pub fn parallel_counter(inputs: usize) -> BlockCost {
    if inputs <= 1 {
        return BlockCost::from_ge(0.0, activity::CONVERTER);
    }
    let fas = (inputs - 1) as f64;
    BlockCost::from_ge(fas * ge::FULL_ADDER, activity::CONVERTER)
}

/// Full fixed-point conversion fabric: every product stream gets its own
/// accumulating counter slice before a wide adder tree ("directly
/// converting each multiplication result and adding them in the
/// fixed-point domain", §I) — the expensive FXP extreme of Fig. 5.
pub fn fxp_conversion_fabric(inputs: usize) -> BlockCost {
    // Per product: a 2-bit counter slice (FA + FF per bit) feeding the
    // shared accumulation tree.
    let per_input = 2.0 * (ge::FULL_ADDER + ge::DFF);
    BlockCost::from_ge(inputs as f64 * per_input, activity::CONVERTER)
        .plus(parallel_counter(inputs))
}

/// An approximate parallel counter (Kim et al. \[24\]): one AND/OR compressor
/// layer halves the inputs before the conversion fabric — cheaper than FXP
/// but, as Fig. 5 shows, still several times a PBW counter for large
/// kernels.
pub fn approximate_parallel_counter(inputs: usize) -> BlockCost {
    let compressor = BlockCost::from_ge(inputs as f64 * ge::GATE2, activity::CONVERTER);
    fxp_conversion_fabric(inputs.div_ceil(2)).plus(compressor)
}

/// An `bits`-bit accumulating register (adder + flip-flops).
pub fn accumulator(bits: u8) -> BlockCost {
    let n = f64::from(bits);
    BlockCost::from_ge(n * (ge::FULL_ADDER + ge::DFF), activity::CONVERTER)
}

/// One output-converter module: two counters (split-unipolar halves), a
/// subtractor, and the configurable pooling adder (Fig. 4).
///
/// `counter_bits` grows with partial binary accumulation's wider per-cycle
/// sums ("parallel counters in the average pooling fabric need to be
/// adjusted to handle wider inputs" — §III-B).
pub fn output_converter(counter_bits: u8) -> BlockCost {
    let sub = BlockCost::from_ge(
        f64::from(counter_bits) * ge::FULL_ADDER,
        activity::CONVERTER,
    );
    accumulator(counter_bits)
        .times(2.0)
        .plus(sub)
        .plus(accumulator(counter_bits)) // pooling adder
}

/// One near-memory fixed-point unit: an 8-bit multiply-accumulate used for
/// batch normalization and the 2-cycle read-add-write partial-sum path
/// (§III-C).
pub fn near_memory_mac() -> BlockCost {
    // 8×8 multiplier ≈ 160 GE, plus a 16-bit adder.
    BlockCost::from_ge(160.0 + 16.0 * ge::FULL_ADDER, activity::NEAR_MEM)
}

/// The pipeline stage between SC MAC and partial-binary accumulation
/// (§III-D): one flip-flop per cut signal.
pub fn pipeline_stage(signals: usize) -> BlockCost {
    BlockCost::from_ge(signals as f64 * ge::DFF, activity::SC_MAC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_area_grows_with_width() {
        assert!(lfsr(16).area_um2 > lfsr(8).area_um2);
        assert!(lfsr(8).area_um2 > lfsr(4).area_um2);
        // A 16-bit LFSR is roughly twice an 8-bit one.
        let ratio = lfsr(16).area_um2 / lfsr(8).area_um2;
        assert!(ratio > 1.6 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn progressive_shadow_is_quarter_of_full_shadow() {
        let prog = sng_buffer(true).area_um2 - sng_buffer(false).area_um2;
        let full = sng_buffer_full_shadow().area_um2 - sng_buffer(false).area_um2;
        assert!(
            (full / prog - 4.0).abs() < 1e-9,
            "4x smaller shadow (§III-D)"
        );
    }

    #[test]
    fn counters_cost_more_than_or_trees() {
        for inputs in [9usize, 25, 128, 800] {
            assert!(
                parallel_counter(inputs).area_um2 > or_tree(inputs).area_um2 * 2.0,
                "inputs {inputs}"
            );
        }
    }

    #[test]
    fn apc_is_cheaper_than_fxp_but_more_than_or() {
        for inputs in [32usize, 128, 800] {
            let apc = approximate_parallel_counter(inputs).area_um2;
            let fxp = fxp_conversion_fabric(inputs).area_um2;
            let or = or_tree(inputs).area_um2;
            assert!(apc < fxp, "inputs {inputs}: apc {apc} < fxp {fxp}");
            assert!(apc > or, "inputs {inputs}: apc {apc} > or {or}");
        }
    }

    #[test]
    fn fxp_fabric_dwarfs_popcount_counters() {
        // Per-product conversion is the expensive extreme of Fig. 5.
        for inputs in [32usize, 800] {
            assert!(
                fxp_conversion_fabric(inputs).area_um2 > 3.0 * parallel_counter(inputs).area_um2
            );
        }
    }

    #[test]
    fn degenerate_counters() {
        assert_eq!(parallel_counter(0).area_um2, 0.0);
        assert_eq!(parallel_counter(1).area_um2, 0.0);
        assert_eq!(or_tree(1).area_um2, 0.0);
    }

    #[test]
    fn output_converter_grows_with_counter_width() {
        assert!(output_converter(20).area_um2 > output_converter(16).area_um2);
    }

    #[test]
    fn pipeline_stage_is_small_relative_to_mac_array() {
        // <1% accelerator-level overhead claim: per-row pipeline FFs are
        // tiny next to the row's MAC gates.
        let row_macs = sc_multiplier().times(800.0).plus(or_tree(800).times(2.0));
        let pipe = pipeline_stage(2 * 6); // two split halves × counter width
        assert!(pipe.area_um2 / row_macs.area_um2 < 0.05);
    }

    #[test]
    fn activity_factors_are_fractions() {
        for a in [
            activity::LFSR,
            activity::SNG_CMP,
            activity::SNG_BUFFER,
            activity::SC_MAC,
            activity::CONVERTER,
            activity::NEAR_MEM,
        ] {
            assert!((0.0..=1.0).contains(&a));
        }
    }
}
