//! # geo-arch — the GEO accelerator model
//!
//! Architecture-level reproduction of the GEO accelerator (paper §III–IV):
//! gate-level area/energy models of every block in Fig. 4, the MAC-unit
//! area sweep of Fig. 5, SRAM/HBM2 memory models, the GEO ISA and a
//! compiler from network descriptors to programs, a performance/energy
//! simulator with ping-pong overlap, progressive shadow buffering,
//! near-memory computation and DVFS (Fig. 6, Tables II & III), dataflow
//! access accounting (§III-C), and the Eyeriss / ACOUSTIC / reported
//! baselines.
//!
//! # Examples
//!
//! Simulate CIFAR-10 CNN-4 inference on the GEO-ULP design point:
//!
//! ```
//! use geo_arch::{AccelConfig, NetworkDesc};
//!
//! let report = geo_arch::perfsim::run(
//!     &AccelConfig::ulp_geo(32, 64),
//!     &NetworkDesc::cnn4_cifar(),
//! );
//! assert!(report.fps > 1000.0);
//! assert!(report.area_mm2 < 1.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod accel;
pub mod artifact;
pub mod asm;
pub mod baselines;
pub mod compiler;
pub mod dataflow;
pub mod encoding;
pub mod isa;
pub mod mac_area;
pub mod memory;
pub mod modules;
mod network;
pub mod perfsim;
pub mod progressive_timing;
pub mod report;
pub mod tech;

pub use geo_sc::telemetry;

pub use accel::{AccelConfig, Category, Optimizations};
pub use artifact::{ArtifactError, ProgramArtifact};
pub use asm::{assemble, disassemble, AsmError, AsmErrorKind};
pub use isa::{Instr, Program, Tile};
pub use network::{LayerShape, NetworkDesc};
pub use perfsim::SimReport;
