//! The GEO instruction set.
//!
//! GEO is fully programmable with its own ISA and instruction memory
//! (§III-A); the enhancements reuse the ACOUSTIC ISA with minor
//! modifications, most notably the 2-cycle read-add-write vector
//! instruction for near-memory partial-sum accumulation (§III-C) and
//! near-memory batch normalization.

use serde::{Deserialize, Serialize};

/// Operand addressing of one `GEN` pass: which slice of a layer's output
/// volume the pass produces, and which SNG bank drives it.
///
/// A layer's output volume is `cout × outputs` (output channels × flattened
/// spatial positions). The compiler walks it in
/// `cout_groups × col_passes × pos_groups` order; each `GEN` covers the
/// half-open channel range `cout_begin..cout_end` and position range
/// `pos_begin..pos_end` for kernel column pass `col_pass` (of
/// `col_passes`). Only the final column pass of a tile completes its
/// outputs — earlier passes leave partial sums for near-memory
/// accumulation (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// Layer index in the compiled network.
    pub layer: u32,
    /// Row-SNG bank (= output-channel group) driving this pass.
    pub sng_group: u32,
    /// First output channel covered (inclusive).
    pub cout_begin: u32,
    /// One past the last output channel covered.
    pub cout_end: u32,
    /// First flattened output position covered (inclusive).
    pub pos_begin: u32,
    /// One past the last flattened output position covered.
    pub pos_end: u32,
    /// Kernel column pass this `GEN` computes (0-based).
    pub col_pass: u32,
    /// Total column passes the layer's kernel volume needs.
    pub col_passes: u32,
}

impl Tile {
    /// Output channels covered.
    pub fn cout_span(&self) -> u64 {
        u64::from(self.cout_end.saturating_sub(self.cout_begin))
    }

    /// Output positions covered.
    pub fn pos_span(&self) -> u64 {
        u64::from(self.pos_end.saturating_sub(self.pos_begin))
    }

    /// Output elements this pass contributes to (`cout_span × pos_span`).
    pub fn area(&self) -> u64 {
        self.cout_span() * self.pos_span()
    }

    /// Whether this is the last column pass, i.e. the pass that completes
    /// the tile's outputs.
    pub fn completes_outputs(&self) -> bool {
        self.col_pass + 1 == self.col_passes
    }
}

/// One GEO instruction, parameterized by its data volume and — for compute
/// passes — the output tile it addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Load weights from external memory into a weight-memory bank
    /// (ping-pong: overlaps with compute).
    LoadWeightsExternal {
        /// Bytes moved.
        bytes: u64,
    },
    /// Load weight operands from weight memory into the weight SNG buffers.
    LoadWeights {
        /// Bytes moved.
        bytes: u64,
    },
    /// Load activation operands from activation memory into the activation
    /// SNG buffers.
    LoadActivations {
        /// Bytes moved.
        bytes: u64,
    },
    /// One stream-generation + MAC compute pass over an output tile.
    Generate {
        /// Stream cycles (already ×2 for split-unipolar).
        cycles: u64,
        /// MAC units active this pass (for energy accounting).
        active_macs: u64,
        /// Output slice this pass addresses.
        tile: Tile,
    },
    /// Near-memory read-add-write vector accumulate: 2 cycles per element
    /// group (§III-C).
    NearMemAccumulate {
        /// Partial-sum elements accumulated.
        elements: u64,
        /// Layer whose partial sums are accumulated.
        layer: u32,
    },
    /// Near-memory batch normalization over output elements.
    NearMemBatchNorm {
        /// Elements normalized.
        elements: u64,
        /// Layer being normalized.
        layer: u32,
    },
    /// Write outputs (post pooling/ReLU) back to activation memory.
    WriteActivations {
        /// Bytes written.
        bytes: u64,
    },
    /// Synchronization barrier between layers.
    Sync,
}

impl Instr {
    /// Short mnemonic, for program listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::LoadWeightsExternal { .. } => "LDW.EXT",
            Instr::LoadWeights { .. } => "LDW",
            Instr::LoadActivations { .. } => "LDA",
            Instr::Generate { .. } => "GEN",
            Instr::NearMemAccumulate { .. } => "NMACC",
            Instr::NearMemBatchNorm { .. } => "NMBN",
            Instr::WriteActivations { .. } => "STA",
            Instr::Sync => "SYNC",
        }
    }
}

/// A compiled program: instruction stream plus per-layer markers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Program {
    /// Network name.
    pub name: String,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// Indices into `instrs` where each layer starts.
    pub layer_starts: Vec<usize>,
}

impl Program {
    /// An empty program.
    pub fn new(name: &str) -> Self {
        Program {
            name: name.to_string(),
            instrs: Vec::new(),
            layer_starts: Vec::new(),
        }
    }

    /// Marks the start of a new layer.
    pub fn begin_layer(&mut self) {
        self.layer_starts.push(self.instrs.len());
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// Number of compute (GEN) passes.
    pub fn generate_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Generate { .. }))
            .count()
    }

    /// Number of layers marked via [`Program::begin_layer`].
    pub fn layer_count(&self) -> usize {
        self.layer_starts.len()
    }

    /// The instruction slice of layer `li`, or `None` if `li` is out of
    /// range.
    pub fn layer_instrs(&self, li: usize) -> Option<&[Instr]> {
        let start = *self.layer_starts.get(li)?;
        let end = self
            .layer_starts
            .get(li + 1)
            .copied()
            .unwrap_or(self.instrs.len());
        self.instrs.get(start..end)
    }

    /// All `GEN` tiles in stream order.
    pub fn tiles(&self) -> impl Iterator<Item = &Tile> {
        self.instrs.iter().filter_map(|i| match i {
            Instr::Generate { tile, .. } => Some(tile),
            _ => None,
        })
    }

    /// Total bytes moved by each memory class:
    /// `(external, weight, activation, writeback)`.
    pub fn traffic(&self) -> (u64, u64, u64, u64) {
        let mut ext = 0;
        let mut wgt = 0;
        let mut act = 0;
        let mut wb = 0;
        for i in &self.instrs {
            match i {
                Instr::LoadWeightsExternal { bytes } => ext += bytes,
                Instr::LoadWeights { bytes } => wgt += bytes,
                Instr::LoadActivations { bytes } => act += bytes,
                Instr::WriteActivations { bytes } => wb += bytes,
                _ => {}
            }
        }
        (ext, wgt, act, wb)
    }

    /// Human-readable listing (one line per instruction).
    pub fn listing(&self) -> String {
        self.instrs
            .iter()
            .map(|i| format!("{:<8} {:?}", i.mnemonic(), i))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit tile for tests that only care about the stream fields.
    fn tile() -> Tile {
        Tile {
            layer: 0,
            sng_group: 0,
            cout_begin: 0,
            cout_end: 1,
            pos_begin: 0,
            pos_end: 1,
            col_pass: 0,
            col_passes: 1,
        }
    }

    #[test]
    fn program_accumulates_instructions_and_layers() {
        let mut p = Program::new("test");
        p.begin_layer();
        p.push(Instr::LoadWeights { bytes: 100 });
        p.push(Instr::LoadActivations { bytes: 50 });
        p.push(Instr::Generate {
            cycles: 64,
            active_macs: 1000,
            tile: tile(),
        });
        p.begin_layer();
        p.push(Instr::WriteActivations { bytes: 25 });
        p.push(Instr::Sync);
        assert_eq!(p.instrs.len(), 5);
        assert_eq!(p.layer_starts, vec![0, 3]);
        assert_eq!(p.generate_count(), 1);
        assert_eq!(p.traffic(), (0, 100, 50, 25));
    }

    #[test]
    fn layer_instrs_follow_begin_layer_boundaries() {
        let mut p = Program::new("slices");
        p.begin_layer();
        p.push(Instr::LoadWeights { bytes: 1 });
        p.push(Instr::Sync);
        p.begin_layer();
        p.push(Instr::WriteActivations { bytes: 1 });
        assert_eq!(p.layer_count(), 2);
        assert_eq!(p.layer_instrs(0).unwrap().len(), 2);
        assert_eq!(p.layer_instrs(1).unwrap().len(), 1);
        assert!(p.layer_instrs(2).is_none());
        let total: usize = (0..p.layer_count())
            .map(|li| p.layer_instrs(li).unwrap().len())
            .sum();
        assert_eq!(total, p.instrs.len());
    }

    #[test]
    fn tile_geometry_helpers() {
        let t = Tile {
            layer: 2,
            sng_group: 1,
            cout_begin: 32,
            cout_end: 64,
            pos_begin: 128,
            pos_end: 256,
            col_pass: 1,
            col_passes: 2,
        };
        assert_eq!(t.cout_span(), 32);
        assert_eq!(t.pos_span(), 128);
        assert_eq!(t.area(), 32 * 128);
        assert!(t.completes_outputs());
        let first = Tile { col_pass: 0, ..t };
        assert!(!first.completes_outputs());
    }

    #[test]
    fn mnemonics_are_unique() {
        let all = [
            Instr::LoadWeightsExternal { bytes: 1 },
            Instr::LoadWeights { bytes: 1 },
            Instr::LoadActivations { bytes: 1 },
            Instr::Generate {
                cycles: 1,
                active_macs: 1,
                tile: tile(),
            },
            Instr::NearMemAccumulate {
                elements: 1,
                layer: 0,
            },
            Instr::NearMemBatchNorm {
                elements: 1,
                layer: 0,
            },
            Instr::WriteActivations { bytes: 1 },
            Instr::Sync,
        ];
        let set: std::collections::HashSet<&str> = all.iter().map(|i| i.mnemonic()).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn listing_mentions_every_instruction() {
        let mut p = Program::new("l");
        p.push(Instr::Generate {
            cycles: 8,
            active_macs: 2,
            tile: tile(),
        });
        p.push(Instr::Sync);
        let text = p.listing();
        assert!(text.contains("GEN"));
        assert!(text.contains("SYNC"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn tiles_iterates_generates_in_stream_order() {
        let mut p = Program::new("t");
        p.push(Instr::Sync);
        p.push(Instr::Generate {
            cycles: 8,
            active_macs: 2,
            tile: tile(),
        });
        p.push(Instr::Generate {
            cycles: 8,
            active_macs: 2,
            tile: Tile {
                pos_begin: 1,
                pos_end: 2,
                ..tile()
            },
        });
        let tiles: Vec<_> = p.tiles().collect();
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].pos_begin, 0);
        assert_eq!(tiles[1].pos_begin, 1);
    }
}
