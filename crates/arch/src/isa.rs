//! The GEO instruction set.
//!
//! GEO is fully programmable with its own ISA and instruction memory
//! (§III-A); the enhancements reuse the ACOUSTIC ISA with minor
//! modifications, most notably the 2-cycle read-add-write vector
//! instruction for near-memory partial-sum accumulation (§III-C) and
//! near-memory batch normalization.

use serde::{Deserialize, Serialize};

/// One GEO instruction, parameterized by its data volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Load weights from external memory into a weight-memory bank
    /// (ping-pong: overlaps with compute).
    LoadWeightsExternal {
        /// Bytes moved.
        bytes: u64,
    },
    /// Load weight operands from weight memory into the weight SNG buffers.
    LoadWeights {
        /// Bytes moved.
        bytes: u64,
    },
    /// Load activation operands from activation memory into the activation
    /// SNG buffers.
    LoadActivations {
        /// Bytes moved.
        bytes: u64,
    },
    /// One stream-generation + MAC compute pass.
    Generate {
        /// Stream cycles (already ×2 for split-unipolar).
        cycles: u64,
        /// MAC units active this pass (for energy accounting).
        active_macs: u64,
    },
    /// Near-memory read-add-write vector accumulate: 2 cycles per element
    /// group (§III-C).
    NearMemAccumulate {
        /// Partial-sum elements accumulated.
        elements: u64,
    },
    /// Near-memory batch normalization over output elements.
    NearMemBatchNorm {
        /// Elements normalized.
        elements: u64,
    },
    /// Write outputs (post pooling/ReLU) back to activation memory.
    WriteActivations {
        /// Bytes written.
        bytes: u64,
    },
    /// Synchronization barrier between layers.
    Sync,
}

impl Instr {
    /// Short mnemonic, for program listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::LoadWeightsExternal { .. } => "LDW.EXT",
            Instr::LoadWeights { .. } => "LDW",
            Instr::LoadActivations { .. } => "LDA",
            Instr::Generate { .. } => "GEN",
            Instr::NearMemAccumulate { .. } => "NMACC",
            Instr::NearMemBatchNorm { .. } => "NMBN",
            Instr::WriteActivations { .. } => "STA",
            Instr::Sync => "SYNC",
        }
    }
}

/// A compiled program: instruction stream plus per-layer markers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Program {
    /// Network name.
    pub name: String,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// Indices into `instrs` where each layer starts.
    pub layer_starts: Vec<usize>,
}

impl Program {
    /// An empty program.
    pub fn new(name: &str) -> Self {
        Program {
            name: name.to_string(),
            instrs: Vec::new(),
            layer_starts: Vec::new(),
        }
    }

    /// Marks the start of a new layer.
    pub fn begin_layer(&mut self) {
        self.layer_starts.push(self.instrs.len());
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// Number of compute (GEN) passes.
    pub fn generate_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Generate { .. }))
            .count()
    }

    /// Total bytes moved by each memory class:
    /// `(external, weight, activation, writeback)`.
    pub fn traffic(&self) -> (u64, u64, u64, u64) {
        let mut ext = 0;
        let mut wgt = 0;
        let mut act = 0;
        let mut wb = 0;
        for i in &self.instrs {
            match i {
                Instr::LoadWeightsExternal { bytes } => ext += bytes,
                Instr::LoadWeights { bytes } => wgt += bytes,
                Instr::LoadActivations { bytes } => act += bytes,
                Instr::WriteActivations { bytes } => wb += bytes,
                _ => {}
            }
        }
        (ext, wgt, act, wb)
    }

    /// Human-readable listing (one line per instruction).
    pub fn listing(&self) -> String {
        self.instrs
            .iter()
            .map(|i| format!("{:<8} {:?}", i.mnemonic(), i))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_accumulates_instructions_and_layers() {
        let mut p = Program::new("test");
        p.begin_layer();
        p.push(Instr::LoadWeights { bytes: 100 });
        p.push(Instr::LoadActivations { bytes: 50 });
        p.push(Instr::Generate {
            cycles: 64,
            active_macs: 1000,
        });
        p.begin_layer();
        p.push(Instr::WriteActivations { bytes: 25 });
        p.push(Instr::Sync);
        assert_eq!(p.instrs.len(), 5);
        assert_eq!(p.layer_starts, vec![0, 3]);
        assert_eq!(p.generate_count(), 1);
        assert_eq!(p.traffic(), (0, 100, 50, 25));
    }

    #[test]
    fn mnemonics_are_unique() {
        let all = [
            Instr::LoadWeightsExternal { bytes: 1 },
            Instr::LoadWeights { bytes: 1 },
            Instr::LoadActivations { bytes: 1 },
            Instr::Generate {
                cycles: 1,
                active_macs: 1,
            },
            Instr::NearMemAccumulate { elements: 1 },
            Instr::NearMemBatchNorm { elements: 1 },
            Instr::WriteActivations { bytes: 1 },
            Instr::Sync,
        ];
        let set: std::collections::HashSet<&str> = all.iter().map(|i| i.mnemonic()).collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn listing_mentions_every_instruction() {
        let mut p = Program::new("l");
        p.push(Instr::Generate {
            cycles: 8,
            active_macs: 2,
        });
        p.push(Instr::Sync);
        let text = p.listing();
        assert!(text.contains("GEN"));
        assert!(text.contains("SYNC"));
        assert_eq!(text.lines().count(), 2);
    }
}
