//! Reported comparison points: accelerators the paper compares against
//! using their published numbers (scaled to 28 nm where the paper did so).
//!
//! SM-SC is not fully programmable, SCOPE is an in-DRAM design with a
//! massive footprint, and Conv-RAM / MDL-CNN are mixed-signal macros — none
//! can be meaningfully re-simulated, so, exactly like the paper, we carry
//! their reported numbers as typed constants (Tables I–III).

use serde::{Deserialize, Serialize};

/// A published accelerator datapoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportedPoint {
    /// Accelerator name.
    pub name: &'static str,
    /// Citation key in the paper.
    pub citation: &'static str,
    /// Supply voltage in volts, if reported.
    pub voltage: Option<f64>,
    /// Area in mm², if reported.
    pub area_mm2: Option<f64>,
    /// Power in milliwatts, if reported.
    pub power_mw: Option<f64>,
    /// Clock in MHz, if reported.
    pub clock_mhz: Option<f64>,
    /// Peak throughput in GOPS, if reported.
    pub peak_gops: Option<f64>,
    /// Peak efficiency in TOPS/W, if reported.
    pub peak_tops_w: Option<f64>,
    /// CIFAR-10 accuracy (CNN-class model), if reported.
    pub cifar10_accuracy: Option<f64>,
    /// MNIST accuracy, if reported.
    pub mnist_accuracy: Option<f64>,
    /// LeNet-class frames per second, if reported.
    pub lenet_fps: Option<f64>,
    /// LeNet-class frames per joule, if reported.
    pub lenet_fpj: Option<f64>,
}

/// SM-SC (Sign-Magnitude SC, Zhakatayev et al., DAC 2018) — Table I & III.
pub fn sm_sc() -> ReportedPoint {
    ReportedPoint {
        name: "SM-SC",
        citation: "[1]",
        voltage: Some(0.9),
        area_mm2: None,
        power_mw: None,
        clock_mhz: Some(1536.0),
        peak_gops: Some(1700.0),
        peak_tops_w: Some(0.92),
        cifar10_accuracy: Some(0.80), // at 128-bit streams
        mnist_accuracy: None,
        lenet_fps: None,
        lenet_fpj: None,
    }
}

/// SCOPE (Li et al., MICRO 2018) — in-DRAM SC engine, Table I & III.
pub fn scope() -> ReportedPoint {
    ReportedPoint {
        name: "SCOPE",
        citation: "[2]",
        voltage: None,
        area_mm2: Some(273.0),
        power_mw: None,
        clock_mhz: Some(200.0),
        peak_gops: Some(7100.0),
        peak_tops_w: None,
        cifar10_accuracy: None,
        mnist_accuracy: Some(0.993), // LeNet-5 at 128-bit streams
        lenet_fps: None,
        lenet_fpj: None,
    }
}

/// Conv-RAM (Biswas & Chandrakasan, ISSCC 2018) — in-SRAM mixed-signal,
/// Table I & II.
pub fn conv_ram() -> ReportedPoint {
    ReportedPoint {
        name: "Conv-RAM",
        citation: "[32]",
        voltage: Some(0.9),
        area_mm2: Some(0.02),
        power_mw: Some(0.016),
        clock_mhz: Some(364.0),
        peak_gops: Some(10.7),
        peak_tops_w: Some(44.2),
        cifar10_accuracy: None,
        mnist_accuracy: Some(0.96), // 7-bit act / 1-bit weight
        lenet_fps: Some(15_000.0),
        lenet_fpj: Some(117e6),
    }
}

/// MDL-CNN (Sayal et al., ISSCC 2019) — time-domain mixed-signal,
/// Table I & II.
pub fn mdl_cnn() -> ReportedPoint {
    ReportedPoint {
        name: "MDL-CNN",
        citation: "[33]",
        voltage: Some(0.537),
        area_mm2: Some(0.06),
        power_mw: Some(0.02),
        clock_mhz: Some(25.0),
        peak_gops: Some(0.365),
        peak_tops_w: Some(18.2),
        cifar10_accuracy: None,
        mnist_accuracy: Some(0.984), // 4-bit act / 1-bit weight
        lenet_fps: Some(1_000.0),
        lenet_fpj: Some(50e6),
    }
}

/// All reported points.
pub fn all() -> Vec<ReportedPoint> {
    vec![sm_sc(), scope(), conv_ram(), mdl_cnn()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_has_a_citation_and_name() {
        for p in all() {
            assert!(!p.name.is_empty());
            assert!(p.citation.starts_with('['));
        }
    }

    #[test]
    fn scope_is_huge_conv_ram_is_tiny() {
        assert!(scope().area_mm2.unwrap() > 100.0);
        assert!(conv_ram().area_mm2.unwrap() < 0.1);
    }

    #[test]
    fn mixed_signal_points_report_mnist_accuracy() {
        assert!(conv_ram().mnist_accuracy.unwrap() < 0.99);
        assert!(mdl_cnn().mnist_accuracy.unwrap() < 0.99);
        // Paper: GEO's 16-32 LeNet accuracy (98.9%) beats both.
        assert!(0.989 > conv_ram().mnist_accuracy.unwrap());
        assert!(0.989 > mdl_cnn().mnist_accuracy.unwrap());
    }

    #[test]
    fn table_values_match_paper() {
        assert_eq!(sm_sc().clock_mhz, Some(1536.0));
        assert_eq!(scope().peak_gops, Some(7100.0));
        assert_eq!(conv_ram().peak_tops_w, Some(44.2));
        assert_eq!(mdl_cnn().voltage, Some(0.537));
    }
}
