//! Comparison baselines: the Eyeriss-style fixed-point accelerator
//! (simulated analytically at iso-area) and the reported SC/mixed-signal
//! datapoints the paper cites.

mod eyeriss;
mod reported;

pub use eyeriss::{mac_energy_pj, pe_area_um2, EyerissConfig};
pub use reported::{all as reported_points, conv_ram, mdl_cnn, scope, sm_sc, ReportedPoint};
