//! Eyeriss-style fixed-point baseline (Chen et al., ISSCC 2016), scaled to
//! 4-/8-bit precision and 28 nm, sized for iso-area comparison with GEO —
//! the paper's fixed-point comparison points in Tables I–III.
//!
//! Analytic row-stationary model standing in for the TETRIS simulator the
//! paper uses (see DESIGN.md §3): throughput from PE count × utilization,
//! energy from per-MAC cost plus memory-hierarchy traffic.

use crate::memory::{Hbm2, Sram};
use crate::network::NetworkDesc;
use crate::perfsim::SimReport;
use crate::tech::OperatingPoint;
use serde::{Deserialize, Serialize};

/// An Eyeriss-like fixed-point accelerator design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EyerissConfig {
    /// Configuration name.
    pub name: String,
    /// Number of processing elements.
    pub pes: usize,
    /// Datapath precision in bits (4 or 8).
    pub bits: u8,
    /// On-chip global buffer.
    pub buffer: Sram,
    /// External memory for the scale-out point.
    pub external: Option<Hbm2>,
    /// Operating point (nominal 0.9 V / 400 MHz).
    pub op: OperatingPoint,
    /// Average PE-array utilization (row-stationary mapping efficiency).
    pub utilization: f64,
}

/// Effective per-MAC energy at 28 nm, picojoules, for a `bits`-wide
/// fixed-point datapath. Includes the PE-local register file and NoC
/// energy that dominate Eyeriss-style designs (the MAC itself is roughly a
/// third of this, per the Eyeriss energy breakdowns); multiplier energy
/// scales roughly quadratically with width.
pub fn mac_energy_pj(bits: u8) -> f64 {
    match bits {
        4 => 0.15,
        8 => 0.50,
        16 => 1.90,
        b => 0.50 * (f64::from(b) / 8.0).powi(2),
    }
}

/// PE area in µm² (MAC + local register file + control).
pub fn pe_area_um2(bits: u8) -> f64 {
    match bits {
        4 => 1_600.0,
        8 => 3_400.0,
        b => 3_400.0 * f64::from(b) / 8.0,
    }
}

impl EyerissConfig {
    /// The 4-bit ULP comparison point: ≈0.59 mm², iso-area with GEO-ULP
    /// (Table II: 80 peak GOPS → 100 PEs at 400 MHz).
    pub fn ulp_4bit() -> Self {
        EyerissConfig {
            name: "Eyeriss-4bit".into(),
            pes: 100,
            bits: 4,
            buffer: Sram::new(108 * 1024, 64),
            external: None,
            op: OperatingPoint::nominal(),
            utilization: 0.75,
        }
    }

    /// The 8-bit LP comparison point: ≈9.3 mm² (Table III: 204 peak GOPS
    /// → 255 PEs at 400 MHz).
    pub fn lp_8bit() -> Self {
        EyerissConfig {
            name: "Eyeriss-8bit".into(),
            pes: 255,
            bits: 8,
            buffer: Sram::new(512 * 1024, 128),
            external: Some(Hbm2::default()),
            op: OperatingPoint::nominal(),
            utilization: 0.75,
        }
    }

    /// Total area in mm² (PE array + buffer + ~25% interconnect/control).
    pub fn area_mm2(&self) -> f64 {
        let logic = self.pes as f64 * pe_area_um2(self.bits);
        (logic + self.buffer.area_um2()) * 1.25 * 1e-6
    }

    /// Peak throughput in GOPS (2 ops per MAC per cycle).
    pub fn peak_gops(&self) -> f64 {
        self.pes as f64 * self.op.freq_mhz * 1e6 * 2.0 / 1e9
    }

    /// Simulates one inference of `net`, returning the same report type as
    /// the GEO simulator for direct table comparison.
    pub fn simulate(&self, net: &NetworkDesc) -> SimReport {
        let macs = net.total_macs() as f64;
        let cycles = macs / (self.pes as f64 * self.utilization);
        let seconds = cycles * self.op.period_ns() * 1e-9;

        // Row-stationary reuse: each weight/activation moves through the
        // buffer a small constant number of times; psum traffic stays in
        // the PE-local register files.
        let bytes_per_elem = f64::from(self.bits) / 8.0;
        let buffer_traffic = (net.total_weights() as f64 * 1.2
            + net
                .layers
                .iter()
                .map(|l| l.input_activations() as f64 * 2.0 + l.outputs() as f64)
                .sum::<f64>())
            * bytes_per_elem;
        let dyn_pj = macs * mac_energy_pj(self.bits) + buffer_traffic * self.buffer.pj_per_byte();
        let mut external_pj = 0.0;
        if let Some(hbm) = &self.external {
            // External traffic: weights once, plus activation/psum spills
            // from inter-layer tiling when the model exceeds the global
            // buffer. The factor is calibrated against the TETRIS-based
            // numbers the paper reports for its Eyeriss LP point.
            const DRAM_TRAFFIC_FACTOR: f64 = 3.0;
            external_pj = hbm.energy_pj(
                (net.total_weights() as f64 * bytes_per_elem * DRAM_TRAFFIC_FACTOR) as u64,
            );
        }
        // Leakage: logic + buffer.
        let leak_mw = (self.pes as f64 * pe_area_um2(self.bits) * 0.3 * 1e-6
            + self.buffer.leak_nw() * 1e-6)
            * self.op.leakage_scale();
        let leakage_pj = leak_mw * 1e9 * seconds;
        let energy_j = (dyn_pj + leakage_pj + external_pj) * 1e-12;
        SimReport {
            config: self.name.clone(),
            network: net.name.clone(),
            cycles: cycles as u64,
            seconds,
            energy_j,
            breakdown_pj: Vec::new(),
            leakage_pj,
            external_pj,
            fps: 1.0 / seconds,
            frames_per_joule: 1.0 / energy_j,
            power_mw: energy_j / seconds * 1e3,
            area_mm2: self.area_mm2(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_point_is_iso_area_with_geo_ulp() {
        let e = EyerissConfig::ulp_4bit();
        let a = e.area_mm2();
        assert!(a > 0.3 && a < 0.9, "4-bit Eyeriss area {a} mm²");
        assert!((e.peak_gops() - 80.0).abs() < 1.0, "Table II: 80 GOPS");
    }

    #[test]
    fn lp_point_matches_table_iii() {
        let e = EyerissConfig::lp_8bit();
        assert!((e.peak_gops() - 204.0).abs() < 1.0, "Table III: 204 GOPS");
        let a = e.area_mm2();
        assert!(a > 0.8 && a < 12.0, "8-bit Eyeriss area {a} mm²");
    }

    #[test]
    fn mac_energy_grows_with_precision() {
        assert!(mac_energy_pj(4) < mac_energy_pj(8));
        assert!(mac_energy_pj(8) < mac_energy_pj(16));
        assert!(mac_energy_pj(12) > mac_energy_pj(8));
    }

    #[test]
    fn simulation_produces_plausible_numbers() {
        let r = EyerissConfig::ulp_4bit().simulate(&NetworkDesc::cnn4_cifar());
        // Table II: Eyeriss-4bit ≈ 5.2k CIFAR frames/s.
        assert!(r.fps > 500.0 && r.fps < 50_000.0, "fps {}", r.fps);
        assert!(
            r.power_mw > 1.0 && r.power_mw < 500.0,
            "power {}",
            r.power_mw
        );
    }

    #[test]
    fn lenet_is_much_faster_than_cnn4() {
        let e = EyerissConfig::ulp_4bit();
        let cnn = e.simulate(&NetworkDesc::cnn4_cifar());
        let lenet = e.simulate(&NetworkDesc::lenet5_mnist());
        assert!(lenet.fps > 5.0 * cnn.fps);
    }

    #[test]
    fn lp_vgg_pays_external_energy() {
        let r = EyerissConfig::lp_8bit().simulate(&NetworkDesc::vgg16_scaled_cifar());
        assert!(r.external_pj > 0.0);
        assert!(r.fps > 50.0, "VGG fps {}", r.fps);
    }
}
