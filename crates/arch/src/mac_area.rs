//! MAC-unit area model across accumulation modes — regenerates Fig. 5.
//!
//! One SC MAC unit multiplies a `(Cin, H, W)` kernel against a window of
//! activations and accumulates the products. The accumulation mode decides
//! where the OR tree stops and counters begin:
//!
//! * **SC** — AND gates + full OR tree (both split halves).
//! * **PBW** — OR trees over `(Cin, H)` per W column + a W-input counter.
//! * **PBHW** — OR trees over `Cin` per (H, W) position + an `H·W`-input
//!   counter.
//! * **FXP** — every product counted: a `V`-input exact counter.
//! * **APC** — a `V`-input approximate counter.
//!
//! The paper's shape: PBW costs up to 1.4× for small kernels, shrinking to
//! ~4% for large ones; PBHW up to 4.5× shrinking to ~9%; FXP >5× for most
//! kernels; APC >3× PBW for large kernels.

use crate::modules::{
    approximate_parallel_counter, fxp_conversion_fabric, or_tree, parallel_counter, sc_multiplier,
};
use crate::tech::BlockCost;
use geo_sc::Accumulation;
use geo_sc::KernelDims;
use serde::{Deserialize, Serialize};

/// Kernel sizes the paper sweeps in Fig. 5.
pub fn fig5_kernel_sizes() -> Vec<KernelDims> {
    [
        (1usize, 3usize, 3usize),
        (4, 3, 3),
        (16, 3, 3),
        (64, 3, 3),
        (256, 3, 3),
        (1, 5, 5),
        (4, 5, 5),
        (16, 5, 5),
        (64, 5, 5),
        (256, 5, 5),
    ]
    .iter()
    .map(|&(cin, h, w)| KernelDims::new(1, cin, h, w))
    .collect()
}

/// Area/energy/leakage of one SC MAC unit for `dims` under `mode`.
///
/// Counts both split-unipolar halves. The `Cout` field of `dims` is
/// ignored (one unit per output channel).
pub fn sc_mac_unit(dims: KernelDims, mode: Accumulation) -> BlockCost {
    let v = dims.kernel_volume();
    // AND multipliers: one sc_multiplier per kernel position (covers both
    // halves).
    let multipliers = sc_multiplier().times(v as f64);
    let both_halves = 2.0;
    match mode {
        Accumulation::Or => multipliers.plus(or_tree(v).times(both_halves)),
        Accumulation::Pbw => {
            let group = dims.cin * dims.h; // OR over (Cin, H) per W column
            multipliers
                .plus(or_tree(group).times(both_halves * dims.w as f64))
                .plus(parallel_counter(dims.w).times(both_halves))
        }
        Accumulation::Pbhw => {
            let group = dims.cin; // OR over Cin per (H, W) position
            multipliers
                .plus(or_tree(group).times(both_halves * (dims.h * dims.w) as f64))
                .plus(parallel_counter(dims.h * dims.w).times(both_halves))
        }
        Accumulation::Fxp => multipliers.plus(fxp_conversion_fabric(v).times(both_halves)),
        Accumulation::Apc => multipliers.plus(approximate_parallel_counter(v).times(both_halves)),
    }
}

/// One Fig. 5 row: kernel size and per-mode area, normalized to SC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Kernel dimensions.
    pub dims: (usize, usize, usize),
    /// Absolute SC-mode area in µm².
    pub sc_area_um2: f64,
    /// Area of each mode relative to SC: `[SC, PBW, PBHW, FXP, APC]`.
    pub relative: [f64; 5],
}

/// Computes the full Fig. 5 sweep.
pub fn fig5_table() -> Vec<Fig5Row> {
    fig5_kernel_sizes()
        .into_iter()
        .map(|dims| {
            let sc = sc_mac_unit(dims, Accumulation::Or).area_um2;
            let rel = |m: Accumulation| sc_mac_unit(dims, m).area_um2 / sc;
            Fig5Row {
                dims: (dims.cin, dims.h, dims.w),
                sc_area_um2: sc,
                relative: [
                    1.0,
                    rel(Accumulation::Pbw),
                    rel(Accumulation::Pbhw),
                    rel(Accumulation::Fxp),
                    rel(Accumulation::Apc),
                ],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(dims: KernelDims, mode: Accumulation) -> f64 {
        sc_mac_unit(dims, mode).area_um2 / sc_mac_unit(dims, Accumulation::Or).area_um2
    }

    #[test]
    fn ordering_matches_fig5() {
        for dims in fig5_kernel_sizes() {
            let pbw = rel(dims, Accumulation::Pbw);
            let pbhw = rel(dims, Accumulation::Pbhw);
            let fxp = rel(dims, Accumulation::Fxp);
            assert!(pbw >= 1.0 && pbw <= pbhw, "{dims:?}: pbw {pbw} pbhw {pbhw}");
            assert!(pbhw <= fxp, "{dims:?}: pbhw {pbhw} fxp {fxp}");
        }
    }

    #[test]
    fn pbw_overhead_shrinks_for_large_kernels() {
        let small = rel(KernelDims::new(1, 1, 3, 3), Accumulation::Pbw);
        let large = rel(KernelDims::new(1, 256, 5, 5), Accumulation::Pbw);
        assert!(small > 1.1, "small-kernel PBW overhead is visible: {small}");
        assert!(large < 1.10, "large-kernel PBW overhead ≤ ~10%: {large}");
        assert!(small > large);
    }

    #[test]
    fn pbhw_overhead_shrinks_for_large_kernels() {
        let small = rel(KernelDims::new(1, 1, 5, 5), Accumulation::Pbhw);
        let large = rel(KernelDims::new(1, 256, 5, 5), Accumulation::Pbhw);
        assert!(small > 1.5, "small-kernel PBHW overhead is large: {small}");
        assert!(large < 1.25, "large-kernel PBHW overhead small: {large}");
    }

    #[test]
    fn fxp_is_several_times_sc_for_most_kernels() {
        let mut count = 0;
        for dims in fig5_kernel_sizes() {
            if rel(dims, Accumulation::Fxp) > 3.0 {
                count += 1;
            }
        }
        assert!(
            count >= 7,
            "FXP should be ≥3× SC for most sizes, got {count}/10"
        );
    }

    #[test]
    fn apc_is_between_pbw_and_fxp_for_large_kernels() {
        let dims = KernelDims::new(1, 256, 5, 5);
        let apc = rel(dims, Accumulation::Apc);
        let pbw = rel(dims, Accumulation::Pbw);
        let fxp = rel(dims, Accumulation::Fxp);
        assert!(
            apc > 2.0 * pbw,
            "APC ≫ PBW for large kernels: {apc} vs {pbw}"
        );
        assert!(apc < fxp, "APC < FXP: {apc} vs {fxp}");
    }

    #[test]
    fn fig5_table_is_complete_and_normalized() {
        let table = fig5_table();
        assert_eq!(table.len(), 10);
        for row in &table {
            assert_eq!(row.relative[0], 1.0);
            assert!(row.sc_area_um2 > 0.0);
        }
    }
}
