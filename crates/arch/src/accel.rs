//! GEO accelerator configurations and the area model (Fig. 4, Fig. 6,
//! Tables II & III).
//!
//! Two design points: **ULP** (25.6K MACs, 150 KB on-chip) and **LP**
//! (294K MACs, 0.5 MB on-chip, HBM2 external memory). Each optimization
//! from the paper can be toggled, producing the Base / GEO-GEN /
//! GEO-GEN-EXEC variants Fig. 6 compares.

use crate::mac_area;
use crate::memory::{Hbm2, Sram};
use crate::modules;
use crate::tech::{um2_to_mm2, BlockCost, OperatingPoint};
use geo_sc::Accumulation;
use geo_sc::KernelDims;
use serde::{Deserialize, Serialize};

/// The optimization toggles distinguishing Base from GEO variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimizations {
    /// Moderate RNG sharing: one LFSR set shared across rows (§II-A).
    pub shared_generation: bool,
    /// Progressive generation + 2-bit shadow buffers (§II-B, §III-D).
    pub progressive_shadow: bool,
    /// Partial binary (PBW) accumulation counters in the MAC rows (§III-B).
    pub partial_binary: bool,
    /// Near-memory accumulate + batch norm units (§III-C).
    pub near_memory: bool,
    /// Compute pipeline stage enabling the 0.81 V DVFS point (§III-D).
    pub pipeline_dvfs: bool,
    /// Pooled-output computation skipping (§III-A): the output
    /// converters' parallel counters add each 2×2 pooling window before
    /// conversion, so pooled layers convert once per window instead of
    /// once per pixel (the engine's conv→pool fusion models the same
    /// transform in software).
    pub pooled_conversion_skip: bool,
    /// LFSR width; the Base variant uses 16-bit LFSRs to emulate TRNG
    /// quality (§IV-B), GEO matches width to stream length (≤8).
    pub lfsr_bits: u8,
}

impl Optimizations {
    /// Everything off: the Base-128,128 point of Fig. 6.
    pub fn baseline() -> Self {
        Optimizations {
            shared_generation: false,
            progressive_shadow: false,
            partial_binary: false,
            near_memory: false,
            pipeline_dvfs: false,
            pooled_conversion_skip: false,
            lfsr_bits: 16,
        }
    }

    /// Generation optimizations only: GEO-GEN (§II).
    pub fn generation_only() -> Self {
        Optimizations {
            shared_generation: true,
            progressive_shadow: true,
            partial_binary: false,
            near_memory: false,
            pipeline_dvfs: false,
            pooled_conversion_skip: false,
            lfsr_bits: 8,
        }
    }

    /// Generation + execution optimizations: GEO-GEN-EXEC (§II + §III).
    pub fn full() -> Self {
        Optimizations {
            shared_generation: true,
            progressive_shadow: true,
            partial_binary: true,
            near_memory: true,
            pipeline_dvfs: true,
            pooled_conversion_skip: true,
            lfsr_bits: 8,
        }
    }
}

/// Area/energy breakdown categories — exactly the legend of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// SC MAC arrays (AND gates, OR trees, partial-binary counters,
    /// pipeline registers).
    ScMacArrays,
    /// Activation stream generators (LFSRs + comparators).
    ActSng,
    /// Activation SNG operand buffers (+ shadow stages).
    ActSngBuffers,
    /// Weight stream generators.
    WgtSng,
    /// Weight SNG operand buffers.
    WgtSngBuffers,
    /// Output converter array (counters, subtractors, pooling adders) and
    /// near-memory compute.
    OutputConv,
    /// Activation memory.
    ActMemory,
    /// Weight memory.
    WgtMemory,
}

impl Category {
    /// All categories in Fig. 6 legend order.
    pub const ALL: [Category; 8] = [
        Category::ScMacArrays,
        Category::ActSng,
        Category::ActSngBuffers,
        Category::WgtSng,
        Category::WgtSngBuffers,
        Category::OutputConv,
        Category::ActMemory,
        Category::WgtMemory,
    ];

    /// Position of this category in [`Category::ALL`] — infallible, so
    /// breakdown tables can index per-category arrays without a linear
    /// scan or an `unwrap`.
    pub const fn index(self) -> usize {
        match self {
            Category::ScMacArrays => 0,
            Category::ActSng => 1,
            Category::ActSngBuffers => 2,
            Category::WgtSng => 3,
            Category::WgtSngBuffers => 4,
            Category::OutputConv => 5,
            Category::ActMemory => 6,
            Category::WgtMemory => 7,
        }
    }

    /// Display label matching the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            Category::ScMacArrays => "SC MAC Arrays",
            Category::ActSng => "Act. SNG",
            Category::ActSngBuffers => "Act. SNG Buffers",
            Category::WgtSng => "Wgt. SNG",
            Category::WgtSngBuffers => "Wgt. SNG Buffers",
            Category::OutputConv => "Output Conv.",
            Category::ActMemory => "Act. Memory",
            Category::WgtMemory => "Wgt. Memory",
        }
    }
}

/// A GEO accelerator design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Configuration name, e.g. `"GEO-ULP-32,64"`.
    pub name: String,
    /// MAC rows (output channels in parallel).
    pub rows: usize,
    /// MAC units per row.
    pub row_macs: usize,
    /// Output positions per compute pass (sliding-window width).
    pub positions_per_pass: usize,
    /// Activation memory (2 logical ping-pong banks).
    pub act_mem: Sram,
    /// Weight memory (2 logical ping-pong banks).
    pub wgt_mem: Sram,
    /// External memory for scale-out variants (LP).
    pub external: Option<Hbm2>,
    /// Stream length for pooled layers (`sp`).
    pub stream_pooled: usize,
    /// Stream length for other layers (`s`).
    pub stream_other: usize,
    /// Optimization toggles.
    pub opts: Optimizations,
}

impl AccelConfig {
    /// The ULP design point (25.6K MACs, 150 KB on-chip) with full GEO
    /// optimizations at a `{sp, s}` stream pair.
    pub fn ulp_geo(sp: usize, s: usize) -> Self {
        AccelConfig {
            name: format!("GEO-ULP-{sp},{s}"),
            rows: 32,
            row_macs: 800,
            positions_per_pass: 8,
            act_mem: Sram::new(100 * 1024, 128),
            wgt_mem: Sram::new(50 * 1024, 128),
            external: None,
            stream_pooled: sp,
            stream_other: s,
            opts: Optimizations::full(),
        }
    }

    /// The Base-128,128 point of Fig. 6: ULP sizing, no optimizations,
    /// 16-bit LFSRs emulating TRNG.
    pub fn ulp_base() -> Self {
        AccelConfig {
            name: "Base-128,128".into(),
            stream_pooled: 128,
            stream_other: 128,
            opts: Optimizations::baseline(),
            ..Self::ulp_geo(128, 128)
        }
    }

    /// GEO-GEN-128,128: generation optimizations only (Fig. 6 middle bar).
    pub fn ulp_gen() -> Self {
        AccelConfig {
            name: "GEO-GEN-128,128".into(),
            stream_pooled: 128,
            stream_other: 128,
            opts: Optimizations::generation_only(),
            ..Self::ulp_geo(128, 128)
        }
    }

    /// GEO-GEN-EXEC-32,64: all optimizations, reduced streams (Fig. 6
    /// right bar; iso-accuracy with Base-128,128 thanks to §II/§III).
    pub fn ulp_gen_exec() -> Self {
        AccelConfig {
            name: "GEO-GEN-EXEC-32,64".into(),
            ..Self::ulp_geo(32, 64)
        }
    }

    /// ACOUSTIC sized to the same memory/compute as GEO-ULP, running
    /// longer streams for iso-accuracy (Table II's ACOUSTIC-ULP-128).
    pub fn acoustic_ulp(stream: usize) -> Self {
        AccelConfig {
            name: format!("ACOUSTIC-ULP-{stream}"),
            stream_pooled: stream,
            stream_other: stream,
            opts: Optimizations {
                // ACOUSTIC shares generation but has none of GEO's
                // execution optimizations.
                shared_generation: true,
                progressive_shadow: false,
                partial_binary: false,
                near_memory: false,
                pipeline_dvfs: false,
                pooled_conversion_skip: false,
                lfsr_bits: 8,
            },
            ..Self::ulp_geo(stream, stream)
        }
    }

    /// The LP design point (294K MACs, 0.5 MB on-chip, HBM2 external).
    pub fn lp_geo(sp: usize, s: usize) -> Self {
        AccelConfig {
            name: format!("GEO-LP-{sp},{s}"),
            rows: 288,
            row_macs: 1024,
            positions_per_pass: 8,
            act_mem: Sram::new(320 * 1024, 256),
            wgt_mem: Sram::new(192 * 1024, 256),
            external: Some(Hbm2::default()),
            stream_pooled: sp,
            stream_other: s,
            opts: Optimizations::full(),
        }
    }

    /// ACOUSTIC at LP scale.
    pub fn acoustic_lp(stream: usize) -> Self {
        AccelConfig {
            name: format!("ACOUSTIC-LP-{stream}"),
            stream_pooled: stream,
            stream_other: stream,
            opts: Optimizations {
                shared_generation: true,
                progressive_shadow: false,
                partial_binary: false,
                near_memory: false,
                pipeline_dvfs: false,
                pooled_conversion_skip: false,
                lfsr_bits: 8,
            },
            ..Self::lp_geo(stream, stream)
        }
    }

    /// Total MAC count.
    pub fn macs(&self) -> usize {
        self.rows * self.row_macs
    }

    /// Operating point: nominal, or the DVFS point when pipelining is on.
    pub fn operating_point(&self) -> OperatingPoint {
        if self.opts.pipeline_dvfs {
            OperatingPoint::geo_dvfs()
        } else {
            OperatingPoint::nominal()
        }
    }

    /// Weight SNG count: weights are reused across the sliding positions
    /// within a row, so one weight SNG serves `positions_per_pass` MACs.
    pub fn weight_sngs(&self) -> usize {
        self.rows * self.row_macs / self.positions_per_pass
    }

    /// Activation SNG count: activations broadcast across all rows, so one
    /// activation SNG per MAC column.
    pub fn activation_sngs(&self) -> usize {
        self.row_macs
    }

    /// Physical LFSR instance count: one per weight column plus one per
    /// activation lane, shared across rows. Seed *sharing* (§II-A) is a
    /// seed-register policy, not extra hardware — what distinguishes the
    /// Base variant is its 16-bit LFSRs (double the flip-flops), whose
    /// narrowing under GEO balances the shadow-buffer area (Fig. 6's ≈−1%).
    pub fn lfsr_count(&self) -> usize {
        self.row_macs / self.positions_per_pass + self.activation_sngs()
    }

    /// Logic cost of one Fig. 6 category (memories excluded — see
    /// [`AccelConfig::area_breakdown`]).
    pub fn category_cost(&self, cat: Category) -> BlockCost {
        let zero = BlockCost::default();
        match cat {
            Category::ScMacArrays => {
                // Each row is one MAC unit over its row_macs inputs; PBW
                // grouping mirrors a (Cin, 5, 5) kernel arrangement.
                let w = 5usize.min(self.row_macs);
                let h = 5usize.min(self.row_macs / w).max(1);
                let cin = (self.row_macs / (w * h)).max(1);
                let dims = KernelDims::new(1, cin, h, w);
                let mode = if self.opts.partial_binary {
                    Accumulation::Pbw
                } else {
                    Accumulation::Or
                };
                let mut row = mac_area::sc_mac_unit(dims, mode);
                if self.opts.pipeline_dvfs {
                    row = row.plus(modules::pipeline_stage(2 * 8));
                }
                row.times(self.rows as f64)
            }
            Category::ActSng => modules::lfsr(self.opts.lfsr_bits)
                .times(self.activation_sngs() as f64)
                .plus(
                    modules::sng_comparator(self.opts.lfsr_bits.min(8))
                        .times(self.activation_sngs() as f64),
                ),
            Category::ActSngBuffers => modules::sng_buffer(self.opts.progressive_shadow)
                .times(self.activation_sngs() as f64),
            Category::WgtSng => modules::lfsr(self.opts.lfsr_bits)
                .times((self.row_macs / self.positions_per_pass) as f64)
                .plus(
                    modules::sng_comparator(self.opts.lfsr_bits.min(8))
                        .times(self.weight_sngs() as f64),
                ),
            Category::WgtSngBuffers => {
                modules::sng_buffer(self.opts.progressive_shadow).times(self.weight_sngs() as f64)
            }
            Category::OutputConv => {
                let converters = (self.rows * self.positions_per_pass) as f64;
                let counter_bits = if self.opts.partial_binary { 18 } else { 16 };
                let mut cost = modules::output_converter(counter_bits).times(converters);
                if self.opts.near_memory {
                    // Near-memory vector units sized to the act-mem port.
                    let units = (self.act_mem.width_bits / 8) as f64;
                    cost = cost.plus(modules::near_memory_mac().times(units));
                }
                cost
            }
            Category::ActMemory | Category::WgtMemory => zero,
        }
    }

    /// Full area breakdown in mm², Fig. 6 categories.
    pub fn area_breakdown(&self) -> Vec<(Category, f64)> {
        Category::ALL
            .iter()
            .map(|&cat| {
                let mm2 = match cat {
                    Category::ActMemory => um2_to_mm2(self.act_mem.area_um2()),
                    Category::WgtMemory => um2_to_mm2(self.wgt_mem.area_um2()),
                    _ => um2_to_mm2(self.category_cost(cat).area_um2),
                };
                (cat, mm2)
            })
            .collect()
    }

    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.area_breakdown().iter().map(|(_, a)| a).sum()
    }

    /// Peak throughput in GOPS at a given stream length: every MAC retires
    /// one 2-op multiply-accumulate per `stream_len` cycles.
    pub fn peak_gops_at(&self, stream_len: usize) -> f64 {
        let op = self.operating_point();
        self.macs() as f64 * op.freq_mhz * 1e6 * 2.0 / stream_len as f64 / 1e9
    }

    /// Peak throughput in GOPS: computation skipping makes the pooled
    /// stream length the peak-rate denominator for pooling-heavy networks
    /// (Table II); Table III's VGG-dominated LP numbers quote
    /// [`AccelConfig::peak_gops_at`] with the non-pooled length.
    pub fn peak_gops(&self) -> f64 {
        self.peak_gops_at(self.stream_pooled)
    }

    /// Total leakage power in milliwatts at the operating point.
    pub fn leakage_mw(&self) -> f64 {
        let logic: f64 = Category::ALL
            .iter()
            .map(|&c| self.category_cost(c).leak_nw)
            .sum();
        let mem = self.act_mem.leak_nw() + self.wgt_mem.leak_nw();
        (logic + mem) * self.operating_point().leakage_scale() * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_and_lp_mac_counts_match_paper() {
        assert_eq!(AccelConfig::ulp_geo(32, 64).macs(), 25_600);
        let lp = AccelConfig::lp_geo(64, 128).macs();
        assert!((294_000i64 - lp as i64).abs() < 1500, "LP macs {lp}");
    }

    #[test]
    fn memory_capacities_match_paper() {
        let ulp = AccelConfig::ulp_geo(32, 64);
        assert_eq!(ulp.act_mem.bytes + ulp.wgt_mem.bytes, 150 * 1024);
        let lp = AccelConfig::lp_geo(64, 128);
        assert_eq!(lp.act_mem.bytes + lp.wgt_mem.bytes, 512 * 1024);
        assert!(lp.external.is_some());
        assert!(ulp.external.is_none());
    }

    #[test]
    fn ulp_area_is_sub_mm2_lp_is_several() {
        let ulp = AccelConfig::ulp_geo(32, 64).total_area_mm2();
        assert!(ulp > 0.2 && ulp < 1.2, "ULP area {ulp} mm²");
        let lp = AccelConfig::lp_geo(64, 128).total_area_mm2();
        assert!(lp > 2.0 && lp < 15.0, "LP area {lp} mm²");
        assert!(lp > 5.0 * ulp);
    }

    #[test]
    fn generation_opts_barely_change_area() {
        // Fig. 6: GEN optimizations change area by ~1% — shadow-buffer
        // growth balanced by the narrower shared LFSRs.
        let base = AccelConfig::ulp_base().total_area_mm2();
        let gen = AccelConfig::ulp_gen().total_area_mm2();
        let ratio = gen / base;
        assert!((ratio - 1.0).abs() < 0.02, "gen/base {ratio}");
    }

    #[test]
    fn exec_opts_cost_little_area() {
        // Fig. 6: GEN-EXEC adds ~2% w.r.t. baseline.
        let base = AccelConfig::ulp_base().total_area_mm2();
        let full = AccelConfig::ulp_gen_exec().total_area_mm2();
        let ratio = full / base;
        assert!(ratio < 1.10, "full/base {ratio}");
        assert!(ratio > 0.85);
    }

    #[test]
    fn dvfs_only_with_pipeline() {
        assert_eq!(
            AccelConfig::ulp_base().operating_point().voltage,
            0.9,
            "baseline at nominal"
        );
        assert_eq!(AccelConfig::ulp_gen_exec().operating_point().voltage, 0.81);
    }

    #[test]
    fn narrower_lfsrs_balance_shadow_buffers() {
        let base = AccelConfig::ulp_base();
        let gen = AccelConfig::ulp_gen();
        assert_eq!(gen.lfsr_count(), base.lfsr_count(), "same physical LFSRs");
        // GEO's 8-bit LFSRs are about half the base's 16-bit ones…
        let base_sng = base.category_cost(Category::ActSng).area_um2;
        let gen_sng = gen.category_cost(Category::ActSng).area_um2;
        assert!(gen_sng < base_sng);
        // …while the shadow stages grow the buffers.
        let base_buf = base.category_cost(Category::ActSngBuffers).area_um2;
        let gen_buf = gen.category_cost(Category::ActSngBuffers).area_um2;
        assert!(gen_buf > base_buf);
    }

    #[test]
    fn peak_gops_matches_paper_formula() {
        // Table II: GEO-ULP-32,64 = 640 GOPS, -16,32 = 1280, ACOUSTIC-128 = 160.
        assert!((AccelConfig::ulp_geo(32, 64).peak_gops() - 640.0).abs() < 1.0);
        assert!((AccelConfig::ulp_geo(16, 32).peak_gops() - 1280.0).abs() < 1.0);
        assert!((AccelConfig::acoustic_ulp(128).peak_gops() - 160.0).abs() < 1.0);
        // Table III quotes LP peaks at the non-pooled (VGG-dominant)
        // stream length: GEO-LP-64,128 ≈ 1.8k GOPS, -32,64 ≈ 3.6k.
        let lp = AccelConfig::lp_geo(64, 128).peak_gops_at(128);
        assert!(lp > 1700.0 && lp < 2000.0, "LP gops {lp}");
        let lp2 = AccelConfig::lp_geo(32, 64).peak_gops_at(64);
        assert!(lp2 > 3400.0 && lp2 < 4000.0, "LP-32,64 gops {lp2}");
    }

    #[test]
    fn breakdown_covers_all_categories() {
        let b = AccelConfig::ulp_geo(32, 64).area_breakdown();
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|(_, a)| *a >= 0.0));
        // Memories are a major share (as in Fig. 6).
        let mem: f64 = b
            .iter()
            .filter(|(c, _)| matches!(c, Category::ActMemory | Category::WgtMemory))
            .map(|(_, a)| a)
            .sum();
        let total: f64 = b.iter().map(|(_, a)| a).sum();
        assert!(mem / total > 0.3, "memory share {}", mem / total);
    }

    #[test]
    fn leakage_is_milliwatt_scale() {
        let l = AccelConfig::ulp_geo(32, 64).leakage_mw();
        assert!(l > 0.01 && l < 20.0, "leakage {l} mW");
    }

    #[test]
    fn category_labels_match_fig6_legend() {
        assert_eq!(Category::ScMacArrays.label(), "SC MAC Arrays");
        assert_eq!(Category::WgtSngBuffers.label(), "Wgt. SNG Buffers");
    }

    #[test]
    fn category_index_matches_all_order() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.label());
        }
    }
}
