//! Report formatting: render simulation results as aligned text or
//! Markdown tables (the format EXPERIMENTS.md records).

use crate::accel::Category;
use crate::perfsim::SimReport;

/// Formats a value with SI-style suffixes (k/M/G).
pub fn si(x: f64) -> String {
    let ax = x.abs();
    if ax >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Renders a Markdown comparison table of simulation reports (one column
/// per report).
pub fn markdown_comparison(reports: &[SimReport]) -> String {
    let mut out = String::new();
    out.push_str("| metric |");
    for r in reports {
        out.push_str(&format!(" {} |", r.config));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in reports {
        out.push_str("---|");
    }
    out.push('\n');
    type MetricFn = Box<dyn Fn(&SimReport) -> String>;
    let rows: Vec<(&str, MetricFn)> = vec![
        (
            "cycles/frame",
            Box::new(|r: &SimReport| si(r.cycles as f64)),
        ),
        ("frames/s", Box::new(|r: &SimReport| si(r.fps))),
        (
            "energy/frame [µJ]",
            Box::new(|r: &SimReport| format!("{:.2}", r.energy_j * 1e6)),
        ),
        ("frames/J", Box::new(|r: &SimReport| si(r.frames_per_joule))),
        (
            "power [mW]",
            Box::new(|r: &SimReport| format!("{:.1}", r.power_mw)),
        ),
        (
            "area [mm²]",
            Box::new(|r: &SimReport| format!("{:.3}", r.area_mm2)),
        ),
    ];
    for (label, f) in rows {
        out.push_str(&format!("| {label} |"));
        for r in reports {
            out.push_str(&format!(" {} |", f(r)));
        }
        out.push('\n');
    }
    out
}

/// Renders a report's dynamic-energy breakdown as a Markdown table.
pub fn markdown_breakdown(report: &SimReport) -> String {
    let total: f64 = report.breakdown_pj.iter().map(|(_, e)| e).sum();
    let mut out = format!("| module | energy share ({}) |\n|---|---|\n", report.config);
    for cat in Category::ALL {
        let e = report
            .breakdown_pj
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, e)| *e)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "| {} | {:.1}% |\n",
            cat.label(),
            if total > 0.0 { 100.0 * e / total } else { 0.0 }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelConfig;
    use crate::network::NetworkDesc;
    use crate::perfsim;

    #[test]
    fn si_formatting() {
        assert_eq!(si(950.0), "950.0");
        assert_eq!(si(14_000.0), "14.0k");
        assert_eq!(si(2_500_000.0), "2.50M");
        assert_eq!(si(3.2e9), "3.20G");
    }

    #[test]
    fn markdown_comparison_has_all_columns_and_rows() {
        let net = NetworkDesc::lenet5_mnist();
        let reports = vec![
            perfsim::run(&AccelConfig::ulp_geo(32, 64), &net),
            perfsim::run(&AccelConfig::acoustic_ulp(128), &net),
        ];
        let md = markdown_comparison(&reports);
        assert!(md.contains("GEO-ULP-32,64"));
        assert!(md.contains("ACOUSTIC-ULP-128"));
        assert!(md.contains("frames/J"));
        // header + separator + 6 metric rows
        assert_eq!(md.lines().count(), 8);
        // Every line is a well-formed table row.
        assert!(md.lines().all(|l| l.starts_with('|') && l.ends_with('|')));
    }

    #[test]
    fn markdown_breakdown_covers_all_categories() {
        let net = NetworkDesc::lenet5_mnist();
        let r = perfsim::run(&AccelConfig::ulp_geo(32, 64), &net);
        let md = markdown_breakdown(&r);
        for cat in Category::ALL {
            assert!(md.contains(cat.label()), "missing {}", cat.label());
        }
    }
}
