//! Timing constants of progressive generation, derived from the substrate
//! model in [`geo_sc::progressive`].

use geo_sc::progressive::{reload_groups_before_start, CYCLES_PER_GROUP};

/// Cycles a compute pass must wait for operand bits before generation can
/// start: one 2-bit group with progressive shadow buffering, the full
/// operand otherwise — the 4× reload-latency reduction of §II-B.
pub fn start_latency(progressive_shadow: bool) -> u32 {
    reload_groups_before_start(progressive_shadow) * CYCLES_PER_GROUP
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progressive_start_is_4x_shorter() {
        assert_eq!(start_latency(false) / start_latency(true), 4);
        assert_eq!(start_latency(true), 2);
        assert_eq!(start_latency(false), 8);
    }
}
