//! Network descriptors: the layer shapes the compiler and performance
//! simulator consume.
//!
//! Descriptors are *derived*, never hand-maintained: either traced from a
//! live `geo-nn` model ([`NetworkDesc::from_model`]) or lowered from a
//! declarative [`ModelSpec`] ([`NetworkDesc::from_spec`]). The paper-scale
//! evaluation networks (CIFAR-10 CNN-4, MNIST LeNet-5, downscaled VGG-16)
//! are lowered from the single topology source of truth in
//! `geo_nn::models::spec`, so the performance tables and the functional
//! engine can never disagree about a network's shape.

use geo_nn::{Layer, ModelSpec, Sequential, SpecLayer};
use serde::{Deserialize, Serialize};

/// Shape of one compute layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerShape {
    /// A 2-d convolution.
    Conv {
        /// Input channels.
        cin: usize,
        /// Output channels.
        cout: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Input spatial height.
        in_h: usize,
        /// Input spatial width.
        in_w: usize,
        /// Followed by 2×2 average pooling (computation skipping applies).
        pooled: bool,
    },
    /// A fully-connected layer.
    Fc {
        /// Input features.
        inf: usize,
        /// Output features.
        outf: usize,
    },
}

impl LayerShape {
    /// Output spatial size of a conv layer; `(1, 1)` for FC.
    pub fn output_hw(&self) -> (usize, usize) {
        match *self {
            LayerShape::Conv {
                kernel,
                stride,
                pad,
                in_h,
                in_w,
                ..
            } => (
                (in_h + 2 * pad - kernel) / stride + 1,
                (in_w + 2 * pad - kernel) / stride + 1,
            ),
            LayerShape::Fc { .. } => (1, 1),
        }
    }

    /// Kernel volume (`Cin·K·K` for conv, `inf` for FC).
    pub fn kernel_volume(&self) -> usize {
        match *self {
            LayerShape::Conv { cin, kernel, .. } => cin * kernel * kernel,
            LayerShape::Fc { inf, .. } => inf,
        }
    }

    /// Output channels / features.
    pub fn output_channels(&self) -> usize {
        match *self {
            LayerShape::Conv { cout, .. } => cout,
            LayerShape::Fc { outf, .. } => outf,
        }
    }

    /// Total multiply-accumulates of the layer.
    pub fn macs(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (self.output_channels() * oh * ow) as u64 * self.kernel_volume() as u64
    }

    /// Weight count.
    pub fn weights(&self) -> u64 {
        (self.output_channels() * self.kernel_volume()) as u64
    }

    /// Input activation count.
    pub fn input_activations(&self) -> u64 {
        match *self {
            LayerShape::Conv {
                cin, in_h, in_w, ..
            } => (cin * in_h * in_w) as u64,
            LayerShape::Fc { inf, .. } => inf as u64,
        }
    }

    /// Output element count (before pooling).
    pub fn outputs(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (self.output_channels() * oh * ow) as u64
    }

    /// Whether computation skipping (pooled stream length) applies.
    pub fn pooled(&self) -> bool {
        matches!(self, LayerShape::Conv { pooled: true, .. })
    }
}

/// An ordered stack of compute layers with a name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkDesc {
    /// Network name, e.g. `"CNN-4 (CIFAR-10)"`.
    pub name: String,
    /// Compute layers in execution order.
    pub layers: Vec<LayerShape>,
}

/// Folds one value into a running FNV-1a hash, byte by byte.
fn fnv64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

impl NetworkDesc {
    /// Stable 64-bit fingerprint of the layer stack — every structural
    /// field of every layer, in order, folded through FNV-1a. Serialized
    /// program artifacts carry this value so the load boundary can bind a
    /// program to the network it was compiled for; the name is excluded,
    /// so renaming a network does not invalidate its cached programs.
    ///
    /// The value is part of the durable artifact format: changing how it
    /// is computed is a format break and must bump
    /// [`crate::artifact::FORMAT_VERSION`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv64(0xCBF2_9CE4_8422_2325, self.layers.len() as u64);
        for layer in &self.layers {
            match *layer {
                LayerShape::Conv {
                    cin,
                    cout,
                    kernel,
                    stride,
                    pad,
                    in_h,
                    in_w,
                    pooled,
                } => {
                    for v in [
                        0,
                        cin,
                        cout,
                        kernel,
                        stride,
                        pad,
                        in_h,
                        in_w,
                        pooled as usize,
                    ] {
                        h = fnv64(h, v as u64);
                    }
                }
                LayerShape::Fc { inf, outf } => {
                    for v in [1, inf, outf] {
                        h = fnv64(h, v as u64);
                    }
                }
            }
        }
        h
    }

    /// Total MACs of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// Total weights.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(LayerShape::weights).sum()
    }

    /// Traces the compute-layer shapes of a live `geo-nn` model given its
    /// input `(C, H, W)`.
    pub fn from_model(name: &str, model: &Sequential, input: (usize, usize, usize)) -> Self {
        let (mut c, mut h, mut w) = input;
        let mut layers = Vec::new();
        let model_layers = model.layers();
        for (i, layer) in model_layers.iter().enumerate() {
            match layer {
                Layer::Conv2d(conv) => {
                    // Pooled if any pooling occurs before the next conv/fc.
                    let pooled = model_layers[i + 1..]
                        .iter()
                        .take_while(|l| !matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
                        .any(|l| matches!(l, Layer::AvgPool2d(_) | Layer::MaxPool2d(_)));
                    let shape = LayerShape::Conv {
                        cin: c,
                        cout: conv.cout(),
                        kernel: conv.kernel(),
                        stride: conv.stride(),
                        pad: conv.padding(),
                        in_h: h,
                        in_w: w,
                        pooled,
                    };
                    let (oh, ow) = shape.output_hw();
                    layers.push(shape);
                    c = conv.cout();
                    h = oh;
                    w = ow;
                }
                Layer::Linear(lin) => {
                    layers.push(LayerShape::Fc {
                        inf: lin.input_features(),
                        outf: lin.output_features(),
                    });
                }
                Layer::AvgPool2d(_) | Layer::MaxPool2d(_) => {
                    h /= 2;
                    w /= 2;
                }
                _ => {}
            }
        }
        NetworkDesc {
            name: name.to_string(),
            layers,
        }
    }

    /// Lowers a declarative [`ModelSpec`] into compute-layer shapes.
    ///
    /// This is the canonical `Model → NetworkDesc` path: a conv block
    /// becomes a [`LayerShape::Conv`] (marked `pooled` when a pooling
    /// stage follows before the next compute layer), a linear becomes a
    /// [`LayerShape::Fc`] whose input features come from the traced shape,
    /// and pure data-movement layers (pool, flatten, BN, ReLU) only advance
    /// the running shape.
    ///
    /// # Panics
    ///
    /// Panics if the spec's shapes do not compose (a kernel larger than
    /// its padded input, or pooling a 1-pixel map) — the same condition
    /// `ModelSpec::build` reports as an error.
    pub fn from_spec(spec: &ModelSpec) -> Self {
        let (mut c, mut h, mut w) = spec.input;
        let mut flattened: Option<usize> = None;
        let mut layers = Vec::new();
        for (i, layer) in spec.layers.iter().enumerate() {
            match *layer {
                SpecLayer::ConvBnRelu {
                    cout,
                    kernel,
                    stride,
                    pad,
                } => {
                    assert!(
                        h + 2 * pad >= kernel && w + 2 * pad >= kernel && stride > 0,
                        "spec layer {i}: {kernel}×{kernel} conv does not fit a {h}×{w} input"
                    );
                    let pooled = spec.layers[i + 1..]
                        .iter()
                        .take_while(|l| {
                            !matches!(l, SpecLayer::ConvBnRelu { .. } | SpecLayer::Linear { .. })
                        })
                        .any(|l| matches!(l, SpecLayer::AvgPool));
                    let shape = LayerShape::Conv {
                        cin: c,
                        cout,
                        kernel,
                        stride,
                        pad,
                        in_h: h,
                        in_w: w,
                        pooled,
                    };
                    let (oh, ow) = shape.output_hw();
                    layers.push(shape);
                    c = cout;
                    h = oh;
                    w = ow;
                }
                SpecLayer::AvgPool => {
                    assert!(
                        h >= 2 && w >= 2,
                        "spec layer {i}: cannot pool a {h}×{w} map"
                    );
                    h /= 2;
                    w /= 2;
                }
                SpecLayer::Flatten => flattened = Some(c * h * w),
                SpecLayer::Linear { outf, .. } => {
                    let inf = flattened.take().unwrap_or(c * h * w);
                    layers.push(LayerShape::Fc { inf, outf });
                    flattened = Some(outf);
                }
            }
        }
        NetworkDesc {
            name: spec.name.clone(),
            layers,
        }
    }

    /// The paper-scale CNN-4 on CIFAR-10 (CMSIS-NN): three 5×5
    /// convolutions with pooling, then the classifier FC. Lowered from
    /// `geo_nn::models::spec::cnn4_cifar`.
    pub fn cnn4_cifar() -> Self {
        Self::from_spec(&geo_nn::models::spec::cnn4_cifar())
    }

    /// The paper-scale LeNet-5 on MNIST. Lowered from
    /// `geo_nn::models::spec::lenet5_mnist`.
    pub fn lenet5_mnist() -> Self {
        Self::from_spec(&geo_nn::models::spec::lenet5_mnist())
    }

    /// VGG-16 with the paper's downscaling: X/Y input dimensions halved
    /// (16×16 input) and the FC layers reduced to 512. Lowered from
    /// `geo_nn::models::spec::vgg16_scaled_cifar`.
    pub fn vgg16_scaled_cifar() -> Self {
        Self::from_spec(&geo_nn::models::spec::vgg16_scaled_cifar())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_nn::models;

    #[test]
    fn conv_shape_math() {
        let conv = LayerShape::Conv {
            cin: 3,
            cout: 32,
            kernel: 5,
            stride: 1,
            pad: 2,
            in_h: 32,
            in_w: 32,
            pooled: true,
        };
        assert_eq!(conv.output_hw(), (32, 32));
        assert_eq!(conv.kernel_volume(), 75);
        assert_eq!(conv.macs(), 32 * 32 * 32 * 75);
        assert_eq!(conv.weights(), 32 * 75);
        assert_eq!(conv.input_activations(), 3 * 32 * 32);
        assert!(conv.pooled());
    }

    #[test]
    fn fc_shape_math() {
        let fc = LayerShape::Fc {
            inf: 1024,
            outf: 10,
        };
        assert_eq!(fc.output_hw(), (1, 1));
        assert_eq!(fc.macs(), 10240);
        assert_eq!(fc.weights(), 10240);
        assert!(!fc.pooled());
    }

    #[test]
    fn cnn4_cifar_matches_cmsis_structure() {
        let net = NetworkDesc::cnn4_cifar();
        assert_eq!(net.layers.len(), 4);
        // First layer dominates? No: layer 2 has the most MACs.
        assert!(net.total_macs() > 10_000_000);
        assert!(net.total_weights() > 70_000);
    }

    #[test]
    fn lenet5_mnist_macs_are_sane() {
        let net = NetworkDesc::lenet5_mnist();
        assert_eq!(net.layers.len(), 5);
        // Classic LeNet-5: ~0.4M MACs.
        let m = net.total_macs();
        assert!(m > 200_000 && m < 2_000_000, "macs {m}");
    }

    #[test]
    fn vgg16_scaled_has_13_convs_and_3_fcs() {
        let net = NetworkDesc::vgg16_scaled_cifar();
        let convs = net
            .layers
            .iter()
            .filter(|l| matches!(l, LayerShape::Conv { .. }))
            .count();
        let fcs = net
            .layers
            .iter()
            .filter(|l| matches!(l, LayerShape::Fc { .. }))
            .count();
        assert_eq!((convs, fcs), (13, 3));
        // Downscaled VGG is still tens of MMACs per frame.
        assert!(net.total_macs() > 50_000_000, "macs {}", net.total_macs());
    }

    /// The derived descriptors must reproduce the totals of the
    /// previously hand-written constructors exactly — this is the
    /// regression gate for the spec-lowering refactor.
    #[test]
    fn derived_descs_match_hand_written_totals() {
        let cases: [(NetworkDesc, u64, u64); 3] = [
            (NetworkDesc::cnn4_cifar(), 12_298_240, 89_440),
            (NetworkDesc::lenet5_mnist(), 416_520, 61_470),
            (NetworkDesc::vgg16_scaled_cifar(), 78_828_544, 15_239_872),
        ];
        for (net, macs, weights) in cases {
            assert_eq!(net.total_macs(), macs, "{} MACs", net.name);
            assert_eq!(net.total_weights(), weights, "{} weights", net.name);
        }
    }

    /// Lowering a spec and tracing the model built from the same spec
    /// must agree layer-for-layer (shape-level MAC/weight/activation
    /// consistency between the functional and performance paths).
    #[test]
    fn spec_lowering_agrees_with_model_trace() {
        for spec in [
            geo_nn::models::spec::cnn4(3, 8, 10),
            geo_nn::models::spec::lenet5(1, 8, 10),
            geo_nn::models::spec::vgg16_small(3, 8, 10),
        ] {
            let derived = NetworkDesc::from_spec(&spec);
            let model = spec.build(0).expect("spec builds");
            let traced = NetworkDesc::from_model(&spec.name, &model, spec.input);
            assert_eq!(derived.layers, traced.layers, "{}", spec.name);
            assert_eq!(derived.total_macs(), traced.total_macs());
            assert_eq!(derived.total_weights(), traced.total_weights());
        }
    }

    #[test]
    fn derived_cnn4_keeps_pooled_flags_and_fc_width() {
        let net = NetworkDesc::cnn4_cifar();
        assert!(net.layers[..3].iter().all(LayerShape::pooled));
        assert_eq!(
            net.layers[3],
            LayerShape::Fc {
                inf: 64 * 4 * 4,
                outf: 10
            }
        );
    }

    #[test]
    fn fingerprints_distinguish_networks_and_track_structure() {
        let lenet = NetworkDesc::lenet5_mnist();
        let cnn4 = NetworkDesc::cnn4_cifar();
        let vgg = NetworkDesc::vgg16_scaled_cifar();
        assert_eq!(
            lenet.fingerprint(),
            NetworkDesc::lenet5_mnist().fingerprint()
        );
        assert_ne!(lenet.fingerprint(), cnn4.fingerprint());
        assert_ne!(cnn4.fingerprint(), vgg.fingerprint());
        assert_ne!(lenet.fingerprint(), vgg.fingerprint());

        // Renames don't invalidate cached artifacts…
        let mut renamed = lenet.clone();
        renamed.name = "something-else".into();
        assert_eq!(renamed.fingerprint(), lenet.fingerprint());

        // …but any structural change does, down to a single flag.
        let mut tweaked = lenet.clone();
        if let LayerShape::Conv { pooled, .. } = &mut tweaked.layers[0] {
            *pooled = !*pooled;
        }
        assert_ne!(tweaked.fingerprint(), lenet.fingerprint());
    }

    #[test]
    fn from_model_traces_shapes() {
        let model = models::cnn4(3, 8, 10, 0);
        let net = NetworkDesc::from_model("cnn4-small", &model, (3, 8, 8));
        assert_eq!(net.layers.len(), 4);
        match net.layers[0] {
            LayerShape::Conv {
                cin, cout, pooled, ..
            } => {
                assert_eq!((cin, cout), (3, 16));
                assert!(pooled);
            }
            _ => panic!("first layer should be conv"),
        }
        match net.layers[2] {
            LayerShape::Conv {
                cin, in_h, pooled, ..
            } => {
                assert_eq!(cin, 24);
                assert_eq!(in_h, 2);
                assert!(!pooled);
            }
            _ => panic!("third layer should be conv"),
        }
        match net.layers[3] {
            LayerShape::Fc { inf, outf } => {
                assert_eq!(inf, 32 * 2 * 2);
                assert_eq!(outf, 10);
            }
            _ => panic!("last layer should be fc"),
        }
    }
}
