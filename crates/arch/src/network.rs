//! Network descriptors: the layer shapes the compiler and performance
//! simulator consume.
//!
//! Descriptors can be traced from a live `geo-nn` model or built directly
//! at the paper's full evaluation scale (CIFAR-10 CNN-4, MNIST LeNet-5,
//! downscaled VGG-16) — performance simulation needs shapes, not weights.

use geo_nn::{Layer, Sequential};
use serde::{Deserialize, Serialize};

/// Shape of one compute layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerShape {
    /// A 2-d convolution.
    Conv {
        /// Input channels.
        cin: usize,
        /// Output channels.
        cout: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Input spatial height.
        in_h: usize,
        /// Input spatial width.
        in_w: usize,
        /// Followed by 2×2 average pooling (computation skipping applies).
        pooled: bool,
    },
    /// A fully-connected layer.
    Fc {
        /// Input features.
        inf: usize,
        /// Output features.
        outf: usize,
    },
}

impl LayerShape {
    /// Output spatial size of a conv layer; `(1, 1)` for FC.
    pub fn output_hw(&self) -> (usize, usize) {
        match *self {
            LayerShape::Conv {
                kernel,
                stride,
                pad,
                in_h,
                in_w,
                ..
            } => (
                (in_h + 2 * pad - kernel) / stride + 1,
                (in_w + 2 * pad - kernel) / stride + 1,
            ),
            LayerShape::Fc { .. } => (1, 1),
        }
    }

    /// Kernel volume (`Cin·K·K` for conv, `inf` for FC).
    pub fn kernel_volume(&self) -> usize {
        match *self {
            LayerShape::Conv { cin, kernel, .. } => cin * kernel * kernel,
            LayerShape::Fc { inf, .. } => inf,
        }
    }

    /// Output channels / features.
    pub fn output_channels(&self) -> usize {
        match *self {
            LayerShape::Conv { cout, .. } => cout,
            LayerShape::Fc { outf, .. } => outf,
        }
    }

    /// Total multiply-accumulates of the layer.
    pub fn macs(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (self.output_channels() * oh * ow) as u64 * self.kernel_volume() as u64
    }

    /// Weight count.
    pub fn weights(&self) -> u64 {
        (self.output_channels() * self.kernel_volume()) as u64
    }

    /// Input activation count.
    pub fn input_activations(&self) -> u64 {
        match *self {
            LayerShape::Conv {
                cin, in_h, in_w, ..
            } => (cin * in_h * in_w) as u64,
            LayerShape::Fc { inf, .. } => inf as u64,
        }
    }

    /// Output element count (before pooling).
    pub fn outputs(&self) -> u64 {
        let (oh, ow) = self.output_hw();
        (self.output_channels() * oh * ow) as u64
    }

    /// Whether computation skipping (pooled stream length) applies.
    pub fn pooled(&self) -> bool {
        matches!(self, LayerShape::Conv { pooled: true, .. })
    }
}

/// An ordered stack of compute layers with a name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkDesc {
    /// Network name, e.g. `"CNN-4 (CIFAR-10)"`.
    pub name: String,
    /// Compute layers in execution order.
    pub layers: Vec<LayerShape>,
}

impl NetworkDesc {
    /// Total MACs of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// Total weights.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(LayerShape::weights).sum()
    }

    /// Traces the compute-layer shapes of a live `geo-nn` model given its
    /// input `(C, H, W)`.
    pub fn from_model(name: &str, model: &Sequential, input: (usize, usize, usize)) -> Self {
        let (mut c, mut h, mut w) = input;
        let mut layers = Vec::new();
        let model_layers = model.layers();
        for (i, layer) in model_layers.iter().enumerate() {
            match layer {
                Layer::Conv2d(conv) => {
                    // Pooled if any pooling occurs before the next conv/fc.
                    let pooled = model_layers[i + 1..]
                        .iter()
                        .take_while(|l| !matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
                        .any(|l| matches!(l, Layer::AvgPool2d(_) | Layer::MaxPool2d(_)));
                    let shape = LayerShape::Conv {
                        cin: c,
                        cout: conv.cout(),
                        kernel: conv.kernel(),
                        stride: conv.stride(),
                        pad: conv.padding(),
                        in_h: h,
                        in_w: w,
                        pooled,
                    };
                    let (oh, ow) = shape.output_hw();
                    layers.push(shape);
                    c = conv.cout();
                    h = oh;
                    w = ow;
                }
                Layer::Linear(lin) => {
                    layers.push(LayerShape::Fc {
                        inf: lin.input_features(),
                        outf: lin.output_features(),
                    });
                }
                Layer::AvgPool2d(_) | Layer::MaxPool2d(_) => {
                    h /= 2;
                    w /= 2;
                }
                _ => {}
            }
        }
        NetworkDesc {
            name: name.to_string(),
            layers,
        }
    }

    /// The paper-scale CNN-4 on CIFAR-10 (CMSIS-NN): three 5×5
    /// convolutions with pooling, then the classifier FC.
    pub fn cnn4_cifar() -> Self {
        NetworkDesc {
            name: "CNN-4 (CIFAR-10)".into(),
            layers: vec![
                LayerShape::Conv {
                    cin: 3,
                    cout: 32,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                    in_h: 32,
                    in_w: 32,
                    pooled: true,
                },
                LayerShape::Conv {
                    cin: 32,
                    cout: 32,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                    in_h: 16,
                    in_w: 16,
                    pooled: true,
                },
                LayerShape::Conv {
                    cin: 32,
                    cout: 64,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                    in_h: 8,
                    in_w: 8,
                    pooled: true,
                },
                LayerShape::Fc {
                    inf: 64 * 4 * 4,
                    outf: 10,
                },
            ],
        }
    }

    /// The paper-scale LeNet-5 on MNIST.
    pub fn lenet5_mnist() -> Self {
        NetworkDesc {
            name: "LeNet-5 (MNIST)".into(),
            layers: vec![
                LayerShape::Conv {
                    cin: 1,
                    cout: 6,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                    in_h: 28,
                    in_w: 28,
                    pooled: true,
                },
                LayerShape::Conv {
                    cin: 6,
                    cout: 16,
                    kernel: 5,
                    stride: 1,
                    pad: 0,
                    in_h: 14,
                    in_w: 14,
                    pooled: true,
                },
                LayerShape::Fc {
                    inf: 16 * 5 * 5,
                    outf: 120,
                },
                LayerShape::Fc { inf: 120, outf: 84 },
                LayerShape::Fc { inf: 84, outf: 10 },
            ],
        }
    }

    /// VGG-16 with the paper's downscaling: X/Y input dimensions halved
    /// (16×16 input) and the FC layers reduced to 512.
    pub fn vgg16_scaled_cifar() -> Self {
        let widths: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
        let mut layers = Vec::new();
        let mut cin = 3usize;
        let mut size = 16usize;
        for (block, &(w, reps)) in widths.iter().enumerate() {
            for r in 0..reps {
                layers.push(LayerShape::Conv {
                    cin,
                    cout: w,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    in_h: size,
                    in_w: size,
                    pooled: r + 1 == reps && block < 4,
                });
                cin = w;
            }
            if block < 4 {
                size /= 2;
            }
        }
        layers.push(LayerShape::Fc {
            inf: 512 * size * size,
            outf: 512,
        });
        layers.push(LayerShape::Fc {
            inf: 512,
            outf: 512,
        });
        layers.push(LayerShape::Fc { inf: 512, outf: 10 });
        NetworkDesc {
            name: "VGG-16 (scaled, CIFAR-10)".into(),
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_nn::models;

    #[test]
    fn conv_shape_math() {
        let conv = LayerShape::Conv {
            cin: 3,
            cout: 32,
            kernel: 5,
            stride: 1,
            pad: 2,
            in_h: 32,
            in_w: 32,
            pooled: true,
        };
        assert_eq!(conv.output_hw(), (32, 32));
        assert_eq!(conv.kernel_volume(), 75);
        assert_eq!(conv.macs(), 32 * 32 * 32 * 75);
        assert_eq!(conv.weights(), 32 * 75);
        assert_eq!(conv.input_activations(), 3 * 32 * 32);
        assert!(conv.pooled());
    }

    #[test]
    fn fc_shape_math() {
        let fc = LayerShape::Fc {
            inf: 1024,
            outf: 10,
        };
        assert_eq!(fc.output_hw(), (1, 1));
        assert_eq!(fc.macs(), 10240);
        assert_eq!(fc.weights(), 10240);
        assert!(!fc.pooled());
    }

    #[test]
    fn cnn4_cifar_matches_cmsis_structure() {
        let net = NetworkDesc::cnn4_cifar();
        assert_eq!(net.layers.len(), 4);
        // First layer dominates? No: layer 2 has the most MACs.
        assert!(net.total_macs() > 10_000_000);
        assert!(net.total_weights() > 70_000);
    }

    #[test]
    fn lenet5_mnist_macs_are_sane() {
        let net = NetworkDesc::lenet5_mnist();
        assert_eq!(net.layers.len(), 5);
        // Classic LeNet-5: ~0.4M MACs.
        let m = net.total_macs();
        assert!(m > 200_000 && m < 2_000_000, "macs {m}");
    }

    #[test]
    fn vgg16_scaled_has_13_convs_and_3_fcs() {
        let net = NetworkDesc::vgg16_scaled_cifar();
        let convs = net
            .layers
            .iter()
            .filter(|l| matches!(l, LayerShape::Conv { .. }))
            .count();
        let fcs = net
            .layers
            .iter()
            .filter(|l| matches!(l, LayerShape::Fc { .. }))
            .count();
        assert_eq!((convs, fcs), (13, 3));
        // Downscaled VGG is still tens of MMACs per frame.
        assert!(net.total_macs() > 50_000_000, "macs {}", net.total_macs());
    }

    #[test]
    fn from_model_traces_shapes() {
        let model = models::cnn4(3, 8, 10, 0);
        let net = NetworkDesc::from_model("cnn4-small", &model, (3, 8, 8));
        assert_eq!(net.layers.len(), 4);
        match net.layers[0] {
            LayerShape::Conv {
                cin, cout, pooled, ..
            } => {
                assert_eq!((cin, cout), (3, 16));
                assert!(pooled);
            }
            _ => panic!("first layer should be conv"),
        }
        match net.layers[2] {
            LayerShape::Conv {
                cin, in_h, pooled, ..
            } => {
                assert_eq!(cin, 24);
                assert_eq!(in_h, 2);
                assert!(!pooled);
            }
            _ => panic!("third layer should be conv"),
        }
        match net.layers[3] {
            LayerShape::Fc { inf, outf } => {
                assert_eq!(inf, 32 * 2 * 2);
                assert_eq!(outf, 10);
            }
            _ => panic!("last layer should be fc"),
        }
    }
}
