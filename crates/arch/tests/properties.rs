//! Property-based tests on the architecture model: the simulator and area
//! models must behave monotonically however the design point is twisted.

use geo_arch::dataflow::{count_accesses, ArraySpec, Dataflow};
use geo_arch::encoding::{decode, encode_instr, EncodeError};
use geo_arch::isa::{Instr, Tile};
use geo_arch::mac_area::sc_mac_unit;
use geo_arch::{perfsim, AccelConfig, LayerShape, NetworkDesc};
use geo_sc::Accumulation;
use geo_sc::KernelDims;
use proptest::prelude::*;

/// Tiles whose fields straddle their encoded widths: roughly half the
/// cases overflow at least one bit-field, so both the accept and the
/// reject path of the encoder are exercised.
fn tile_strategy() -> impl Strategy<Value = Tile> {
    (
        (0u32..0x200, 0u32..0x200, 0u32..0x2000, 0u32..0x2000),
        (
            0u32..0x2000_0000,
            0u32..0x2000_0000,
            0u32..0x200,
            0u32..0x200,
        ),
    )
        .prop_map(
            |(
                (layer, sng_group, cout_begin, cout_end),
                (pos_begin, pos_end, col_pass, col_passes),
            )| {
                Tile {
                    layer,
                    sng_group,
                    cout_begin,
                    cout_end,
                    pos_begin,
                    pos_end,
                    col_pass,
                    col_passes,
                }
            },
        )
}

fn tile_fits(t: &Tile) -> bool {
    t.layer <= 0xFF
        && t.sng_group <= 0xFF
        && t.cout_begin <= 0xFFF
        && t.cout_end <= 0xFFF
        && t.pos_begin <= 0xFFF_FFFF
        && t.pos_end <= 0xFFF_FFFF
        && t.col_pass <= 0xFF
        && t.col_passes <= 0xFF
        && t.col_pass < t.col_passes
}

fn conv_strategy() -> impl Strategy<Value = LayerShape> {
    (
        1usize..64,
        1usize..64,
        prop::sample::select(vec![1usize, 3, 5]),
        4usize..17,
    )
        .prop_map(|(cin, cout, kernel, size)| LayerShape::Conv {
            cin,
            cout,
            kernel,
            stride: 1,
            pad: kernel / 2,
            in_h: size,
            in_w: size,
            pooled: size % 2 == 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Accumulation-mode area ordering holds for every kernel geometry.
    #[test]
    fn mac_area_ordering_is_universal(cin in 1usize..512, h in 1usize..6, w in 1usize..6) {
        let dims = KernelDims::new(1, cin, h, w);
        let or = sc_mac_unit(dims, Accumulation::Or).area_um2;
        let pbw = sc_mac_unit(dims, Accumulation::Pbw).area_um2;
        let pbhw = sc_mac_unit(dims, Accumulation::Pbhw).area_um2;
        let fxp = sc_mac_unit(dims, Accumulation::Fxp).area_um2;
        let apc = sc_mac_unit(dims, Accumulation::Apc).area_um2;
        prop_assert!(or <= pbw + 1e-9);
        prop_assert!(pbw <= pbhw + 1e-9);
        prop_assert!(pbhw <= fxp + 1e-9);
        prop_assert!(apc <= fxp + 1e-9);
    }

    /// Dataflow access counts are positive and weight-stationary never
    /// loses to strict output-stationary on these conv layers.
    #[test]
    fn weight_stationary_never_loses(layer in conv_strategy()) {
        let spec = ArraySpec::new(32, 800, 8);
        let ws = count_accesses(&layer, Dataflow::WeightStationary, &spec);
        let os = count_accesses(&layer, Dataflow::OutputStationary, &spec);
        prop_assert!(ws.total() > 0);
        // WS may pay one extra window (the first fill) — never more.
        prop_assert!(ws.total() <= os.total() + layer.kernel_volume() as u64);
    }

    /// Simulated cycle counts scale monotonically with stream length.
    #[test]
    fn cycles_grow_with_stream_length(sp_exp in 4u32..7) {
        let sp = 1usize << sp_exp;
        let s = sp * 2;
        let net = NetworkDesc::lenet5_mnist();
        let shorter = perfsim::run(&AccelConfig::ulp_geo(sp, s), &net);
        let longer = perfsim::run(&AccelConfig::ulp_geo(sp * 2, s * 2), &net);
        prop_assert!(longer.cycles > shorter.cycles);
        prop_assert!(longer.energy_j > shorter.energy_j);
    }

    /// Energy, time, and area are always positive and finite; power is
    /// the energy/time quotient.
    #[test]
    fn sim_report_is_self_consistent(sp_exp in 3u32..8) {
        let sp = 1usize << sp_exp;
        let net = NetworkDesc::cnn4_cifar();
        let r = perfsim::run(&AccelConfig::ulp_geo(sp, sp), &net);
        prop_assert!(r.seconds > 0.0 && r.seconds.is_finite());
        prop_assert!(r.energy_j > 0.0 && r.energy_j.is_finite());
        prop_assert!(r.area_mm2 > 0.0);
        let power = r.energy_j / r.seconds * 1e3;
        prop_assert!((power - r.power_mw).abs() / r.power_mw < 1e-9);
        let dyn_sum: f64 = r.breakdown_pj.iter().map(|(_, e)| e).sum();
        prop_assert!((dyn_sum + r.leakage_pj + r.external_pj - r.energy_j * 1e12).abs()
            / (r.energy_j * 1e12) < 1e-9);
    }

    /// The compiler's emitted traffic matches the layer count: every layer
    /// has a start marker and at least one generate pass.
    #[test]
    fn compiled_programs_cover_every_layer(layer in conv_strategy()) {
        let net = NetworkDesc { name: "prop".into(), layers: vec![layer] };
        let accel = AccelConfig::ulp_geo(32, 64);
        let program = geo_arch::compiler::compile(&net, &accel);
        prop_assert_eq!(program.layer_starts.len(), 1);
        prop_assert!(program.generate_count() >= 1);
        let (_, wgt, act, wb) = program.traffic();
        prop_assert!(wgt > 0 && act > 0 && wb > 0);
    }

    /// Tile encoding either round-trips exactly or fails with a typed
    /// range error — it never wraps an out-of-range field into a
    /// different, valid-looking tile.
    #[test]
    fn tile_encoding_round_trips_or_rejects(
        tile in tile_strategy(),
        cycles in 0u64..0x2000_0000,
        active_macs in 0u64..0x2000_0000,
    ) {
        let instr = Instr::Generate { cycles, active_macs, tile };
        let fits = tile_fits(&tile) && cycles <= 0xFFF_FFFF && active_macs <= 0xFFF_FFFF;
        let mut buf = Vec::new();
        match encode_instr(&instr, &mut buf) {
            Ok(()) => {
                prop_assert!(fits, "encoder accepted an out-of-range field: {instr:?}");
                let decoded = decode(&buf).unwrap();
                prop_assert_eq!(decoded.as_slice(), std::slice::from_ref(&instr));
            }
            Err(e) => {
                prop_assert!(!fits, "encoder rejected an in-range instruction: {instr:?}");
                let EncodeError::FieldRange { value, max, .. } = e else {
                    panic!("unexpected error variant: {e:?}");
                };
                // `value > max` except the col_pass = col_passes = 0
                // corner, where the cross-field bound degenerates to 0/0.
                prop_assert!(value > max || (tile.col_pass == 0 && tile.col_passes == 0));
                // A failed encode leaves no partial words behind.
                prop_assert!(buf.is_empty());
            }
        }
    }
}
