//! Program-level round-trip contracts for the durable representations.
//!
//! Every program the compiler can emit must survive both persistence
//! formats losslessly:
//!
//! - **binary**: `Program → artifact bytes → Program → artifact bytes`
//!   is byte-identical (strict decoding makes encode/decode mutually
//!   inverse, so the second serialization cannot drift);
//! - **text**: `disassemble → assemble → disassemble` is a fixpoint, and
//!   assembling the text recovers the exact in-memory program.
//!
//! Pinned across the bench networks × the paper's design points, and
//! across randomly generated (non-compiler-shaped) valid programs.

use geo_arch::artifact::ProgramArtifact;
use geo_arch::compiler::compile;
use geo_arch::{asm, AccelConfig, Instr, NetworkDesc, Program, Tile};
use proptest::prelude::*;

fn networks() -> Vec<NetworkDesc> {
    vec![NetworkDesc::lenet5_mnist(), NetworkDesc::cnn4_cifar()]
}

fn design_points() -> Vec<AccelConfig> {
    vec![
        AccelConfig::ulp_geo(32, 64),
        AccelConfig::ulp_base(),
        AccelConfig::ulp_gen(),
        AccelConfig::ulp_gen_exec(),
        AccelConfig::lp_geo(16, 32),
    ]
}

/// Binary round trip: bytes → Program → bytes is the identity for every
/// compiled bench program.
#[test]
fn binary_round_trips_are_byte_identical() {
    for net in networks() {
        for accel in design_points() {
            let program = compile(&net, &accel);
            let artifact = ProgramArtifact::new(program.clone(), &net);
            let bytes = artifact.to_bytes().unwrap();
            let back = ProgramArtifact::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", net.name, accel.name));
            assert_eq!(back.program(), &program);
            assert_eq!(
                back.to_bytes().unwrap(),
                bytes,
                "{}/{} re-serialization drifted",
                net.name,
                accel.name
            );
        }
    }
}

/// Text round trip: canonical assembly is a fixpoint and recovers the
/// exact program for every compiled bench program.
#[test]
fn asm_round_trips_are_fixpoints() {
    for net in networks() {
        for accel in design_points() {
            let program = compile(&net, &accel);
            let text = asm::disassemble(&program)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", net.name, accel.name));
            let back =
                asm::assemble(&text).unwrap_or_else(|e| panic!("{}/{}: {e}", net.name, accel.name));
            assert_eq!(back, program, "{}/{} text drift", net.name, accel.name);
            assert_eq!(asm::disassemble(&back).unwrap(), text);
        }
    }
}

/// Valid (encodable) instructions, including the cross-field
/// `col_pass < col_passes` bound on GEN tiles. One flat tuple with a
/// variant selector stands in for `prop_oneof!`.
fn instr_strategy() -> impl Strategy<Value = Instr> {
    (
        (0u8..8, 0u64..0xFF_FFFF_FFFF_FFFF),
        (0u32..0x100, 0u32..0x100, 0u32..0x1000, 0u32..0x1000),
        (
            0u32..0x1000_0000,
            0u32..0x1000_0000,
            0u32..0x100,
            1u32..0x100,
        ),
    )
        .prop_map(
            |(
                (variant, bytes),
                (layer, sng_group, cout_begin, cout_end),
                (pos_begin, pos_end, pass_seed, col_passes),
            )| {
                let elements = bytes & 0xFFFF_FFFF_FFFF;
                match variant {
                    0 => Instr::LoadWeightsExternal { bytes },
                    1 => Instr::LoadWeights { bytes },
                    2 => Instr::LoadActivations { bytes },
                    3 => Instr::WriteActivations { bytes },
                    4 => Instr::NearMemAccumulate { elements, layer },
                    5 => Instr::NearMemBatchNorm { elements, layer },
                    6 => Instr::Sync,
                    _ => Instr::Generate {
                        cycles: bytes & 0xFFF_FFFF,
                        active_macs: (bytes >> 28) & 0xFFF_FFFF,
                        tile: Tile {
                            layer,
                            sng_group,
                            cout_begin,
                            cout_end,
                            pos_begin,
                            pos_end,
                            col_pass: pass_seed % col_passes,
                            col_passes,
                        },
                    },
                }
            },
        )
}

/// Valid programs the compiler would never emit: arbitrary instruction
/// mixes, layer markers anywhere (sorted seeds, so starts are always
/// non-decreasing and in bounds), printable names.
fn program_strategy() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(instr_strategy(), 0..24),
        prop::collection::vec(any::<u8>(), 0..6),
        prop::collection::vec(any::<u8>(), 0..24),
    )
        .prop_map(|(instrs, marker_seed, name_seed)| {
            let name: String = name_seed
                .into_iter()
                .map(|b| (b % 94 + 32) as char) // printable ASCII
                .collect();
            let mut program = Program::new(&name);
            let n = instrs.len();
            let mut starts: Vec<usize> = marker_seed
                .into_iter()
                .map(|b| b as usize % (n + 1))
                .collect();
            starts.sort_unstable();
            program.layer_starts = starts;
            program.instrs = instrs;
            program
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both round trips hold for arbitrary valid programs, not just
    /// compiler output.
    #[test]
    fn random_valid_programs_round_trip(program in program_strategy()) {
        let net = NetworkDesc::lenet5_mnist();
        let bytes = ProgramArtifact::new(program.clone(), &net).to_bytes().unwrap();
        let back = ProgramArtifact::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.program(), &program);
        prop_assert_eq!(back.to_bytes().unwrap(), bytes);

        let text = asm::disassemble(&program).unwrap();
        let reparsed = asm::assemble(&text).unwrap();
        prop_assert_eq!(&reparsed, &program);
        prop_assert_eq!(asm::disassemble(&reparsed).unwrap(), text);
    }
}
