//! The panic-free load boundary, attacked from the byte level.
//!
//! Two layers of defense are pinned here:
//!
//! 1. **Fuzz properties** — [`ProgramArtifact::from_bytes`] and
//!    [`decode`] must never panic, whatever bytes they are fed: raw
//!    random strings, and targeted mutations (bitflips, truncations) of
//!    a known-good artifact. Accepted inputs must re-serialize
//!    byte-identically (the strict-decode bijection).
//! 2. **A corrupt-artifact corpus** — each corruption class a durable
//!    artifact can suffer on disk maps to its *specific* typed
//!    [`ArtifactError`] variant, so callers can tell truncation from
//!    bitrot from a program compiled for the wrong network.
//!
//! Case count is env-gated: `GEO_FUZZ_CASES` (default 1024; CI's serial
//! fuzz-smoke lane raises it to 10000).

use geo_arch::artifact::{crc32, ArtifactError, ProgramArtifact};
use geo_arch::compiler::compile;
use geo_arch::encoding::{decode, DecodeError, INSTR_BYTES};
use geo_arch::{AccelConfig, NetworkDesc};
use proptest::prelude::*;
use std::sync::OnceLock;

fn fuzz_cases() -> u32 {
    std::env::var("GEO_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// A known-good artifact: compiled LeNet-5 for the GEO-ULP design point.
fn valid_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let net = NetworkDesc::lenet5_mnist();
        let program = compile(&net, &AccelConfig::ulp_geo(32, 64));
        ProgramArtifact::new(program, &net)
            .to_bytes()
            .expect("compiled program must serialize")
    })
}

/// Container geometry (see `artifact.rs` module docs): 14-byte header,
/// 4-byte header CRC, then three `len | payload | crc` sections.
const HEADER_CRC_AT: usize = 14;
const FIRST_SECTION_AT: usize = 18;

/// `(payload_offset, payload_len)` for the name, layers, and code
/// sections of a well-formed artifact.
fn section_bounds(bytes: &[u8]) -> [(usize, usize); 3] {
    let mut pos = FIRST_SECTION_AT;
    let mut out = [(0usize, 0usize); 3];
    for slot in &mut out {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        *slot = (pos + 4, len);
        pos += 4 + len + 4;
    }
    assert_eq!(pos, bytes.len(), "section walk must consume the artifact");
    out
}

/// Rewrites a section's stored CRC to match its (mutated) payload, so a
/// payload edit tests the *decode* path rather than the checksum.
fn fix_section_crc(bytes: &mut [u8], payload_at: usize, len: usize) {
    let crc = crc32(&bytes[payload_at..payload_at + len]).to_le_bytes();
    bytes[payload_at + len..payload_at + len + 4].copy_from_slice(&crc);
}

/// Rewrites the header CRC to match a (mutated) header.
fn fix_header_crc(bytes: &mut [u8]) {
    let crc = crc32(&bytes[..HEADER_CRC_AT]).to_le_bytes();
    bytes[HEADER_CRC_AT..HEADER_CRC_AT + 4].copy_from_slice(&crc);
}

/// Finds the code-payload offset of the first instruction word whose
/// opcode byte is `opcode`.
fn find_word(bytes: &[u8], opcode: u8) -> usize {
    let (code_at, code_len) = section_bounds(bytes)[2];
    let code = &bytes[code_at..code_at + code_len];
    let word = code
        .chunks_exact(INSTR_BYTES)
        .position(|w| w[0] == opcode)
        .unwrap_or_else(|| panic!("no word with opcode {opcode:#04x} in compiled LeNet-5"));
    code_at + word * INSTR_BYTES
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Arbitrary byte strings never panic the loader or the decoder —
    /// they produce `Ok` or a typed error, nothing else.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = ProgramArtifact::from_bytes(&bytes);
        let _ = decode(&bytes);
    }

    /// Targeted mutations of a valid artifact — single-byte XORs at any
    /// offset — never panic, and anything still accepted re-serializes
    /// byte-identically (a mutation either breaks the artifact loudly or
    /// was byte-neutral; it can never silently change meaning *and*
    /// survive).
    #[test]
    fn mutated_artifacts_never_panic(offset in 0usize..100_000, xor in any::<u8>()) {
        let mut bytes = valid_bytes().to_vec();
        let at = offset % bytes.len();
        bytes[at] ^= xor;
        if let Ok(artifact) = ProgramArtifact::from_bytes(&bytes) {
            prop_assert_eq!(artifact.to_bytes().unwrap(), bytes);
        }
    }

    /// Truncation at any length never panics and — for proper prefixes —
    /// always reports `Truncated`: every section consumes exactly its
    /// declared bytes, so a short read can never be mistaken for a
    /// complete artifact.
    #[test]
    fn truncations_report_truncated(len in 0usize..100_000) {
        let bytes = valid_bytes();
        let len = len % bytes.len(); // proper prefix
        match ProgramArtifact::from_bytes(&bytes[..len]) {
            Err(ArtifactError::Truncated { expected, actual }) => {
                prop_assert!(actual <= len && expected > actual);
            }
            other => prop_assert!(false, "prefix of {len} bytes gave {other:?}"),
        }
    }

    /// Decoded instruction streams re-encode to the exact input bytes:
    /// strict decoding makes encode/decode mutually inverse, which is
    /// what lets the container promise byte-identical round trips.
    #[test]
    fn accepted_streams_reencode_identically(
        words in prop::collection::vec(any::<u8>(), 0..16),
        fill in any::<u8>(),
    ) {
        // Bias toward plausible streams: random opcodes, uniform payload.
        let mut bytes = Vec::with_capacity(words.len() * INSTR_BYTES);
        for op in &words {
            bytes.push(*op);
            bytes.extend_from_slice(&[fill; INSTR_BYTES - 1]);
        }
        if let Ok(instrs) = decode(&bytes) {
            let mut out = Vec::new();
            for i in &instrs {
                geo_arch::encoding::encode_instr(i, &mut out).unwrap();
            }
            prop_assert_eq!(out, bytes);
        }
    }
}

/// The corrupt-artifact corpus: one corruption per on-disk failure
/// class, each mapped to its specific typed error variant.
#[test]
fn corruption_corpus_maps_to_typed_errors() {
    let valid = valid_bytes();
    ProgramArtifact::from_bytes(valid).expect("corpus baseline must load");
    let [_, (layers_at, layers_len), (code_at, code_len)] = section_bounds(valid);

    // Wrong magic.
    let mut bad = valid.to_vec();
    bad[0] = b'X';
    assert!(matches!(
        ProgramArtifact::from_bytes(&bad),
        Err(ArtifactError::BadMagic { found }) if &found == b"XEOA"
    ));

    // Unsupported format version (header CRC fixed up, so the version
    // check itself is what fires).
    let mut bad = valid.to_vec();
    bad[4] = 0xFF;
    fix_header_crc(&mut bad);
    assert!(matches!(
        ProgramArtifact::from_bytes(&bad),
        Err(ArtifactError::VersionMismatch {
            found: 0x00FF,
            supported: 1
        })
    ));

    // A flipped fingerprint bit without a matching CRC is header bitrot.
    let mut bad = valid.to_vec();
    bad[6] ^= 0x01;
    assert!(matches!(
        ProgramArtifact::from_bytes(&bad),
        Err(ArtifactError::ChecksumMismatch {
            section: "header",
            ..
        })
    ));

    // Payload bitrot in each section.
    for (i, name) in ["name", "layers", "code"].iter().enumerate() {
        let (at, len) = section_bounds(valid)[i];
        assert!(len > 0, "{name} section must be non-empty in the corpus");
        let mut bad = valid.to_vec();
        bad[at] ^= 0x80;
        match ProgramArtifact::from_bytes(&bad) {
            Err(ArtifactError::ChecksumMismatch {
                section,
                stored,
                computed,
            }) => {
                assert_eq!(&section, name);
                assert_ne!(stored, computed);
            }
            other => panic!("bitrot in {name} gave {other:?}"),
        }
    }

    // Bytes past the last section.
    let mut bad = valid.to_vec();
    bad.push(0);
    assert!(matches!(
        ProgramArtifact::from_bytes(&bad),
        Err(ArtifactError::TrailingBytes { extra: 1 })
    ));

    // A SYNC word with reserved immediate bits set — checksummed
    // consistently, so it reaches the strict decoder.
    let sync_at = find_word(valid, 0x08);
    let mut bad = valid.to_vec();
    bad[sync_at + 3] = 0xAB;
    fix_section_crc(&mut bad, code_at, code_len);
    match ProgramArtifact::from_bytes(&bad) {
        Err(ArtifactError::Decode(DecodeError::FieldRange { instr, field, .. })) => {
            assert_eq!((instr, field), ("SYNC", "imm"));
        }
        other => panic!("reserved SYNC bits gave {other:?}"),
    }

    // A GEN tile claiming column pass 0x77 of a smaller pass count —
    // in-field-range bytes whose cross-field bound only strict decoding
    // catches.
    let tile0_at = find_word(valid, 0x09);
    let mut bad = valid.to_vec();
    bad[tile0_at + 6] = 0x77; // immediate bits 40..48 = col_pass
    fix_section_crc(&mut bad, code_at, code_len);
    match ProgramArtifact::from_bytes(&bad) {
        Err(ArtifactError::Decode(DecodeError::FieldRange {
            instr,
            field,
            value,
            ..
        })) => {
            assert_eq!((instr, field, value), ("GEN", "col_pass", 0x77));
        }
        other => panic!("out-of-range col_pass gave {other:?}"),
    }

    // A consistently rewritten fingerprint (CRC fixed up) is a valid
    // container for the *wrong network*: the container loads, and the
    // semantic check at the execution boundary is what rejects it.
    let mut bad = valid.to_vec();
    bad[6] ^= 0x01;
    fix_header_crc(&mut bad);
    let artifact = ProgramArtifact::from_bytes(&bad).expect("container itself is intact");
    match artifact.verify_for(&NetworkDesc::lenet5_mnist()) {
        Err(ArtifactError::Semantic { detail }) => {
            assert!(detail.contains("fingerprint"), "{detail}");
        }
        other => panic!("wrong fingerprint gave {other:?}"),
    }

    // A layer table pointing past the instruction stream (CRC fixed up).
    assert!(layers_len >= 4);
    let mut bad = valid.to_vec();
    bad[layers_at + layers_len - 4..layers_at + layers_len]
        .copy_from_slice(&u32::MAX.to_le_bytes());
    fix_section_crc(&mut bad, layers_at, layers_len);
    match ProgramArtifact::from_bytes(&bad) {
        Err(ArtifactError::Semantic { detail }) => {
            assert!(detail.contains("beyond"), "{detail}");
        }
        other => panic!("out-of-bounds layer start gave {other:?}"),
    }

    // A layer table that is not a whole number of u32 entries: shrink the
    // declared length by one (and re-CRC the shorter payload). The walk
    // then misaligns, so the loader must fail with a typed error — which
    // one depends on how the remaining bytes parse, but it never panics.
    let mut bad = valid.to_vec();
    let decl_at = layers_at - 4;
    let short = (layers_len - 1) as u32;
    bad[decl_at..decl_at + 4].copy_from_slice(&short.to_le_bytes());
    assert!(ProgramArtifact::from_bytes(&bad).is_err());
}

/// The corpus' happy-path counterpart: the known-good artifact loads,
/// verifies against its own network, and survives a byte-identical
/// round trip.
#[test]
fn corpus_baseline_round_trips() {
    let bytes = valid_bytes();
    let artifact = ProgramArtifact::from_bytes(bytes).unwrap();
    artifact.verify_for(&NetworkDesc::lenet5_mnist()).unwrap();
    assert!(artifact.verify_for(&NetworkDesc::cnn4_cifar()).is_err());
    assert_eq!(artifact.to_bytes().unwrap(), bytes);
}
