//! Deterministic synthetic image-classification datasets.
//!
//! Stand-ins for MNIST / SVHN / CIFAR-10 (see DESIGN.md §3): each class has
//! a fixed smooth template; samples are jittered, brightness-scaled, noisy
//! copies. Difficulty is controlled by the noise level, so the SC-vs-float
//! accuracy *deltas* the paper reports stay visible without shipping
//! datasets. Pixels are in `[0, 1]`, matching unipolar SC activations.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A labeled image dataset, `(N, C, H, W)` pixels in `[0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (e.g. `"svhn-like"`).
    pub name: String,
    /// Images, `(N, C, H, W)`.
    pub images: Tensor,
    /// One label per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image shape `(C, H, W)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let s = self.images.shape();
        (s[1], s[2], s[3])
    }

    /// The `i`-th image as a `(1, C, H, W)` tensor.
    pub fn image(&self, i: usize) -> Tensor {
        let (c, h, w) = self.image_shape();
        let sz = c * h * w;
        let data = self.images.data()[i * sz..(i + 1) * sz].to_vec();
        Tensor::from_vec(vec![1, c, h, w], data).expect("image slice is consistent")
    }

    /// A contiguous batch `[start, start + n)` as `(n, C, H, W)` images and
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dataset.
    pub fn batch(&self, start: usize, n: usize) -> (Tensor, Vec<usize>) {
        assert!(start + n <= self.len(), "batch out of range");
        let (c, h, w) = self.image_shape();
        let sz = c * h * w;
        let data = self.images.data()[start * sz..(start + n) * sz].to_vec();
        (
            Tensor::from_vec(vec![n, c, h, w], data).expect("batch slice is consistent"),
            self.labels[start..start + n].to_vec(),
        )
    }

    /// The first `n` samples as a new dataset (for quick evaluations).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let (images, labels) = self.batch(0, n);
        Dataset {
            name: self.name.clone(),
            images,
            labels,
            classes: self.classes,
        }
    }
}

/// Parameters of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Image channels.
    pub channels: usize,
    /// Image height and width.
    pub size: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training samples.
    pub train: usize,
    /// Test samples.
    pub test: usize,
    /// Additive noise amplitude (difficulty control).
    pub noise: f32,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// MNIST-like: single channel, easy (LeNet-5 saturates, as in Table I).
    pub fn mnist_like(seed: u64) -> Self {
        DatasetSpec {
            name: "mnist-like".into(),
            channels: 1,
            size: 8,
            classes: 10,
            train: 256,
            test: 128,
            noise: 0.06,
            seed,
        }
    }

    /// SVHN-like: three channels, moderate difficulty.
    ///
    /// Sized 8×8 so two 2×2 pooling stages divide evenly, matching the
    /// model builders in [`crate::models`].
    pub fn svhn_like(seed: u64) -> Self {
        DatasetSpec {
            name: "svhn-like".into(),
            channels: 3,
            size: 8,
            classes: 10,
            train: 320,
            test: 160,
            noise: 0.16,
            seed,
        }
    }

    /// CIFAR-like: three channels, hard (accuracy well off the ceiling).
    pub fn cifar_like(seed: u64) -> Self {
        DatasetSpec {
            name: "cifar-like".into(),
            channels: 3,
            size: 8,
            classes: 10,
            train: 320,
            test: 160,
            noise: 0.28,
            seed,
        }
    }

    /// Scales train/test sample counts (for quick or thorough runs).
    pub fn with_samples(mut self, train: usize, test: usize) -> Self {
        self.train = train;
        self.test = test;
        self
    }
}

/// Approximate standard normal via Irwin–Hall (sum of 12 uniforms).
fn normal(rng: &mut StdRng) -> f32 {
    (0..12).map(|_| rng.gen::<f32>()).sum::<f32>() - 6.0
}

/// Bilinear upsampling of a `g×g` grid to `size×size`.
fn upsample(grid: &[f32], g: usize, size: usize) -> Vec<f32> {
    let mut out = vec![0.0; size * size];
    for y in 0..size {
        for x in 0..size {
            let fy = y as f32 / size as f32 * (g - 1) as f32;
            let fx = x as f32 / size as f32 * (g - 1) as f32;
            let (y0, x0) = (fy as usize, fx as usize);
            let (y1, x1) = ((y0 + 1).min(g - 1), (x0 + 1).min(g - 1));
            let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
            out[y * size + x] = grid[y0 * g + x0] * (1.0 - dy) * (1.0 - dx)
                + grid[y0 * g + x1] * (1.0 - dy) * dx
                + grid[y1 * g + x0] * dy * (1.0 - dx)
                + grid[y1 * g + x1] * dy * dx;
        }
    }
    out
}

fn generate_split(
    spec: &DatasetSpec,
    templates: &[Vec<f32>],
    n: usize,
    rng: &mut StdRng,
) -> Dataset {
    let (c, s) = (spec.channels, spec.size);
    let mut data = vec![0.0f32; n * c * s * s];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % spec.classes;
        labels.push(label);
        let template = &templates[label];
        let dx = rng.gen_range(-1i32..=1);
        let dy = rng.gen_range(-1i32..=1);
        let brightness = rng.gen_range(0.85f32..1.15);
        for ci in 0..c {
            for y in 0..s {
                for x in 0..s {
                    let sy = (y as i32 + dy).clamp(0, s as i32 - 1) as usize;
                    let sx = (x as i32 + dx).clamp(0, s as i32 - 1) as usize;
                    let base = template[(ci * s + sy) * s + sx] * brightness;
                    let v = base + spec.noise * normal(rng);
                    data[((i * c + ci) * s + y) * s + x] = v.clamp(0.0, 1.0);
                }
            }
        }
    }
    Dataset {
        name: spec.name.clone(),
        images: Tensor::from_vec(vec![n, c, s, s], data).expect("generated size is consistent"),
        labels,
        classes: spec.classes,
    }
}

/// Generates the `(train, test)` split for a spec. Same spec (including
/// seed) always yields identical datasets.
///
/// # Examples
///
/// ```
/// use geo_nn::datasets::{generate, DatasetSpec};
///
/// let (train, test) = generate(&DatasetSpec::mnist_like(0));
/// assert_eq!(train.len(), 256);
/// assert_eq!(test.classes, 10);
/// ```
pub fn generate(spec: &DatasetSpec) -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Fixed per-class smooth templates: a coarse random field upsampled.
    let g = 4;
    let templates: Vec<Vec<f32>> = (0..spec.classes)
        .map(|_| {
            let mut t = Vec::with_capacity(spec.channels * spec.size * spec.size);
            for _ in 0..spec.channels {
                let grid: Vec<f32> = (0..g * g).map(|_| rng.gen_range(0.0..1.0)).collect();
                t.extend(upsample(&grid, g, spec.size));
            }
            t
        })
        .collect();
    let train = generate_split(spec, &templates, spec.train, &mut rng);
    let test = generate_split(spec, &templates, spec.test, &mut rng);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::svhn_like(42);
        let (a_train, a_test) = generate(&spec);
        let (b_train, b_test) = generate(&spec);
        assert_eq!(a_train.images.data(), b_train.images.data());
        assert_eq!(a_test.labels, b_test.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = generate(&DatasetSpec::svhn_like(1));
        let (b, _) = generate(&DatasetSpec::svhn_like(2));
        assert_ne!(a.images.data(), b.images.data());
    }

    #[test]
    fn pixels_are_unipolar() {
        let (train, test) = generate(&DatasetSpec::cifar_like(7));
        for &v in train.images.data().iter().chain(test.images.data()) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn labels_are_balanced_and_in_range() {
        let (train, _) = generate(&DatasetSpec::mnist_like(3));
        let mut counts = [0usize; 10];
        for &l in &train.labels {
            assert!(l < 10);
            counts[l] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "round-robin labels are balanced");
    }

    #[test]
    fn shapes_match_specs() {
        let (train, test) = generate(&DatasetSpec::mnist_like(0));
        assert_eq!(train.images.shape(), &[256, 1, 8, 8]);
        assert_eq!(test.images.shape(), &[128, 1, 8, 8]);
        assert_eq!(train.image_shape(), (1, 8, 8));
        let (svhn, _) = generate(&DatasetSpec::svhn_like(0));
        assert_eq!(svhn.image_shape(), (3, 8, 8));
    }

    #[test]
    fn batching_and_single_images() {
        let (train, _) = generate(&DatasetSpec::mnist_like(0));
        let (batch, labels) = train.batch(4, 8);
        assert_eq!(batch.shape(), &[8, 1, 8, 8]);
        assert_eq!(labels.len(), 8);
        assert_eq!(labels[0], train.labels[4]);
        let img = train.image(4);
        assert_eq!(img.shape(), &[1, 1, 8, 8]);
        assert_eq!(img.data(), &batch.data()[..64]);
    }

    #[test]
    fn take_truncates() {
        let (train, _) = generate(&DatasetSpec::mnist_like(0));
        let small = train.take(10);
        assert_eq!(small.len(), 10);
        assert!(!small.is_empty());
        let all = train.take(10_000);
        assert_eq!(all.len(), train.len());
    }

    #[test]
    fn with_samples_overrides_counts() {
        let spec = DatasetSpec::cifar_like(0).with_samples(32, 16);
        let (train, test) = generate(&spec);
        assert_eq!(train.len(), 32);
        assert_eq!(test.len(), 16);
    }

    #[test]
    fn classes_are_distinguishable() {
        // Templates of different classes should differ substantially more
        // than noise: mean inter-class template distance > 0.
        let (train, _) = generate(&DatasetSpec::mnist_like(5));
        let a = train.image(0); // class 0
        let b = train.image(1); // class 1
        let dist: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.len() as f32;
        assert!(dist > 0.05, "classes too similar: {dist}");
    }
}
