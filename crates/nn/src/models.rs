//! Builders for the paper's evaluation networks (§IV), scaled to the
//! synthetic thumbnail datasets — plus the [`ModelSpec`] topology layer
//! that makes each network a single source of truth.
//!
//! * [`cnn4`] — the 4-layer CMSIS-NN-style CNN used for CIFAR-10 and SVHN
//!   (3 conv + 1 FC), with average pooling after the first two convolutions.
//! * [`lenet5`] — LeNet-5 for MNIST (2 conv + 2 FC here).
//! * [`vgg16_small`] — VGG-16 with downscaled spatial dimensions and
//!   reduced FC width, as the paper itself does ("X/Y input dimensions of
//!   each layer downscaled, FC-512 instead of FC-4096"); here channel widths
//!   are reduced further to keep SC simulation tractable.
//!
//! Every builder goes through a [`ModelSpec`]: a declarative layer list
//! from which both the live [`Sequential`] (weights, backprop) and the
//! architecture-level network descriptor (`geo_arch::NetworkDesc`) are
//! derived. The [`spec`] module also carries the paper-scale topologies
//! (full CIFAR-10 CNN-4, MNIST LeNet-5, downscaled VGG-16) so the
//! performance simulator and the functional engine consume *one*
//! description of each network instead of two hand-maintained copies.
//!
//! All convolutions are bias-free: the batch-norm shift absorbs the bias,
//! which matches GEO's near-memory BN hardware.

use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Layer, Linear, Relu};
use crate::model::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One entry of a [`ModelSpec`]: input channel/feature counts are derived
/// from the running shape while building, so they cannot drift out of sync
/// with the layers upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecLayer {
    /// A square convolution followed by batch norm and ReLU (the repo's
    /// standard conv block; convolutions are bias-free, BN absorbs it).
    ConvBnRelu {
        /// Output channels.
        cout: usize,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// 2×2 average pooling (halves both spatial dimensions).
    AvgPool,
    /// Flatten `(C, H, W)` into features.
    Flatten,
    /// A fully-connected layer; `relu` appends a ReLU after it.
    Linear {
        /// Output features.
        outf: usize,
        /// Whether a ReLU follows (hidden classifier stages).
        relu: bool,
    },
}

/// A declarative network topology: the single source of truth from which
/// the live model ([`ModelSpec::build`]) and the architecture descriptor
/// (`geo_arch::NetworkDesc::from_spec`) are both derived.
///
/// # Examples
///
/// ```
/// let spec = geo_nn::models::spec::cnn4(3, 8, 10);
/// let model = spec.build(0).unwrap();
/// assert_eq!(model.layers().len(), 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Network name, e.g. `"CNN-4 (CIFAR-10)"`.
    pub name: String,
    /// Input shape `(C, H, W)`.
    pub input: (usize, usize, usize),
    /// Layers in execution order.
    pub layers: Vec<SpecLayer>,
}

impl ModelSpec {
    /// Traces the shape through the spec, returning the flattened feature
    /// count at the end (`C·H·W` if never flattened).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first layer whose shape underflows
    /// (kernel larger than its padded input, or pooling a 1-pixel map).
    pub fn trace_features(&self) -> Result<usize, String> {
        let (mut c, mut h, mut w) = self.input;
        let mut features = None;
        for (i, layer) in self.layers.iter().enumerate() {
            match *layer {
                SpecLayer::ConvBnRelu {
                    cout,
                    kernel,
                    stride,
                    pad,
                } => {
                    if h + 2 * pad < kernel || w + 2 * pad < kernel || stride == 0 {
                        return Err(format!(
                            "layer {i}: {kernel}×{kernel} conv (stride {stride}, pad {pad}) \
                             does not fit a {h}×{w} input"
                        ));
                    }
                    h = (h + 2 * pad - kernel) / stride + 1;
                    w = (w + 2 * pad - kernel) / stride + 1;
                    c = cout;
                }
                SpecLayer::AvgPool => {
                    if h < 2 || w < 2 {
                        return Err(format!("layer {i}: cannot 2×2-pool a {h}×{w} map"));
                    }
                    h /= 2;
                    w /= 2;
                }
                SpecLayer::Flatten => features = Some(c * h * w),
                SpecLayer::Linear { outf, .. } => features = Some(outf),
            }
        }
        Ok(features.unwrap_or(c * h * w))
    }

    /// Builds the live model: conv blocks draw weights from a seeded RNG in
    /// spec order, so two builds with the same seed are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec's shapes do not compose (see
    /// [`ModelSpec::trace_features`]).
    pub fn build(&self, seed: u64) -> Result<Sequential, String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut c, mut h, mut w) = self.input;
        let mut flattened: Option<usize> = None;
        let mut layers = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            match *layer {
                SpecLayer::ConvBnRelu {
                    cout,
                    kernel,
                    stride,
                    pad,
                } => {
                    if h + 2 * pad < kernel || w + 2 * pad < kernel || stride == 0 {
                        return Err(format!(
                            "layer {i}: {kernel}×{kernel} conv (stride {stride}, pad {pad}) \
                             does not fit a {h}×{w} input"
                        ));
                    }
                    layers.push(Layer::Conv2d(Conv2d::new(
                        c, cout, kernel, stride, pad, false, &mut rng,
                    )));
                    layers.push(Layer::BatchNorm2d(BatchNorm2d::new(cout)));
                    layers.push(Layer::Relu(Relu::new()));
                    h = (h + 2 * pad - kernel) / stride + 1;
                    w = (w + 2 * pad - kernel) / stride + 1;
                    c = cout;
                }
                SpecLayer::AvgPool => {
                    if h < 2 || w < 2 {
                        return Err(format!("layer {i}: cannot 2×2-pool a {h}×{w} map"));
                    }
                    layers.push(Layer::AvgPool2d(AvgPool2d::new()));
                    h /= 2;
                    w /= 2;
                }
                SpecLayer::Flatten => {
                    layers.push(Layer::Flatten(Flatten::new()));
                    flattened = Some(c * h * w);
                }
                SpecLayer::Linear { outf, relu } => {
                    let inf = flattened.take().unwrap_or(c * h * w);
                    layers.push(Layer::Linear(Linear::new(inf, outf, &mut rng)));
                    if relu {
                        layers.push(Layer::Relu(Relu::new()));
                    }
                    // Chained classifier stages feed each other.
                    flattened = Some(outf);
                }
            }
        }
        Ok(Sequential::new(layers))
    }
}

/// Topology specs: the thumbnail builders used with the synthetic datasets
/// and the paper-scale evaluation networks (§IV), side by side.
///
/// The paper-scale specs are what `geo_arch::NetworkDesc::{cnn4_cifar,
/// lenet5_mnist, vgg16_scaled_cifar}` lower — the performance tables and
/// the functional engine share these definitions.
pub mod spec {
    use super::{ModelSpec, SpecLayer};

    /// Thumbnail CNN-4 (three conv blocks, widths 16/24/32, one FC).
    ///
    /// # Panics
    ///
    /// Panics unless `size` is nonzero and divisible by 4 (two pooling
    /// stages), *before* any shape composition — a spec returned from
    /// here always builds.
    pub fn cnn4(channels: usize, size: usize, classes: usize) -> ModelSpec {
        assert!(
            size != 0 && size.is_multiple_of(4),
            "cnn4 needs a nonzero size divisible by 4, got {size}"
        );
        ModelSpec {
            name: "CNN-4 (thumbnail)".into(),
            input: (channels, size, size),
            layers: vec![
                SpecLayer::ConvBnRelu {
                    cout: 16,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                SpecLayer::AvgPool,
                SpecLayer::ConvBnRelu {
                    cout: 24,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                SpecLayer::AvgPool,
                SpecLayer::ConvBnRelu {
                    cout: 32,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                SpecLayer::Flatten,
                SpecLayer::Linear {
                    outf: classes,
                    relu: false,
                },
            ],
        }
    }

    /// Thumbnail LeNet-5 (two conv blocks, widths 6/12, two FCs).
    ///
    /// # Panics
    ///
    /// Panics unless `size` is nonzero and divisible by 4, before any
    /// shape composition.
    pub fn lenet5(channels: usize, size: usize, classes: usize) -> ModelSpec {
        assert!(
            size != 0 && size.is_multiple_of(4),
            "lenet5 needs a nonzero size divisible by 4, got {size}"
        );
        ModelSpec {
            name: "LeNet-5 (thumbnail)".into(),
            input: (channels, size, size),
            layers: vec![
                SpecLayer::ConvBnRelu {
                    cout: 6,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                SpecLayer::AvgPool,
                SpecLayer::ConvBnRelu {
                    cout: 12,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                SpecLayer::AvgPool,
                SpecLayer::Flatten,
                SpecLayer::Linear {
                    outf: 32,
                    relu: true,
                },
                SpecLayer::Linear {
                    outf: classes,
                    relu: false,
                },
            ],
        }
    }

    /// Thumbnail VGG-16 (thirteen 3×3 convolutions in five blocks, reduced
    /// widths, two-layer classifier).
    ///
    /// # Panics
    ///
    /// Panics unless `size` is nonzero and divisible by 8 (three pooling
    /// stages). The check lives here, *before* shape composition: a
    /// `size` of 0 is divisible by 8 but underflows the first conv, and
    /// used to surface as the builder's unrelated "spec shapes compose"
    /// panic instead of this documented message.
    pub fn vgg16_small(channels: usize, size: usize, classes: usize) -> ModelSpec {
        assert!(
            size != 0 && size.is_multiple_of(8),
            "vgg16_small needs a nonzero size divisible by 8, got {size}"
        );
        let widths: [&[usize]; 5] = [
            &[8, 8],
            &[16, 16],
            &[24, 24, 24],
            &[32, 32, 32],
            &[32, 32, 32],
        ];
        let mut layers = Vec::new();
        for (block, ws) in widths.iter().enumerate() {
            for &w in ws.iter() {
                layers.push(SpecLayer::ConvBnRelu {
                    cout: w,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                });
            }
            // Pool after the first three blocks: size/8 spatial at the end.
            if block < 3 {
                layers.push(SpecLayer::AvgPool);
            }
        }
        layers.push(SpecLayer::Flatten);
        layers.push(SpecLayer::Linear {
            outf: 64,
            relu: true,
        });
        layers.push(SpecLayer::Linear {
            outf: classes,
            relu: false,
        });
        ModelSpec {
            name: "VGG-16 (thumbnail)".into(),
            input: (channels, size, size),
            layers,
        }
    }

    /// Paper-scale CNN-4 on CIFAR-10 (CMSIS-NN): three 5×5 convolutions
    /// with pooling, then the classifier FC.
    pub fn cnn4_cifar() -> ModelSpec {
        ModelSpec {
            name: "CNN-4 (CIFAR-10)".into(),
            input: (3, 32, 32),
            layers: vec![
                SpecLayer::ConvBnRelu {
                    cout: 32,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                },
                SpecLayer::AvgPool,
                SpecLayer::ConvBnRelu {
                    cout: 32,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                },
                SpecLayer::AvgPool,
                SpecLayer::ConvBnRelu {
                    cout: 64,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                },
                SpecLayer::AvgPool,
                SpecLayer::Flatten,
                SpecLayer::Linear {
                    outf: 10,
                    relu: false,
                },
            ],
        }
    }

    /// Paper-scale LeNet-5 on MNIST (2 conv + 3 FC).
    pub fn lenet5_mnist() -> ModelSpec {
        ModelSpec {
            name: "LeNet-5 (MNIST)".into(),
            input: (1, 28, 28),
            layers: vec![
                SpecLayer::ConvBnRelu {
                    cout: 6,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                },
                SpecLayer::AvgPool,
                SpecLayer::ConvBnRelu {
                    cout: 16,
                    kernel: 5,
                    stride: 1,
                    pad: 0,
                },
                SpecLayer::AvgPool,
                SpecLayer::Flatten,
                SpecLayer::Linear {
                    outf: 120,
                    relu: true,
                },
                SpecLayer::Linear {
                    outf: 84,
                    relu: true,
                },
                SpecLayer::Linear {
                    outf: 10,
                    relu: false,
                },
            ],
        }
    }

    /// Paper-scale VGG-16 with the paper's downscaling: X/Y input
    /// dimensions halved (16×16 input) and the FC layers reduced to 512.
    pub fn vgg16_scaled_cifar() -> ModelSpec {
        let widths: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
        let mut layers = Vec::new();
        for (block, &(w, reps)) in widths.iter().enumerate() {
            for _ in 0..reps {
                layers.push(SpecLayer::ConvBnRelu {
                    cout: w,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                });
            }
            if block < 4 {
                layers.push(SpecLayer::AvgPool);
            }
        }
        layers.push(SpecLayer::Flatten);
        layers.push(SpecLayer::Linear {
            outf: 512,
            relu: true,
        });
        layers.push(SpecLayer::Linear {
            outf: 512,
            relu: true,
        });
        layers.push(SpecLayer::Linear {
            outf: 10,
            relu: false,
        });
        ModelSpec {
            name: "VGG-16 (scaled, CIFAR-10)".into(),
            input: (3, 16, 16),
            layers,
        }
    }
}

/// The 4-layer CNN (CNN-4): three conv blocks and one classifier FC.
/// Average pooling follows the first two blocks, so those layers run the
/// shorter `sp` stream length under GEO's computation skipping.
///
/// # Panics
///
/// Panics unless `size` is divisible by 4 (two pooling stages).
///
/// # Examples
///
/// ```
/// let model = geo_nn::models::cnn4(3, 8, 10, 0);
/// assert_eq!(model.layers().len(), 13); // 3×(conv+bn+relu) + 2 pools + flatten + fc
/// ```
pub fn cnn4(channels: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    spec::cnn4(channels, size, classes)
        .build(seed)
        .expect("thumbnail cnn4 spec shapes compose")
}

/// LeNet-5, scaled for thumbnail inputs: two conv+pool blocks and a
/// two-layer classifier.
///
/// # Panics
///
/// Panics unless `size` is divisible by 4.
pub fn lenet5(channels: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    spec::lenet5(channels, size, classes)
        .build(seed)
        .expect("thumbnail lenet5 spec shapes compose")
}

/// VGG-16 with downscaled spatial dimensions and channel widths: thirteen
/// 3×3 convolutions in five blocks (2-2-3-3-3) with pooling after the first
/// three blocks, then a reduced two-layer classifier.
///
/// # Panics
///
/// Panics unless `size` is nonzero and divisible by 8 (three pooling
/// stages) — validated by [`spec::vgg16_small`] before shape composition,
/// so the builder's `.expect` on [`ModelSpec::build`] is unreachable for
/// any spec this function constructs.
pub fn vgg16_small(channels: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    spec::vgg16_small(channels, size, classes)
        .build(seed)
        .expect("thumbnail vgg16 spec shapes compose")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn cnn4_runs_end_to_end() {
        let mut m = cnn4(3, 8, 10, 0);
        let y = m.forward(&Tensor::full(&[2, 3, 8, 8], 0.5)).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        // 3 convs + 1 FC = the "4-layer" CNN.
        let convs = m.layers().iter().filter(|l| l.kind() == "conv2d").count();
        let fcs = m.layers().iter().filter(|l| l.kind() == "linear").count();
        assert_eq!((convs, fcs), (3, 1));
    }

    #[test]
    fn lenet5_runs_end_to_end() {
        let mut m = lenet5(1, 8, 10, 0);
        let y = m.forward(&Tensor::full(&[1, 1, 8, 8], 0.5)).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn vgg16_small_has_thirteen_convs() {
        let mut m = vgg16_small(3, 8, 10, 0);
        let convs = m.layers().iter().filter(|l| l.kind() == "conv2d").count();
        assert_eq!(convs, 13);
        let y = m.forward(&Tensor::full(&[1, 3, 8, 8], 0.5)).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn builders_are_seeded() {
        let mut a = cnn4(3, 8, 10, 42);
        let mut b = cnn4(3, 8, 10, 42);
        assert_eq!(a.parameter_count(), b.parameter_count());
        let pa = a.params_mut();
        let pb = b.params_mut();
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert_eq!(x.value.data(), y.value.data());
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn cnn4_rejects_bad_sizes() {
        let _ = cnn4(3, 10, 10, 0);
    }

    #[test]
    #[should_panic(expected = "divisible by 8")]
    fn vgg_rejects_bad_sizes() {
        let _ = vgg16_small(3, 12, 10, 0);
    }

    /// Size 0 *is* divisible by 8; without the nonzero check it slipped
    /// past the old assert and underflowed the first conv, panicking with
    /// the builder's unrelated "spec shapes compose" message. The spec
    /// must reject it with the documented message before composition.
    #[test]
    #[should_panic(expected = "nonzero size divisible by 8")]
    fn vgg_rejects_size_zero_before_shape_composition() {
        let _ = spec::vgg16_small(3, 0, 10);
    }

    /// The paper-scale VGG-16 spec builds: every downstream consumer
    /// (prepare, compile, serve) starts from this call succeeding.
    #[test]
    fn vgg16_scaled_cifar_builds() {
        for seed in [0u64, 1, 42] {
            let model = spec::vgg16_scaled_cifar()
                .build(seed)
                .expect("paper-scale vgg16 spec shapes compose");
            let convs = model
                .layers()
                .iter()
                .filter(|l| l.kind() == "conv2d")
                .count();
            let pools = model
                .layers()
                .iter()
                .filter(|l| l.kind() == "avgpool2d")
                .count();
            assert_eq!((convs, pools), (13, 4));
        }
    }

    #[test]
    fn convolutions_have_no_bias() {
        let m = cnn4(3, 8, 10, 0);
        for l in m.layers() {
            if let Layer::Conv2d(c) = l {
                assert!(c.bias.is_none(), "BN absorbs the conv bias");
            }
        }
    }

    #[test]
    fn spec_build_rejects_underflowing_shapes() {
        let bad = ModelSpec {
            name: "bad".into(),
            input: (1, 2, 2),
            layers: vec![
                SpecLayer::AvgPool,
                SpecLayer::AvgPool, // 1×1 map cannot pool again
            ],
        };
        assert!(bad.build(0).is_err());
        assert!(bad.trace_features().is_err());
        let bad_conv = ModelSpec {
            name: "bad-conv".into(),
            input: (1, 3, 3),
            layers: vec![SpecLayer::ConvBnRelu {
                cout: 4,
                kernel: 5,
                stride: 1,
                pad: 0,
            }],
        };
        assert!(bad_conv.build(0).is_err());
    }

    #[test]
    fn paper_specs_build_consistent_classifier_widths() {
        // The paper LeNet-5 flattens 16×5×5 = 400 features into FC-120.
        let spec = spec::lenet5_mnist();
        let model = spec.build(0).unwrap();
        let first_fc = model
            .layers()
            .iter()
            .find_map(|l| match l {
                Layer::Linear(lin) => Some((lin.input_features(), lin.output_features())),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_fc, (400, 120));
    }

    #[test]
    fn spec_traces_match_builders() {
        for (spec, expect) in [
            (spec::cnn4(3, 8, 10), 10),
            (spec::lenet5(1, 8, 10), 10),
            (spec::vgg16_small(3, 8, 10), 10),
            (spec::cnn4_cifar(), 10),
            (spec::lenet5_mnist(), 10),
            (spec::vgg16_scaled_cifar(), 10),
        ] {
            assert_eq!(spec.trace_features().unwrap(), expect, "{}", spec.name);
        }
    }
}
