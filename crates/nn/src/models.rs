//! Builders for the paper's evaluation networks (§IV), scaled to the
//! synthetic thumbnail datasets.
//!
//! * [`cnn4`] — the 4-layer CMSIS-NN-style CNN used for CIFAR-10 and SVHN
//!   (3 conv + 1 FC), with average pooling after the first two convolutions.
//! * [`lenet5`] — LeNet-5 for MNIST (2 conv + 2 FC here).
//! * [`vgg16_small`] — VGG-16 with downscaled spatial dimensions and
//!   reduced FC width, as the paper itself does ("X/Y input dimensions of
//!   each layer downscaled, FC-512 instead of FC-4096"); here channel widths
//!   are reduced further to keep SC simulation tractable.
//!
//! All convolutions are bias-free: the batch-norm shift absorbs the bias,
//! which matches GEO's near-memory BN hardware.

use crate::layers::{AvgPool2d, BatchNorm2d, Conv2d, Flatten, Layer, Linear, Relu};
use crate::model::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn conv_bn_relu(cin: usize, cout: usize, rng: &mut StdRng) -> Vec<Layer> {
    vec![
        Layer::Conv2d(Conv2d::new(cin, cout, 3, 1, 1, false, rng)),
        Layer::BatchNorm2d(BatchNorm2d::new(cout)),
        Layer::Relu(Relu::new()),
    ]
}

/// The 4-layer CNN (CNN-4): three conv blocks and one classifier FC.
/// Average pooling follows the first two blocks, so those layers run the
/// shorter `sp` stream length under GEO's computation skipping.
///
/// # Panics
///
/// Panics unless `size` is divisible by 4 (two pooling stages).
///
/// # Examples
///
/// ```
/// let model = geo_nn::models::cnn4(3, 8, 10, 0);
/// assert_eq!(model.layers().len(), 13); // 3×(conv+bn+relu) + 2 pools + flatten + fc
/// ```
pub fn cnn4(channels: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    assert!(
        size.is_multiple_of(4),
        "cnn4 needs size divisible by 4, got {size}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(channels, 16, &mut rng));
    layers.push(Layer::AvgPool2d(AvgPool2d::new()));
    layers.extend(conv_bn_relu(16, 24, &mut rng));
    layers.push(Layer::AvgPool2d(AvgPool2d::new()));
    layers.extend(conv_bn_relu(24, 32, &mut rng));
    layers.push(Layer::Flatten(Flatten::new()));
    let spatial = size / 4;
    layers.push(Layer::Linear(Linear::new(
        32 * spatial * spatial,
        classes,
        &mut rng,
    )));
    Sequential::new(layers)
}

/// LeNet-5, scaled for thumbnail inputs: two conv+pool blocks and a
/// two-layer classifier.
///
/// # Panics
///
/// Panics unless `size` is divisible by 4.
pub fn lenet5(channels: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    assert!(
        size.is_multiple_of(4),
        "lenet5 needs size divisible by 4, got {size}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers = Vec::new();
    layers.extend(conv_bn_relu(channels, 6, &mut rng));
    layers.push(Layer::AvgPool2d(AvgPool2d::new()));
    layers.extend(conv_bn_relu(6, 12, &mut rng));
    layers.push(Layer::AvgPool2d(AvgPool2d::new()));
    layers.push(Layer::Flatten(Flatten::new()));
    let spatial = size / 4;
    layers.push(Layer::Linear(Linear::new(
        12 * spatial * spatial,
        32,
        &mut rng,
    )));
    layers.push(Layer::Relu(Relu::new()));
    layers.push(Layer::Linear(Linear::new(32, classes, &mut rng)));
    Sequential::new(layers)
}

/// VGG-16 with downscaled spatial dimensions and channel widths: thirteen
/// 3×3 convolutions in five blocks (2-2-3-3-3) with pooling after the first
/// three blocks, then a reduced two-layer classifier.
///
/// # Panics
///
/// Panics unless `size` is divisible by 8 (three pooling stages).
pub fn vgg16_small(channels: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    assert!(
        size.is_multiple_of(8),
        "vgg16_small needs size divisible by 8, got {size}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let widths: [&[usize]; 5] = [
        &[8, 8],
        &[16, 16],
        &[24, 24, 24],
        &[32, 32, 32],
        &[32, 32, 32],
    ];
    let mut layers = Vec::new();
    let mut cin = channels;
    for (block, ws) in widths.iter().enumerate() {
        for &w in ws.iter() {
            layers.extend(conv_bn_relu(cin, w, &mut rng));
            cin = w;
        }
        // Pool after the first three blocks: size/8 spatial at the end.
        if block < 3 {
            layers.push(Layer::AvgPool2d(AvgPool2d::new()));
        }
    }
    layers.push(Layer::Flatten(Flatten::new()));
    let spatial = size / 8;
    layers.push(Layer::Linear(Linear::new(
        32 * spatial * spatial,
        64,
        &mut rng,
    )));
    layers.push(Layer::Relu(Relu::new()));
    layers.push(Layer::Linear(Linear::new(64, classes, &mut rng)));
    Sequential::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn cnn4_runs_end_to_end() {
        let mut m = cnn4(3, 8, 10, 0);
        let y = m.forward(&Tensor::full(&[2, 3, 8, 8], 0.5)).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        // 3 convs + 1 FC = the "4-layer" CNN.
        let convs = m.layers().iter().filter(|l| l.kind() == "conv2d").count();
        let fcs = m.layers().iter().filter(|l| l.kind() == "linear").count();
        assert_eq!((convs, fcs), (3, 1));
    }

    #[test]
    fn lenet5_runs_end_to_end() {
        let mut m = lenet5(1, 8, 10, 0);
        let y = m.forward(&Tensor::full(&[1, 1, 8, 8], 0.5)).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn vgg16_small_has_thirteen_convs() {
        let mut m = vgg16_small(3, 8, 10, 0);
        let convs = m.layers().iter().filter(|l| l.kind() == "conv2d").count();
        assert_eq!(convs, 13);
        let y = m.forward(&Tensor::full(&[1, 3, 8, 8], 0.5)).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn builders_are_seeded() {
        let mut a = cnn4(3, 8, 10, 42);
        let mut b = cnn4(3, 8, 10, 42);
        assert_eq!(a.parameter_count(), b.parameter_count());
        let pa = a.params_mut();
        let pb = b.params_mut();
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert_eq!(x.value.data(), y.value.data());
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn cnn4_rejects_bad_sizes() {
        let _ = cnn4(3, 10, 10, 0);
    }

    #[test]
    #[should_panic(expected = "divisible by 8")]
    fn vgg_rejects_bad_sizes() {
        let _ = vgg16_small(3, 12, 10, 0);
    }

    #[test]
    fn convolutions_have_no_bias() {
        let m = cnn4(3, 8, 10, 0);
        for l in m.layers() {
            if let Layer::Conv2d(c) = l {
                assert!(c.bias.is_none(), "BN absorbs the conv bias");
            }
        }
    }
}
