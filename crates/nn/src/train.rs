//! Training and evaluation loops.
//!
//! The float loop here trains the fixed-point baselines; the SC-in-the-loop
//! variant (SC forward, float backward) lives in `geo-core`, which reuses
//! these types.

use crate::datasets::Dataset;
use crate::error::NnError;
use crate::loss::{argmax_rows, softmax_cross_entropy};
use crate::model::Sequential;
use crate::optim::Optimizer;
use crate::quant::{forward_quantized, QuantConfig};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 16,
            seed: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
}

impl History {
    /// The final epoch's mean loss.
    pub fn final_loss(&self) -> Option<f32> {
        self.losses.last().copied()
    }
}

/// Shuffled index order for one epoch.
pub(crate) fn epoch_order(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

/// Gathers samples `idx` into a batch tensor + labels.
pub(crate) fn gather(ds: &Dataset, idx: &[usize]) -> Result<(Tensor, Vec<usize>), NnError> {
    let (c, h, w) = ds.image_shape();
    let sz = c * h * w;
    let mut data = Vec::with_capacity(idx.len() * sz);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(&ds.images.data()[i * sz..(i + 1) * sz]);
        labels.push(ds.labels[i]);
    }
    let batch = Tensor::from_vec(vec![idx.len(), c, h, w], data)?;
    Ok((batch, labels))
}

/// Trains `model` in float with the given optimizer.
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn train(
    model: &mut Sequential,
    dataset: &Dataset,
    optimizer: &mut Optimizer,
    config: &TrainConfig,
) -> Result<History, NnError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = History::default();
    model.set_training(true);
    for _ in 0..config.epochs {
        let order = epoch_order(dataset.len(), &mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(config.batch_size) {
            let (batch, labels) = gather(dataset, chunk)?;
            let logits = model.forward(&batch)?;
            let out = softmax_cross_entropy(&logits, &labels)?;
            model.backward(&out.grad)?;
            optimizer.step(&mut model.params_mut());
            epoch_loss += out.loss;
            batches += 1;
        }
        history.losses.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(history)
}

/// Top-1 accuracy of the float model on `dataset` (eval mode).
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn evaluate(model: &mut Sequential, dataset: &Dataset) -> Result<f32, NnError> {
    model.set_training(false);
    let mut correct = 0usize;
    let batch = 32usize;
    let mut i = 0;
    while i < dataset.len() {
        let n = batch.min(dataset.len() - i);
        let (x, labels) = dataset.batch(i, n);
        let logits = model.forward(&x)?;
        for (pred, label) in argmax_rows(&logits).into_iter().zip(&labels) {
            if pred == *label {
                correct += 1;
            }
        }
        i += n;
    }
    model.set_training(true);
    Ok(correct as f32 / dataset.len() as f32)
}

/// Full confusion matrix of the float model on `dataset` (eval mode).
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn evaluate_confusion(
    model: &mut Sequential,
    dataset: &Dataset,
) -> Result<crate::metrics::ConfusionMatrix, NnError> {
    model.set_training(false);
    let mut matrix = crate::metrics::ConfusionMatrix::new(dataset.classes);
    let batch = 32usize;
    let mut i = 0;
    while i < dataset.len() {
        let n = batch.min(dataset.len() - i);
        let (x, labels) = dataset.batch(i, n);
        let logits = model.forward(&x)?;
        for (pred, label) in argmax_rows(&logits).into_iter().zip(&labels) {
            matrix.record(*label, pred);
        }
        i += n;
    }
    model.set_training(true);
    Ok(matrix)
}

/// Top-1 accuracy with a fake-quantized datapath (the Eyeriss baseline).
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn evaluate_quantized(
    model: &mut Sequential,
    dataset: &Dataset,
    config: QuantConfig,
) -> Result<f32, NnError> {
    model.set_training(false);
    let mut correct = 0usize;
    let batch = 32usize;
    let mut i = 0;
    while i < dataset.len() {
        let n = batch.min(dataset.len() - i);
        let (x, labels) = dataset.batch(i, n);
        let logits = forward_quantized(model, &x, config)?;
        for (pred, label) in argmax_rows(&logits).into_iter().zip(&labels) {
            if pred == *label {
                correct += 1;
            }
        }
        i += n;
    }
    model.set_training(true);
    Ok(correct as f32 / dataset.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate, DatasetSpec};
    use crate::models;

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let (train_ds, test_ds) = generate(&DatasetSpec::mnist_like(1).with_samples(120, 60));
        let mut model = models::lenet5(1, 8, 10, 0);
        let mut opt = Optimizer::paper_default();
        let config = TrainConfig {
            epochs: 12,
            batch_size: 16,
            seed: 0,
        };
        let history = train(&mut model, &train_ds, &mut opt, &config).unwrap();
        assert!(history.final_loss().unwrap() < history.losses[0]);
        let acc = evaluate(&mut model, &test_ds).unwrap();
        assert!(acc > 0.3, "accuracy {acc} should beat 10-class chance");
    }

    #[test]
    fn quantized_evaluation_tracks_float_at_8_bits() {
        let (train_ds, test_ds) = generate(&DatasetSpec::mnist_like(2).with_samples(120, 60));
        let mut model = models::lenet5(1, 8, 10, 1);
        let mut opt = Optimizer::paper_default();
        train(
            &mut model,
            &train_ds,
            &mut opt,
            &TrainConfig {
                epochs: 10,
                batch_size: 16,
                seed: 0,
            },
        )
        .unwrap();
        let float_acc = evaluate(&mut model, &test_ds).unwrap();
        let mut q8 = model.clone();
        crate::quant::quantize_weights(&mut q8, 8);
        let q8_acc = evaluate_quantized(&mut q8, &test_ds, QuantConfig::uniform(8)).unwrap();
        assert!(
            (float_acc - q8_acc).abs() < 0.15,
            "8-bit ({q8_acc}) should track float ({float_acc})"
        );
    }

    #[test]
    fn confusion_matrix_agrees_with_accuracy() {
        let (train_ds, test_ds) = generate(&DatasetSpec::mnist_like(5).with_samples(96, 48));
        let mut model = models::lenet5(1, 8, 10, 4);
        let mut opt = Optimizer::paper_default();
        train(
            &mut model,
            &train_ds,
            &mut opt,
            &TrainConfig {
                epochs: 6,
                batch_size: 16,
                seed: 0,
            },
        )
        .unwrap();
        let acc = evaluate(&mut model, &test_ds).unwrap();
        let matrix = evaluate_confusion(&mut model, &test_ds).unwrap();
        assert!((matrix.accuracy() - acc).abs() < 1e-6);
        assert_eq!(matrix.total() as usize, test_ds.len());
    }

    #[test]
    fn history_and_config_defaults() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0 && c.batch_size > 0);
        assert_eq!(History::default().final_loss(), None);
    }

    #[test]
    fn epoch_order_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let order = epoch_order(50, &mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
