//! Error types for the neural-network substrate.

use std::fmt;

/// Errors produced when building or running networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Tensor data length does not match the requested shape.
    ShapeDataMismatch {
        /// Product of the requested shape.
        expected: usize,
        /// Provided number of elements.
        actual: usize,
    },
    /// An operation received a tensor of the wrong shape.
    ShapeMismatch {
        /// Human-readable description of the expectation.
        expected: String,
        /// The offending shape.
        actual: Vec<usize>,
    },
    /// A layer or model was used before required state existed (e.g.
    /// backward before forward).
    MissingForward,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeDataMismatch { expected, actual } => {
                write!(f, "shape requires {expected} elements, got {actual}")
            }
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "expected {expected}, got shape {actual:?}")
            }
            NnError::MissingForward => {
                write!(f, "backward called before forward cached an input")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = NnError::ShapeDataMismatch {
            expected: 12,
            actual: 10,
        };
        assert!(e.to_string().contains("12"));
        let e = NnError::ShapeMismatch {
            expected: "4-d input".into(),
            actual: vec![2, 3],
        };
        assert!(e.to_string().contains("[2, 3]"));
        assert!(!NnError::MissingForward.to_string().is_empty());
    }
}
