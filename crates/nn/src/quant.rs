//! Fixed-point fake quantization, used to model the Eyeriss 4/8-bit
//! baselines of Table I ("Eyeriss results are retrained at respective
//! precision").

use crate::error::NnError;
use crate::layers::Layer;
use crate::model::Sequential;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Fixed-point quantization settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight bit width.
    pub weight_bits: u8,
    /// Activation bit width.
    pub activation_bits: u8,
}

impl QuantConfig {
    /// `n`-bit weights and activations (the paper's 4-bit / 8-bit points).
    pub fn uniform(bits: u8) -> Self {
        QuantConfig {
            weight_bits: bits,
            activation_bits: bits,
        }
    }
}

/// Symmetric per-tensor fake quantization to `bits` bits: values are
/// rounded to the nearest of `2^bits` levels spanning `±max_abs`.
///
/// Returns the input unchanged for an all-zero tensor.
pub fn fake_quantize(t: &Tensor, bits: u8) -> Tensor {
    let max = t.max_abs();
    if max == 0.0 {
        return t.clone();
    }
    let levels = (1u32 << (bits - 1)) as f32; // signed levels per side
    t.map(|x| (x / max * levels).round().clamp(-levels, levels) / levels * max)
}

/// Quantizes the weights of every conv/linear layer in place.
pub fn quantize_weights(model: &mut Sequential, bits: u8) {
    for layer in model.layers_mut() {
        match layer {
            Layer::Conv2d(c) => {
                c.weight.value = fake_quantize(&c.weight.value, bits);
                if let Some(b) = &mut c.bias {
                    b.value = fake_quantize(&b.value, bits);
                }
            }
            Layer::Linear(l) => {
                l.weight.value = fake_quantize(&l.weight.value, bits);
                l.bias.value = fake_quantize(&l.bias.value, bits);
            }
            _ => {}
        }
    }
}

/// Forward pass with fake-quantized activations after every layer,
/// modeling a fixed-point datapath. Weights should already be quantized
/// (see [`quantize_weights`]).
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn forward_quantized(
    model: &mut Sequential,
    input: &Tensor,
    config: QuantConfig,
) -> Result<Tensor, NnError> {
    let mut x = fake_quantize(input, config.activation_bits);
    for layer in model.layers_mut() {
        x = layer.forward(&x)?;
        x = fake_quantize(&x, config.activation_bits);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fake_quantize_is_idempotent() {
        let t = Tensor::from_vec(vec![4], vec![0.11, -0.52, 0.97, 0.0]).unwrap();
        let q1 = fake_quantize(&t, 4);
        let q2 = fake_quantize(&q1, 4);
        for (a, b) in q1.data().iter().zip(q2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn error_shrinks_with_more_bits() {
        let t = Tensor::from_vec(vec![5], vec![0.13, -0.77, 0.42, 0.91, -0.05]).unwrap();
        let err = |bits: u8| {
            let q = fake_quantize(&t, bits);
            t.data()
                .iter()
                .zip(q.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(8) < err(4));
        assert!(err(4) < err(2));
    }

    #[test]
    fn max_value_is_preserved() {
        let t = Tensor::from_vec(vec![2], vec![1.0, -0.5]).unwrap();
        let q = fake_quantize(&t, 4);
        assert_eq!(q.data()[0], 1.0);
    }

    #[test]
    fn zero_tensor_is_unchanged() {
        let t = Tensor::zeros(&[3]);
        assert_eq!(fake_quantize(&t, 4), t);
    }

    #[test]
    fn quantize_weights_touches_conv_and_linear() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, true, &mut rng)),
            Layer::Linear(Linear::new(8, 2, &mut rng)),
        ]);
        let before: Vec<f32> = model.params_mut()[0].value.data().to_vec();
        quantize_weights(&mut model, 2);
        let after: Vec<f32> = model.params_mut()[0].value.data().to_vec();
        assert_ne!(before, after, "2-bit quantization must change weights");
        // 2-bit symmetric grid: {-1, -1/2, 0, 1/2, 1}·max — at most 5 levels
        // (normalize -0.0 to 0.0 before comparing).
        let distinct: std::collections::HashSet<String> =
            after.iter().map(|x| format!("{:.6}", x + 0.0)).collect();
        assert!(distinct.len() <= 6, "levels: {distinct:?}");
    }

    #[test]
    fn forward_quantized_runs_a_model() {
        let mut model = crate::models::cnn4(1, 8, 4, 3);
        model.set_training(false);
        quantize_weights(&mut model, 8);
        let out = forward_quantized(
            &mut model,
            &Tensor::full(&[1, 1, 8, 8], 0.5),
            QuantConfig::uniform(8),
        )
        .unwrap();
        assert_eq!(out.shape(), &[1, 4]);
        assert!(out.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn uniform_config() {
        let c = QuantConfig::uniform(4);
        assert_eq!(c.weight_bits, 4);
        assert_eq!(c.activation_bits, 4);
    }
}
