//! Sequential network container.

use crate::error::NnError;
use crate::layers::Layer;
use crate::tensor::{Param, Tensor};
use serde::{Deserialize, Serialize};

/// A feed-forward stack of [`Layer`]s.
///
/// # Examples
///
/// ```
/// use geo_nn::{Layer, Linear, Relu, Sequential, Tensor};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), geo_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Sequential::new(vec![
///     Layer::Linear(Linear::new(4, 8, &mut rng)),
///     Layer::Relu(Relu::new()),
///     Layer::Linear(Linear::new(8, 2, &mut rng)),
/// ]);
/// let out = model.forward(&Tensor::zeros(&[1, 4]))?;
/// assert_eq!(out.shape(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Wraps an ordered list of layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Sequential { layers }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the SC engine to drive
    /// per-layer forward passes and by optimizers for parameters).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Full float forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Full backward pass from the loss gradient; accumulates parameter
    /// gradients and returns the input gradient.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (notably [`NnError::MissingForward`]).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// All learnable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.grad.zero();
        }
    }

    /// Switches every layer between training and evaluation behavior.
    pub fn set_training(&mut self, training: bool) {
        for layer in &mut self.layers {
            layer.set_training(training);
        }
    }

    /// Total learnable parameter count.
    pub fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// One-line-per-layer structural summary.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| format!("{i}: {}", l.kind()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(5);
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, true, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(2 * 4 * 4, 3, &mut rng)),
        ])
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = tiny_model();
        let x = Tensor::full(&[2, 1, 4, 4], 0.3);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        let gx = m.backward(&Tensor::full(&[2, 3], 1.0)).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut m = tiny_model();
        let x = Tensor::full(&[1, 1, 4, 4], 1.0);
        m.forward(&x).unwrap();
        m.backward(&Tensor::full(&[1, 3], 1.0)).unwrap();
        assert!(m.params_mut().iter().any(|p| p.grad.max_abs() > 0.0));
        m.zero_grads();
        assert!(m.params_mut().iter().all(|p| p.grad.max_abs() == 0.0));
    }

    #[test]
    fn parameter_count_matches_structure() {
        let mut m = tiny_model();
        // conv: 2·1·3·3 + 2 bias; linear: 3·32 + 3 bias.
        assert_eq!(m.parameter_count(), 18 + 2 + 96 + 3);
    }

    #[test]
    fn summary_lists_layers() {
        let m = tiny_model();
        let s = m.summary();
        assert!(s.contains("0: conv2d"));
        assert!(s.contains("3: linear"));
    }
}
