//! Softmax cross-entropy loss.

use crate::error::NnError;
use crate::tensor::Tensor;

/// Loss value and gradient of softmax cross-entropy over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient with respect to the logits, `(N, classes)`.
    pub grad: Tensor,
}

/// Computes mean softmax cross-entropy and its gradient for logits
/// `(N, classes)` against integer `labels`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if `logits` is not 2-d with one row
/// per label, or a label is out of range.
///
/// # Examples
///
/// ```
/// use geo_nn::{loss::softmax_cross_entropy, Tensor};
///
/// # fn main() -> Result<(), geo_nn::NnError> {
/// let logits = Tensor::from_vec(vec![1, 2], vec![5.0, -5.0])?;
/// let out = softmax_cross_entropy(&logits, &[0])?;
/// assert!(out.loss < 0.01); // confident and correct
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput, NnError> {
    let s = logits.shape();
    if s.len() != 2 || s[0] != labels.len() {
        return Err(NnError::ShapeMismatch {
            expected: format!("({}, classes) logits", labels.len()),
            actual: s.to_vec(),
        });
    }
    let (n, classes) = (s[0], s[1]);
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NnError::ShapeMismatch {
            expected: format!("labels < {classes}"),
            actual: vec![bad],
        });
    }
    let mut grad = Tensor::zeros(s);
    let mut total = 0.0f32;
    for (b, &label) in labels.iter().enumerate() {
        let row: Vec<f32> = (0..classes).map(|c| logits.at2(b, c)).collect();
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        total += -(exps[label] / sum).ln();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / sum;
            let target = if c == label { 1.0 } else { 0.0 };
            grad.set2(b, c, (p - target) / n as f32);
        }
    }
    Ok(LossOutput {
        loss: total / n as f32,
        grad,
    })
}

/// Index of the maximum logit per row — the predicted class.
///
/// NaN logits (e.g. from diverged training) are ordered deterministically
/// under the IEEE total order instead of panicking the comparator.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let s = logits.shape();
    let (n, classes) = (s[0], s[1]);
    (0..n)
        .map(|b| {
            (0..classes)
                .max_by(|&i, &j| logits.at2(b, i).total_cmp(&logits.at2(b, j)))
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = Tensor::from_vec(vec![1, 3], vec![0.2, -0.4, 1.1]).unwrap();
        let labels = [2usize];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut plus = logits.clone();
            plus.set2(0, c, logits.at2(0, c) + eps);
            let lp = softmax_cross_entropy(&plus, &labels).unwrap().loss;
            let mut minus = logits.clone();
            minus.set2(0, c, logits.at2(0, c) - eps);
            let lm = softmax_cross_entropy(&minus, &labels).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (out.grad.at2(0, c) - numeric).abs() < 1e-3,
                "class {c}: {} vs {numeric}",
                out.grad.at2(0, c)
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        for b in 0..2 {
            let sum: f32 = (0..3).map(|c| out.grad.at2(b, c)).sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn large_logits_are_stable() {
        let logits = Tensor::from_vec(vec![1, 2], vec![1000.0, -1000.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(out.loss.is_finite());
        assert!(out.loss < 1e-5);
    }

    #[test]
    fn validation_errors() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 5]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[2]), &[0, 1]).is_err());
    }

    #[test]
    fn argmax_picks_largest() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.2, 3.0, -1.0, 2.0]).unwrap();
        assert_eq!(argmax_rows(&logits), vec![1, 0]);
    }
}
