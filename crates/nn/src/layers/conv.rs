//! 2-d convolution with explicit backward pass.

use crate::error::NnError;
use crate::tensor::{Param, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 2-d convolution layer over `(N, C, H, W)` tensors.
///
/// Weights are stored `(Cout, Cin, KH, KW)` — the `(Cin, H, W)` ordering the
/// paper's partial-binary-accumulation discussion assumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Kernel weights, `(Cout, Cin, KH, KW)`.
    pub weight: Param,
    /// Optional per-output-channel bias.
    pub bias: Option<Param>,
    stride: usize,
    padding: usize,
    input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialized weights.
    pub fn new<R: Rng>(
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let fan_in = cin * kernel * kernel;
        let weight = Param::new(Tensor::kaiming(&[cout, cin, kernel, kernel], fan_in, rng));
        let bias = bias.then(|| Param::new(Tensor::zeros(&[cout])));
        Conv2d {
            weight,
            bias,
            stride,
            padding,
            input: None,
        }
    }

    /// Output channels.
    pub fn cout(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Input channels.
    pub fn cin(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Kernel height/width (square kernels).
    pub fn kernel(&self) -> usize {
        self.weight.value.shape()[2]
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let k = self.kernel();
        (
            (h + 2 * self.padding - k) / self.stride + 1,
            (w + 2 * self.padding - k) / self.stride + 1,
        )
    }

    /// Forward pass; caches the input for backward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless the input is
    /// `(N, Cin, H, W)` with `Cin` matching the layer.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let s = input.shape();
        if s.len() != 4 || s[1] != self.cin() {
            return Err(NnError::ShapeMismatch {
                expected: format!("(N, {}, H, W)", self.cin()),
                actual: s.to_vec(),
            });
        }
        let (n, cin, h, w) = (s[0], s[1], s[2], s[3]);
        let k = self.kernel();
        let (oh, ow) = self.output_size(h, w);
        let mut out = Tensor::zeros(&[n, self.cout(), oh, ow]);
        let weight = &self.weight.value;
        for b in 0..n {
            for co in 0..self.cout() {
                let bias = self.bias.as_ref().map_or(0.0, |p| p.value.data()[co]);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ci in 0..cin {
                            for ky in 0..k {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * self.stride + kx) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at4(b, ci, iy as usize, ix as usize)
                                        * weight.at4(co, ci, ky, kx);
                                }
                            }
                        }
                        out.set4(b, co, oy, ox, acc);
                    }
                }
            }
        }
        self.input = Some(input.clone());
        Ok(out)
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self.input.as_ref().ok_or(NnError::MissingForward)?;
        let s = input.shape();
        let (n, cin, h, w) = (s[0], s[1], s[2], s[3]);
        let k = self.kernel();
        let (oh, ow) = self.output_size(h, w);
        let mut grad_in = Tensor::zeros(s);
        let weight = self.weight.value.clone();
        for b in 0..n {
            for co in 0..self.cout() {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.at4(b, co, oy, ox);
                        if g == 0.0 {
                            continue;
                        }
                        if let Some(bias) = &mut self.bias {
                            bias.grad.data_mut()[co] += g;
                        }
                        for ci in 0..cin {
                            for ky in 0..k {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * self.stride + kx) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let x = input.at4(b, ci, iy as usize, ix as usize);
                                    self.weight.grad.add4(co, ci, ky, kx, g * x);
                                    grad_in.add4(
                                        b,
                                        ci,
                                        iy as usize,
                                        ix as usize,
                                        g * weight.at4(co, ci, ky, kx),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    /// Learnable parameters (weight, then bias if present).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng());
        conv.weight.value.data_mut()[0] = 1.0;
        let input = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, false, &mut rng());
        for v in conv.weight.value.data_mut() {
            *v = 1.0;
        }
        let input =
            Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.data()[0], 45.0);
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng());
        let input = Tensor::zeros(&[2, 2, 5, 5]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[2, 3, 5, 5]);
    }

    #[test]
    fn stride_two_halves_output() {
        let conv = Conv2d::new(1, 1, 3, 2, 1, false, &mut rng());
        assert_eq!(conv.output_size(8, 8), (4, 4));
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, false, &mut rng());
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 5, 5])).is_err());
        assert!(conv.backward(&Tensor::zeros(&[1, 4, 5, 5])).is_err());
    }

    #[test]
    fn gradient_check_weights_and_input() {
        // Numerical gradient check on a tiny convolution.
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, true, &mut rng());
        let mut r = rng();
        let input = Tensor::kaiming(&[1, 2, 4, 4], 4, &mut r);
        let out = conv.forward(&input).unwrap();
        // Loss = sum of outputs → grad_out = ones.
        let grad_out = Tensor::full(out.shape(), 1.0);
        let grad_in = conv.backward(&grad_out).unwrap();

        let eps = 1e-3f32;
        // Check a few weight coordinates.
        for &(co, ci, ky, kx) in &[(0, 0, 0, 0), (1, 1, 2, 2), (0, 1, 1, 1)] {
            let analytic = conv.weight.grad.at4(co, ci, ky, kx);
            let orig = conv.weight.value.at4(co, ci, ky, kx);
            conv.weight.value.set4(co, ci, ky, kx, orig + eps);
            let up: f32 = conv.forward(&input).unwrap().data().iter().sum();
            conv.weight.value.set4(co, ci, ky, kx, orig - eps);
            let down: f32 = conv.forward(&input).unwrap().data().iter().sum();
            conv.weight.value.set4(co, ci, ky, kx, orig);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "weight grad: analytic {analytic}, numeric {numeric}"
            );
        }
        // Check a few input coordinates.
        for &(c, y, x) in &[(0, 0, 0), (1, 3, 3), (0, 2, 1)] {
            let analytic = grad_in.at4(0, c, y, x);
            let mut plus = input.clone();
            plus.set4(0, c, y, x, input.at4(0, c, y, x) + eps);
            let up: f32 = conv.forward(&plus).unwrap().data().iter().sum();
            let mut minus = input.clone();
            minus.set4(0, c, y, x, input.at4(0, c, y, x) - eps);
            let down: f32 = conv.forward(&minus).unwrap().data().iter().sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "input grad: analytic {analytic}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_output_positions() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, true, &mut rng());
        let input = Tensor::zeros(&[1, 1, 3, 3]);
        let out = conv.forward(&input).unwrap();
        conv.backward(&Tensor::full(out.shape(), 1.0)).unwrap();
        // Bias contributes to every one of the 9 output positions.
        assert_eq!(conv.bias.as_ref().unwrap().grad.data()[0], 9.0);
    }

    #[test]
    fn params_mut_exposes_weight_and_bias() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, true, &mut rng());
        assert_eq!(conv.params_mut().len(), 2);
        let mut no_bias = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng());
        assert_eq!(no_bias.params_mut().len(), 1);
    }
}
