//! Pooling layers.
//!
//! GEO uses *average* pooling with computation skipping: the output
//! converter's parallel counters add neighboring outputs before conversion,
//! so pooled layers can run shorter streams (paper §III-A, §IV). Max pooling
//! is provided for completeness.

use crate::error::NnError;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Shape contract shared by both 2×2 pools: 4-d with even spatial
/// dimensions, returned unpacked.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] otherwise.
pub fn pool2x2_shape(s: &[usize]) -> Result<(usize, usize, usize, usize), NnError> {
    if s.len() != 4 || !s[2].is_multiple_of(2) || !s[3].is_multiple_of(2) {
        return Err(NnError::ShapeMismatch {
            expected: "(N, C, even H, even W)".into(),
            actual: s.to_vec(),
        });
    }
    Ok((s[0], s[1], s[2], s[3]))
}

/// 2×2 stride-2 average pool as a free function — the single shared
/// implementation behind [`AvgPool2d::forward`] and the inference
/// engine's prepared/fused pooling paths, which must stay float-identical
/// to it (same tap order, same `/ 4.0`).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] unless the input is 4-d with even
/// spatial dimensions.
pub fn avg_pool2x2(input: &Tensor) -> Result<Tensor, NnError> {
    let (n, c, h, w) = pool2x2_shape(input.shape())?;
    let mut out = Tensor::zeros(&[n, c, h / 2, w / 2]);
    for b in 0..n {
        for ci in 0..c {
            for oy in 0..h / 2 {
                for ox in 0..w / 2 {
                    let sum = input.at4(b, ci, 2 * oy, 2 * ox)
                        + input.at4(b, ci, 2 * oy, 2 * ox + 1)
                        + input.at4(b, ci, 2 * oy + 1, 2 * ox)
                        + input.at4(b, ci, 2 * oy + 1, 2 * ox + 1);
                    out.set4(b, ci, oy, ox, sum / 4.0);
                }
            }
        }
    }
    Ok(out)
}

/// 2×2 stride-2 max pool as a free function (no argmax bookkeeping) —
/// shared by [`MaxPool2d::forward`] and the inference engine.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] unless the input is 4-d with even
/// spatial dimensions.
pub fn max_pool2x2(input: &Tensor) -> Result<Tensor, NnError> {
    let (n, c, h, w) = pool2x2_shape(input.shape())?;
    let mut out = Tensor::zeros(&[n, c, h / 2, w / 2]);
    for b in 0..n {
        for ci in 0..c {
            for oy in 0..h / 2 {
                for ox in 0..w / 2 {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let v = input.at4(b, ci, 2 * oy + dy, 2 * ox + dx);
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    out.set4(b, ci, oy, ox, best);
                }
            }
        }
    }
    Ok(out)
}

/// 2×2 average pooling with stride 2 over `(N, C, H, W)` tensors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AvgPool2d {
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pooling window edge (fixed 2).
    pub const WINDOW: usize = 2;

    /// Forward pass; caches the input shape for backward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless the input is 4-d with even
    /// spatial dimensions.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let out = avg_pool2x2(input)?;
        self.input_shape = Some(input.shape().to_vec());
        Ok(out)
    }

    /// Backward pass: spreads each output gradient evenly over its window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape = self.input_shape.as_ref().ok_or(NnError::MissingForward)?;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let mut grad_in = Tensor::zeros(shape);
        for b in 0..n {
            for ci in 0..c {
                for oy in 0..h / 2 {
                    for ox in 0..w / 2 {
                        let g = grad_out.at4(b, ci, oy, ox) / 4.0;
                        grad_in.set4(b, ci, 2 * oy, 2 * ox, g);
                        grad_in.set4(b, ci, 2 * oy, 2 * ox + 1, g);
                        grad_in.set4(b, ci, 2 * oy + 1, 2 * ox, g);
                        grad_in.set4(b, ci, 2 * oy + 1, 2 * ox + 1, g);
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

/// 2×2 max pooling with stride 2 over `(N, C, H, W)` tensors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaxPool2d {
    input_shape: Option<Vec<usize>>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches argmax positions for backward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless the input is 4-d with even
    /// spatial dimensions.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        // Output values come from the shared kernel; the extra pass here
        // only records argmax positions for backward (training-only cost).
        let out = max_pool2x2(input)?;
        let (n, c, h, w) = pool2x2_shape(input.shape())?;
        self.argmax = vec![0; n * c * (h / 2) * (w / 2)];
        let mut flat = 0usize;
        for b in 0..n {
            for ci in 0..c {
                for oy in 0..h / 2 {
                    for ox in 0..w / 2 {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let (y, x) = (2 * oy + dy, 2 * ox + dx);
                                let v = input.at4(b, ci, y, x);
                                if v > best {
                                    best = v;
                                    best_idx = ((b * c + ci) * h + y) * w + x;
                                }
                            }
                        }
                        debug_assert_eq!(best, out.at4(b, ci, oy, ox));
                        self.argmax[flat] = best_idx;
                        flat += 1;
                    }
                }
            }
        }
        self.input_shape = Some(input.shape().to_vec());
        Ok(out)
    }

    /// Backward pass: routes each output gradient to its argmax position.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape = self.input_shape.as_ref().ok_or(NnError::MissingForward)?;
        let mut grad_in = Tensor::zeros(shape);
        for (flat, &idx) in self.argmax.iter().enumerate() {
            grad_in.data_mut()[idx] += grad_out.data()[flat];
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap()
    }

    #[test]
    fn avg_pool_averages_windows() {
        let mut pool = AvgPool2d::new();
        let out = pool.forward(&sample()).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_evenly() {
        let mut pool = AvgPool2d::new();
        pool.forward(&sample()).unwrap();
        let grad = pool
            .backward(&Tensor::from_vec(vec![1, 1, 2, 2], vec![4.0, 0.0, 0.0, 8.0]).unwrap())
            .unwrap();
        assert_eq!(grad.at4(0, 0, 0, 0), 1.0);
        assert_eq!(grad.at4(0, 0, 1, 1), 1.0);
        assert_eq!(grad.at4(0, 0, 0, 2), 0.0);
        assert_eq!(grad.at4(0, 0, 3, 3), 2.0);
    }

    #[test]
    fn max_pool_takes_window_maxima() {
        let mut pool = MaxPool2d::new();
        let out = pool.forward(&sample()).unwrap();
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new();
        pool.forward(&sample()).unwrap();
        let grad = pool
            .backward(&Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap())
            .unwrap();
        assert_eq!(grad.at4(0, 0, 1, 1), 1.0);
        assert_eq!(grad.at4(0, 0, 1, 3), 2.0);
        assert_eq!(grad.at4(0, 0, 3, 1), 3.0);
        assert_eq!(grad.at4(0, 0, 3, 3), 4.0);
        assert_eq!(grad.at4(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn free_fns_match_layer_forwards() {
        let x = sample();
        let mut a = AvgPool2d::new();
        assert_eq!(
            avg_pool2x2(&x).unwrap().data(),
            a.forward(&x).unwrap().data()
        );
        let mut m = MaxPool2d::new();
        assert_eq!(
            max_pool2x2(&x).unwrap().data(),
            m.forward(&x).unwrap().data()
        );
        assert!(avg_pool2x2(&Tensor::zeros(&[1, 1, 3, 4])).is_err());
        assert!(max_pool2x2(&Tensor::zeros(&[1, 1, 4, 3])).is_err());
        assert_eq!(pool2x2_shape(&[2, 3, 4, 6]).unwrap(), (2, 3, 4, 6));
    }

    #[test]
    fn odd_sizes_are_rejected() {
        let mut a = AvgPool2d::new();
        assert!(a.forward(&Tensor::zeros(&[1, 1, 3, 4])).is_err());
        let mut m = MaxPool2d::new();
        assert!(m.forward(&Tensor::zeros(&[1, 1, 4, 3])).is_err());
        assert!(a.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
        assert!(m.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
