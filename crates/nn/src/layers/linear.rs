//! Fully-connected layer with explicit backward pass.

use crate::error::NnError;
use crate::tensor::{Param, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer over `(N, In)` tensors.
///
/// GEO supports FC layers on the same MAC fabric (with underutilization,
/// paper §III-A); the SC engine reuses this layer's weights directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `(Out, In)`.
    pub weight: Param,
    /// Per-output bias.
    pub bias: Param,
    input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-initialized weights and zero bias.
    pub fn new<R: Rng>(input: usize, output: usize, rng: &mut R) -> Self {
        Linear {
            weight: Param::new(Tensor::kaiming(&[output, input], input, rng)),
            bias: Param::new(Tensor::zeros(&[output])),
            input: None,
        }
    }

    /// Input features.
    pub fn input_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output features.
    pub fn output_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Forward pass; caches the input for backward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless the input is `(N, In)`.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let s = input.shape();
        if s.len() != 2 || s[1] != self.input_features() {
            return Err(NnError::ShapeMismatch {
                expected: format!("(N, {})", self.input_features()),
                actual: s.to_vec(),
            });
        }
        let (n, inf) = (s[0], s[1]);
        let outf = self.output_features();
        let mut out = Tensor::zeros(&[n, outf]);
        for b in 0..n {
            for o in 0..outf {
                let mut acc = self.bias.value.data()[o];
                for i in 0..inf {
                    acc += input.at2(b, i) * self.weight.value.at2(o, i);
                }
                out.set2(b, o, acc);
            }
        }
        self.input = Some(input.clone());
        Ok(out)
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self.input.as_ref().ok_or(NnError::MissingForward)?;
        let (n, inf) = (input.shape()[0], input.shape()[1]);
        let outf = self.output_features();
        let mut grad_in = Tensor::zeros(&[n, inf]);
        for b in 0..n {
            for o in 0..outf {
                let g = grad_out.at2(b, o);
                self.bias.grad.data_mut()[o] += g;
                for i in 0..inf {
                    let wi = self.weight.value.at2(o, i);
                    self.weight.grad.data_mut()[o * inf + i] += g * input.at2(b, i);
                    grad_in.data_mut()[b * inf + i] += g * wi;
                }
            }
        }
        Ok(grad_in)
    }

    /// Learnable parameters (weight, then bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_computes_affine_map() {
        let mut lin = Linear::new(2, 2, &mut rng());
        lin.weight.value = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        lin.bias.value = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn shape_validation() {
        let mut lin = Linear::new(3, 2, &mut rng());
        assert!(lin.forward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(lin.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn gradient_check() {
        let mut lin = Linear::new(3, 2, &mut rng());
        let mut r = rng();
        let x = Tensor::kaiming(&[2, 3], 3, &mut r);
        let out = lin.forward(&x).unwrap();
        let grad_in = lin.backward(&Tensor::full(out.shape(), 1.0)).unwrap();
        let eps = 1e-3f32;
        // Weight gradient at (1, 2).
        let analytic = lin.weight.grad.at2(1, 2);
        let orig = lin.weight.value.at2(1, 2);
        lin.weight.value.set2(1, 2, orig + eps);
        let up: f32 = lin.forward(&x).unwrap().data().iter().sum();
        lin.weight.value.set2(1, 2, orig - eps);
        let down: f32 = lin.forward(&x).unwrap().data().iter().sum();
        lin.weight.value.set2(1, 2, orig);
        assert!((analytic - (up - down) / (2.0 * eps)).abs() < 1e-2);
        // Input gradient at (0, 1).
        let mut plus = x.clone();
        plus.set2(0, 1, x.at2(0, 1) + eps);
        let up: f32 = lin.forward(&plus).unwrap().data().iter().sum();
        let mut minus = x.clone();
        minus.set2(0, 1, x.at2(0, 1) - eps);
        let down: f32 = lin.forward(&minus).unwrap().data().iter().sum();
        assert!((grad_in.at2(0, 1) - (up - down) / (2.0 * eps)).abs() < 1e-2);
    }

    #[test]
    fn bias_grad_sums_over_batch() {
        let mut lin = Linear::new(2, 2, &mut rng());
        let x = Tensor::zeros(&[3, 2]);
        let out = lin.forward(&x).unwrap();
        lin.backward(&Tensor::full(out.shape(), 1.0)).unwrap();
        assert_eq!(lin.bias.grad.data(), &[3.0, 3.0]);
        assert_eq!(lin.params_mut().len(), 2);
    }
}
