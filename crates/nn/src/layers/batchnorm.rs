//! Batch normalization over channels of `(N, C, H, W)` tensors.
//!
//! GEO performs an 8-bit fixed-point batch normalization near memory before
//! ReLU to recover the dynamic range that partial binary accumulation adds
//! (paper §III-B, worth 5.5–6.5 accuracy points). This float layer provides
//! the training-time statistics; the SC engine quantizes the folded affine
//! transform for inference.

use crate::error::NnError;
use crate::tensor::{Param, Tensor};
use serde::{Deserialize, Serialize};

/// Per-channel batch normalization with learnable scale and shift.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Learnable scale, `(C)`.
    pub gamma: Param,
    /// Learnable shift, `(C)`.
    pub beta: Param,
    /// Running mean used at inference, `(C)`.
    pub running_mean: Tensor,
    /// Running variance used at inference, `(C)`.
    pub running_var: Tensor,
    momentum: f32,
    eps: f32,
    training: bool,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BnCache {
    input: Tensor,
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            momentum: 0.1,
            eps: 1e-5,
            training: true,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// Numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Switches between batch statistics (training) and running statistics
    /// (inference).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// The folded per-channel affine transform `y = scale·x + shift` that
    /// inference hardware applies, using running statistics.
    ///
    /// This is what GEO's near-memory BN units compute in 8-bit fixed point.
    pub fn folded_affine(&self) -> Vec<(f32, f32)> {
        (0..self.channels())
            .map(|c| {
                let inv_std = 1.0 / (self.running_var.data()[c] + self.eps).sqrt();
                let scale = self.gamma.value.data()[c] * inv_std;
                let shift = self.beta.value.data()[c] - scale * self.running_mean.data()[c];
                (scale, shift)
            })
            .collect()
    }

    /// Forward pass. In training mode uses batch statistics and updates the
    /// running estimates; in eval mode uses the running statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless the input is `(N, C, H, W)`
    /// with matching `C`.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let s = input.shape();
        if s.len() != 4 || s[1] != self.channels() {
            return Err(NnError::ShapeMismatch {
                expected: format!("(N, {}, H, W)", self.channels()),
                actual: s.to_vec(),
            });
        }
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let m = (n * h * w) as f32;
        let mut out = Tensor::zeros(s);
        if self.training {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ci in 0..c {
                let mut sum = 0.0;
                for b in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            sum += input.at4(b, ci, y, x);
                        }
                    }
                }
                mean[ci] = sum / m;
                let mut sq = 0.0;
                for b in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            let d = input.at4(b, ci, y, x) - mean[ci];
                            sq += d * d;
                        }
                    }
                }
                var[ci] = sq / m;
            }
            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            for ci in 0..c {
                let g = self.gamma.value.data()[ci];
                let bta = self.beta.value.data()[ci];
                for b in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            let xh = (input.at4(b, ci, y, x) - mean[ci]) * inv_std[ci];
                            out.set4(b, ci, y, x, g * xh + bta);
                        }
                    }
                }
                self.running_mean.data_mut()[ci] =
                    (1.0 - self.momentum) * self.running_mean.data()[ci] + self.momentum * mean[ci];
                self.running_var.data_mut()[ci] =
                    (1.0 - self.momentum) * self.running_var.data()[ci] + self.momentum * var[ci];
            }
            self.cache = Some(BnCache {
                input: input.clone(),
                mean,
                inv_std,
            });
        } else {
            for (ci, (scale, shift)) in self.folded_affine().into_iter().enumerate() {
                for b in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            out.set4(b, ci, y, x, scale * input.at4(b, ci, y, x) + shift);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Backward pass (training mode): accumulates gamma/beta gradients and
    /// returns the input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before a training-mode
    /// `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.as_ref().ok_or(NnError::MissingForward)?;
        let input = &cache.input;
        let s = input.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let m = (n * h * w) as f32;
        let mut grad_in = Tensor::zeros(s);
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = cache.inv_std[ci];
            let mean = cache.mean[ci];
            // Channel-wise sums needed by the BN backward formula.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xh = 0.0f32;
            for b in 0..n {
                for y in 0..h {
                    for x in 0..w {
                        let dy = grad_out.at4(b, ci, y, x);
                        let xh = (input.at4(b, ci, y, x) - mean) * inv_std;
                        sum_dy += dy;
                        sum_dy_xh += dy * xh;
                    }
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_dy_xh;
            self.beta.grad.data_mut()[ci] += sum_dy;
            for b in 0..n {
                for y in 0..h {
                    for x in 0..w {
                        let dy = grad_out.at4(b, ci, y, x);
                        let xh = (input.at4(b, ci, y, x) - mean) * inv_std;
                        let dx = g * inv_std * (dy - sum_dy / m - xh * sum_dy_xh / m);
                        grad_in.set4(b, ci, y, x, dx);
                    }
                }
            }
        }
        Ok(grad_in)
    }

    /// Learnable parameters (gamma, then beta).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_forward_normalizes_channels() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let input = Tensor::kaiming(&[4, 2, 3, 3], 9, &mut rng).map(|x| x * 10.0 + 2.0);
        let out = bn.forward(&input).unwrap();
        for c in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for y in 0..3 {
                    for x in 0..3 {
                        vals.push(out.at4(b, c, y, x));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean.data_mut()[0] = 2.0;
        bn.running_var.data_mut()[0] = 4.0;
        bn.set_training(false);
        let input = Tensor::full(&[1, 1, 1, 1], 6.0);
        let out = bn.forward(&input).unwrap();
        // (6 - 2) / sqrt(4 + eps) ≈ 2.0
        assert!((out.data()[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn folded_affine_matches_eval_forward() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean.data_mut()[0] = 1.0;
        bn.running_var.data_mut()[0] = 9.0;
        bn.gamma.value.data_mut()[0] = 2.0;
        bn.beta.value.data_mut()[0] = -1.0;
        bn.set_training(false);
        let (scale, shift) = bn.folded_affine()[0];
        let x = 5.0f32;
        let input = Tensor::full(&[1, 1, 1, 1], x);
        let out = bn.forward(&input).unwrap();
        assert!((out.data()[0] - (scale * x + shift)).abs() < 1e-5);
    }

    #[test]
    fn gradient_check_full_bn_backward() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(9);
        let input = Tensor::kaiming(&[2, 2, 2, 2], 4, &mut rng);
        // Fix statistics drift across repeated forwards for the numeric
        // check by using fresh layers each evaluation.
        let loss = |inp: &Tensor| -> f32 {
            let mut b = BatchNorm2d::new(2);
            b.gamma.value.data_mut()[0] = 1.3;
            b.gamma.value.data_mut()[1] = 0.8;
            b.beta.value.data_mut()[0] = 0.2;
            let out = b.forward(inp).unwrap();
            out.data().iter().map(|&v| v * v).sum::<f32>() * 0.5
        };
        bn.gamma.value.data_mut()[0] = 1.3;
        bn.gamma.value.data_mut()[1] = 0.8;
        bn.beta.value.data_mut()[0] = 0.2;
        let out = bn.forward(&input).unwrap();
        let grad_in = bn.backward(&out).unwrap(); // dL/dy = y for 0.5·y²
        let eps = 1e-2f32;
        for &(b, c, y, x) in &[(0, 0, 0, 0), (1, 1, 1, 1), (0, 1, 1, 0)] {
            let mut plus = input.clone();
            plus.set4(b, c, y, x, input.at4(b, c, y, x) + eps);
            let mut minus = input.clone();
            minus.set4(b, c, y, x, input.at4(b, c, y, x) - eps);
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = grad_in.at4(b, c, y, x);
            assert!(
                (analytic - numeric).abs() < 5e-2,
                "({b},{c},{y},{x}): analytic {analytic}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn shape_validation_and_missing_forward() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 2, 2])).is_err());
        assert!(bn.backward(&Tensor::zeros(&[1, 3, 2, 2])).is_err());
        assert_eq!(bn.params_mut().len(), 2);
        assert_eq!(bn.channels(), 3);
    }
}
