//! Network layers with explicit forward and backward passes.
//!
//! Layers are concrete structs wrapped by the [`Layer`] enum so that the SC
//! inference engine (crate `geo-core`) can pattern-match on layer kinds and
//! substitute stochastic forward implementations while reusing the float
//! backward passes (the paper's SC-forward / float-backward training).

mod batchnorm;
mod conv;
mod linear;
mod pool;

pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use linear::Linear;
pub use pool::{avg_pool2x2, max_pool2x2, pool2x2_shape, AvgPool2d, MaxPool2d};

use crate::error::NnError;
use crate::tensor::{Param, Tensor};
use serde::{Deserialize, Serialize};

/// Rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the activation mask for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        input.map(|x| x.max(0.0))
    }

    /// Backward pass: zeroes gradients where the input was non-positive.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self.mask.as_ref().ok_or(NnError::MissingForward)?;
        let mut grad = grad_out.clone();
        for (g, &m) in grad.data_mut().iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(grad)
    }
}

/// Flattens `(N, C, H, W)` to `(N, C·H·W)` for the transition to FC layers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the input shape for backward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for inputs with fewer than 2 dims.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let s = input.shape();
        if s.len() < 2 {
            return Err(NnError::ShapeMismatch {
                expected: "at least 2-d".into(),
                actual: s.to_vec(),
            });
        }
        self.input_shape = Some(s.to_vec());
        let n = s[0];
        let rest: usize = s[1..].iter().product();
        input.clone().reshape(vec![n, rest])
    }

    /// Backward pass: reshapes the gradient back to the input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForward`] if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape = self.input_shape.clone().ok_or(NnError::MissingForward)?;
        grad_out.clone().reshape(shape)
    }
}

/// A network layer: the closed set of layer kinds GEO accelerates.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Layer {
    /// 2-d convolution.
    Conv2d(Conv2d),
    /// Fully-connected layer.
    Linear(Linear),
    /// Batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// ReLU activation.
    Relu(Relu),
    /// 2×2 average pooling.
    AvgPool2d(AvgPool2d),
    /// 2×2 max pooling.
    MaxPool2d(MaxPool2d),
    /// Flatten to 2-d.
    Flatten(Flatten),
}

impl Layer {
    /// Forward pass, dispatching to the concrete layer.
    ///
    /// # Errors
    ///
    /// Propagates the concrete layer's shape errors.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::Conv2d(l) => l.forward(input),
            Layer::Linear(l) => l.forward(input),
            Layer::BatchNorm2d(l) => l.forward(input),
            Layer::Relu(l) => Ok(l.forward(input)),
            Layer::AvgPool2d(l) => l.forward(input),
            Layer::MaxPool2d(l) => l.forward(input),
            Layer::Flatten(l) => l.forward(input),
        }
    }

    /// Backward pass, dispatching to the concrete layer.
    ///
    /// # Errors
    ///
    /// Propagates the concrete layer's errors (notably
    /// [`NnError::MissingForward`]).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::Conv2d(l) => l.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::BatchNorm2d(l) => l.backward(grad_out),
            Layer::Relu(l) => l.backward(grad_out),
            Layer::AvgPool2d(l) => l.backward(grad_out),
            Layer::MaxPool2d(l) => l.backward(grad_out),
            Layer::Flatten(l) => l.backward(grad_out),
        }
    }

    /// Learnable parameters of the layer (possibly empty).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Layer::Conv2d(l) => l.params_mut(),
            Layer::Linear(l) => l.params_mut(),
            Layer::BatchNorm2d(l) => l.params_mut(),
            _ => Vec::new(),
        }
    }

    /// Propagates the training/eval mode switch to stateful layers.
    pub fn set_training(&mut self, training: bool) {
        if let Layer::BatchNorm2d(l) = self {
            l.set_training(training);
        }
    }

    /// Short human-readable kind name, for summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Linear(_) => "linear",
            Layer::BatchNorm2d(_) => "batchnorm2d",
            Layer::Relu(_) => "relu",
            Layer::AvgPool2d(_) => "avgpool2d",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::Flatten(_) => "flatten",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relu_clamps_and_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu
            .backward(&Tensor::from_vec(vec![4], vec![1.0, 1.0, 1.0, 1.0]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn flatten_round_trips() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = fl.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let g = fl.backward(&Tensor::zeros(&[2, 60])).unwrap();
        assert_eq!(g.shape(), &[2, 3, 4, 5]);
        assert!(fl.forward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn layer_enum_dispatches_and_reports_kinds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layers = vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, false, &mut rng)),
            Layer::BatchNorm2d(BatchNorm2d::new(2)),
            Layer::Relu(Relu::new()),
            Layer::AvgPool2d(AvgPool2d::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8, 4, &mut rng)),
        ];
        let mut x = Tensor::full(&[2, 1, 4, 4], 0.5);
        for l in &mut layers {
            x = l.forward(&x).unwrap();
        }
        assert_eq!(x.shape(), &[2, 4]);
        let mut g = Tensor::full(&[2, 4], 1.0);
        for l in layers.iter_mut().rev() {
            g = l.backward(&g).unwrap();
        }
        assert_eq!(g.shape(), &[2, 1, 4, 4]);
        let kinds: Vec<&str> = layers.iter().map(|l| l.kind()).collect();
        assert_eq!(
            kinds,
            [
                "conv2d",
                "batchnorm2d",
                "relu",
                "avgpool2d",
                "flatten",
                "linear"
            ]
        );
        // Param counts: conv (1) + bn (2) + linear (2).
        let n_params: usize = layers.iter_mut().map(|l| l.params_mut().len()).sum();
        assert_eq!(n_params, 5);
    }

    #[test]
    fn set_training_reaches_batchnorm() {
        let mut l = Layer::BatchNorm2d(BatchNorm2d::new(1));
        l.set_training(false);
        // Eval mode forward works without batch statistics.
        let out = l.forward(&Tensor::full(&[1, 1, 2, 2], 1.0)).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
    }
}
