//! Classification metrics beyond top-1 accuracy: confusion matrices and
//! per-class accuracy, used by the experiment harnesses to inspect *where*
//! SC error hurts.

use serde::{Deserialize, Serialize};

/// A square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// An empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from paired `(prediction, label)` sequences.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths or contain
    /// out-of-range classes.
    pub fn from_pairs(classes: usize, predictions: &[usize], labels: &[usize]) -> Self {
        assert_eq!(predictions.len(), labels.len(), "paired sequences required");
        let mut m = ConfusionMatrix::new(classes);
        for (&p, &l) in predictions.iter().zip(labels) {
            m.record(l, p);
        }
        m
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either class is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.classes && predicted < self.classes);
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u32 {
        self.counts[actual * self.classes + predicted]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total observations.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total), 0 when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u32 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (diagonal / row sum); 0 for unobserved classes.
    pub fn per_class_recall(&self) -> Vec<f32> {
        (0..self.classes)
            .map(|c| {
                let row: u32 = (0..self.classes).map(|p| self.count(c, p)).sum();
                if row == 0 {
                    0.0
                } else {
                    self.count(c, c) as f32 / row as f32
                }
            })
            .collect()
    }

    /// The most-confused off-diagonal pair `(actual, predicted, count)`,
    /// or `None` if there are no errors.
    pub fn worst_confusion(&self) -> Option<(usize, usize, u32)> {
        let mut best = None;
        for a in 0..self.classes {
            for p in 0..self.classes {
                if a != p && self.count(a, p) > 0 {
                    let c = self.count(a, p);
                    if best.is_none_or(|(_, _, bc)| c > bc) {
                        best = Some((a, p, c));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_recall_from_pairs() {
        let predictions = [0, 1, 1, 2, 2, 2];
        let labels = [0, 1, 2, 2, 2, 0];
        let m = ConfusionMatrix::from_pairs(3, &predictions, &labels);
        assert_eq!(m.total(), 6);
        // Correct: (0,0), (1,1), (2,2)×2 → 4/6.
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-6);
        let recall = m.per_class_recall();
        assert!((recall[0] - 0.5).abs() < 1e-6); // 1 of 2 class-0 right
        assert!((recall[1] - 1.0).abs() < 1e-6);
        assert!((recall[2] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn worst_confusion_finds_biggest_error() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 1);
        m.record(0, 1);
        m.record(2, 0);
        assert_eq!(m.worst_confusion(), Some((0, 1, 2)));
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.worst_confusion(), None);
        assert!(m.per_class_recall().iter().all(|&r| r == 0.0));
        assert_eq!(m.classes(), 4);
    }

    #[test]
    #[should_panic(expected = "paired sequences")]
    fn from_pairs_validates_lengths() {
        let _ = ConfusionMatrix::from_pairs(2, &[0], &[]);
    }
}
