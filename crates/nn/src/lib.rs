//! # geo-nn — neural-network substrate
//!
//! The training substrate of the GEO reproduction: a small dense-tensor
//! library with hand-written backward passes for every layer the paper's
//! networks use (conv2d, linear, batch norm, ReLU, average/max pooling),
//! softmax cross-entropy, SGD/Adam optimizers, fixed-point fake
//! quantization for the Eyeriss baselines, deterministic synthetic datasets
//! standing in for MNIST/SVHN/CIFAR-10, and builders for CNN-4, LeNet-5,
//! and the downscaled VGG-16.
//!
//! # Examples
//!
//! Train LeNet-5 on the MNIST-like synthetic set:
//!
//! ```
//! use geo_nn::datasets::{generate, DatasetSpec};
//! use geo_nn::optim::Optimizer;
//! use geo_nn::train::{evaluate, train, TrainConfig};
//! use geo_nn::models;
//!
//! # fn main() -> Result<(), geo_nn::NnError> {
//! let (train_ds, test_ds) = generate(&DatasetSpec::mnist_like(0).with_samples(64, 32));
//! let mut model = models::lenet5(1, 8, 10, 0);
//! let mut opt = Optimizer::paper_default();
//! let cfg = TrainConfig { epochs: 3, batch_size: 16, seed: 0 };
//! train(&mut model, &train_ds, &mut opt, &cfg)?;
//! let accuracy = evaluate(&mut model, &test_ds)?;
//! assert!(accuracy > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod datasets;
mod error;
mod layers;
pub mod loss;
pub mod metrics;
mod model;
pub mod models;
pub mod optim;
pub mod quant;
mod tensor;
pub mod train;

pub use error::NnError;
pub use layers::{
    avg_pool2x2, max_pool2x2, pool2x2_shape, AvgPool2d, BatchNorm2d, Conv2d, Flatten, Layer,
    Linear, MaxPool2d, Relu,
};
pub use model::Sequential;
pub use models::{ModelSpec, SpecLayer};
pub use tensor::{Param, Tensor};
