//! A small dense `f32` tensor, sufficient to train the paper's CNNs.
//!
//! Row-major storage with explicit shape; convolution layers use the
//! `(N, C, H, W)` convention throughout.

use crate::error::NnError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use geo_nn::Tensor;
///
/// # fn main() -> Result<(), geo_nn::NnError> {
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// assert_eq!(t.at2(1, 2), 6.0);
/// assert_eq!(t.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Wraps `data` with the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeDataMismatch`] if `data.len()` is not the
    /// product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, NnError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(NnError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Kaiming-uniform initialization for a weight tensor with the given
    /// fan-in, the standard initialization for ReLU networks.
    pub fn kaiming<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        let data = (0..shape.iter().product::<usize>())
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the elements.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the elements.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its elements.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeDataMismatch`] if element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self, NnError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(NnError::ShapeDataMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    #[inline]
    fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Element at `(n, c, h, w)` of a 4-d tensor.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx4(n, c, h, w)]
    }

    /// Sets the element at `(n, c, h, w)` of a 4-d tensor.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.idx4(n, c, h, w);
        self.data[i] = v;
    }

    /// Adds `v` to the element at `(n, c, h, w)` of a 4-d tensor.
    #[inline]
    pub fn add4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.idx4(n, c, h, w);
        self.data[i] += v;
    }

    /// Element at `(r, c)` of a 2-d tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Sets the element at `(r, c)` of a 2-d tensor.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c] = v;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "tensor shapes must match");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets all elements to zero (for gradient buffers).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Maximum absolute element, 0 for empty tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(f, " {preview:?}")?;
        if self.data.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

/// A learnable parameter: value and accumulated gradient, kept in lockstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient buffer.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_full_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
        let t = Tensor::full(&[2], 7.0);
        assert_eq!(t.data(), &[7.0, 7.0]);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        assert_eq!(
            Tensor::from_vec(vec![2, 2], vec![0.0; 3]).unwrap_err(),
            NnError::ShapeDataMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn indexing_4d_round_trips() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        t.set4(1, 2, 3, 4, 9.0);
        assert_eq!(t.at4(1, 2, 3, 4), 9.0);
        t.add4(1, 2, 3, 4, 1.0);
        assert_eq!(t.at4(1, 2, 3, 4), 10.0);
        // Row-major: last index is contiguous.
        t.set4(0, 0, 0, 1, 5.0);
        assert_eq!(t.data()[1], 5.0);
    }

    #[test]
    fn indexing_2d_round_trips() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set2(2, 3, 1.5);
        assert_eq!(t.at2(2, 3), 1.5);
        assert_eq!(t.data()[11], 1.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape(vec![3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn map_add_scale_zero() {
        let mut t = Tensor::from_vec(vec![3], vec![1.0, -2.0, 3.0]).unwrap();
        let m = t.map(|x| x * 2.0);
        assert_eq!(m.data(), &[2.0, -4.0, 6.0]);
        t.add_assign(&m);
        assert_eq!(t.data(), &[3.0, -6.0, 9.0]);
        t.scale(0.5);
        assert_eq!(t.data(), &[1.5, -3.0, 4.5]);
        assert_eq!(t.max_abs(), 4.5);
        t.zero();
        assert_eq!(t.max_abs(), 0.0);
    }

    #[test]
    fn kaiming_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::kaiming(&[8, 8], 64, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
        let mut rng2 = StdRng::seed_from_u64(1);
        let t2 = Tensor::kaiming(&[8, 8], 64, &mut rng2);
        assert_eq!(t, t2);
    }

    #[test]
    fn param_pairs_value_and_grad() {
        let p = Param::new(Tensor::full(&[2, 2], 1.0));
        assert_eq!(p.grad.shape(), p.value.shape());
        assert_eq!(p.grad.max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn add_assign_checks_shapes() {
        let mut a = Tensor::zeros(&[2]);
        a.add_assign(&Tensor::zeros(&[3]));
    }
}
