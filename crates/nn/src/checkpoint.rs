//! Weight checkpointing: save and restore a model's parameters.
//!
//! Uses a small self-describing binary format (magic, per-tensor shape +
//! little-endian `f32` data) so trained models — e.g. the SC-trained
//! networks of Table I — can be stored and redeployed without external
//! serialization crates.

use crate::error::NnError;
use crate::model::Sequential;
use crate::tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GEOCKPT1";

/// Extracts the model's parameters as `(values, shapes)` in layer order.
pub fn state_dict(model: &mut Sequential) -> Vec<Tensor> {
    model.params_mut().iter().map(|p| p.value.clone()).collect()
}

/// Loads parameters back into the model, in the same order
/// [`state_dict`] produced them.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if the tensor count or any shape
/// disagrees with the model's structure.
pub fn load_state_dict(model: &mut Sequential, tensors: &[Tensor]) -> Result<(), NnError> {
    let mut params = model.params_mut();
    if params.len() != tensors.len() {
        return Err(NnError::ShapeMismatch {
            expected: format!("{} parameter tensors", params.len()),
            actual: vec![tensors.len()],
        });
    }
    for (p, t) in params.iter_mut().zip(tensors) {
        if p.value.shape() != t.shape() {
            return Err(NnError::ShapeMismatch {
                expected: format!("shape {:?}", p.value.shape()),
                actual: t.shape().to_vec(),
            });
        }
        p.value = t.clone();
    }
    Ok(())
}

/// Writes the model's parameters to `path`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn save<P: AsRef<Path>>(model: &mut Sequential, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let tensors = state_dict(model);
    w.write_all(&(tensors.len() as u32).to_le_bytes())?;
    for t in &tensors {
        w.write_all(&(t.shape().len() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads parameters from `path` into the model.
///
/// # Errors
///
/// Returns an I/O error for malformed files and propagates
/// [`load_state_dict`]'s shape mismatches as `InvalidData`.
pub fn load<P: AsRef<Path>>(model: &mut Sequential, path: P) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a GEO checkpoint file",
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(&mut r)? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            data.push(f32::from_le_bytes(buf));
        }
        tensors.push(
            Tensor::from_vec(shape, data)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
    }
    load_state_dict(model, &tensors)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn state_dict_round_trips_in_memory() {
        let mut a = models::lenet5(1, 8, 10, 1);
        let mut b = models::lenet5(1, 8, 10, 2); // different init
        let dict = state_dict(&mut a);
        load_state_dict(&mut b, &dict).unwrap();
        let da = state_dict(&mut a);
        let db = state_dict(&mut b);
        for (x, y) in da.iter().zip(&db) {
            assert_eq!(x.data(), y.data());
        }
    }

    #[test]
    fn load_rejects_wrong_structure() {
        let mut lenet = models::lenet5(1, 8, 10, 1);
        let mut cnn = models::cnn4(3, 8, 10, 1);
        let dict = state_dict(&mut cnn);
        assert!(load_state_dict(&mut lenet, &dict).is_err());
        // Same count but wrong shape also fails.
        let mut dict2 = state_dict(&mut lenet);
        dict2[0] = Tensor::zeros(&[1, 1, 1, 1]);
        assert!(load_state_dict(&mut lenet, &dict2).is_err());
    }

    #[test]
    fn file_round_trip_preserves_weights_and_outputs() {
        let dir = std::env::temp_dir().join("geo_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lenet.ckpt");
        let mut a = models::lenet5(1, 8, 10, 3);
        save(&mut a, &path).unwrap();
        let mut b = models::lenet5(1, 8, 10, 99);
        load(&mut b, &path).unwrap();
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        assert_eq!(ya.data(), yb.data());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage_files() {
        let dir = std::env::temp_dir().join("geo_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.ckpt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let mut m = models::lenet5(1, 8, 10, 0);
        assert!(load(&mut m, &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
