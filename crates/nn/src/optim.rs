//! Optimizers: SGD with momentum and Adam (the paper trains with Adam,
//! initial learning rate 2e-3).

use crate::tensor::Param;
use serde::{Deserialize, Serialize};

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step to `params` and zeroes their gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        for (p, vel) in params.iter_mut().zip(&mut self.velocity) {
            for ((w, g), v) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(vel.iter_mut())
            {
                *v = self.momentum * *v + g;
                *w -= self.lr * *v;
            }
            p.grad.zero();
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the paper's defaults (`β₁ = 0.9`,
    /// `β₂ = 0.999`).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step to `params` and zeroes their gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.grad.zero();
        }
    }
}

/// Either optimizer behind one interface, so training loops can be generic
/// without dynamic dispatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Optimizer {
    /// SGD with momentum.
    Sgd(Sgd),
    /// Adam.
    Adam(Adam),
}

impl Optimizer {
    /// Applies one update step and zeroes gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        match self {
            Optimizer::Sgd(o) => o.step(params),
            Optimizer::Adam(o) => o.step(params),
        }
    }

    /// The paper's training configuration: Adam with lr 2e-3.
    pub fn paper_default() -> Self {
        Optimizer::Adam(Adam::new(2e-3))
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        match self {
            Optimizer::Sgd(o) => o.lr,
            Optimizer::Adam(o) => o.lr,
        }
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        match self {
            Optimizer::Sgd(o) => o.lr = lr,
            Optimizer::Adam(o) => o.lr = lr,
        }
    }

    /// Multiplies the learning rate by `factor` — the building block of
    /// step-decay schedules.
    pub fn scale_lr(&mut self, factor: f32) {
        let lr = self.lr();
        self.set_lr(lr * factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::full(&[1], x0))
    }

    fn grad_of_square(p: &mut Param) {
        // d/dx (x²) = 2x
        let x = p.value.data()[0];
        p.grad.data_mut()[0] = 2.0 * x;
    }

    #[test]
    fn sgd_minimizes_a_quadratic() {
        let mut p = quadratic_param(5.0);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            grad_of_square(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut p = quadratic_param(5.0);
            let mut opt = Sgd::new(0.02, momentum);
            for _ in 0..50 {
                grad_of_square(&mut p);
                opt.step(&mut [&mut p]);
            }
            p.value.data()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        let mut p = quadratic_param(3.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            grad_of_square(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0].abs() < 1e-2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quadratic_param(1.0);
        grad_of_square(&mut p);
        let mut opt = Optimizer::paper_default();
        opt.step(&mut [&mut p]);
        assert_eq!(p.grad.max_abs(), 0.0);
    }

    #[test]
    fn learning_rate_schedule_hooks() {
        let mut opt = Optimizer::paper_default();
        assert!((opt.lr() - 2e-3).abs() < 1e-9);
        opt.scale_lr(0.5);
        assert!((opt.lr() - 1e-3).abs() < 1e-9);
        opt.set_lr(0.1);
        assert_eq!(opt.lr(), 0.1);
        let mut sgd = Optimizer::Sgd(Sgd::new(0.2, 0.0));
        sgd.scale_lr(0.1);
        assert!((sgd.lr() - 0.02).abs() < 1e-6);
    }

    #[test]
    fn optimizer_enum_dispatches() {
        let mut p = quadratic_param(2.0);
        let mut opt = Optimizer::Sgd(Sgd::new(0.1, 0.0));
        grad_of_square(&mut p);
        let before = p.value.data()[0];
        opt.step(&mut [&mut p]);
        assert!(p.value.data()[0] < before);
    }
}
