//! Property-based tests on the NN substrate: gradient correctness on
//! randomized small layers and structural invariants.

use geo_nn::{AvgPool2d, BatchNorm2d, Conv2d, Linear, Relu, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_input(shape: &[usize], seed: u64, scale: f32) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::kaiming(shape, 4, &mut rng).map(|x| x * scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conv weight gradients match numeric differentiation for arbitrary
    /// seeds and channel counts.
    #[test]
    fn conv_weight_gradient_is_numeric(seed in 0u64..500, cin in 1usize..3, cout in 1usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(cin, cout, 3, 1, 1, false, &mut rng);
        let x = small_input(&[1, cin, 4, 4], seed ^ 0xABCD, 1.0);
        let out = conv.forward(&x).unwrap();
        conv.backward(&Tensor::full(out.shape(), 1.0)).unwrap();
        let analytic = conv.weight.grad.at4(0, 0, 1, 1);
        let eps = 1e-2f32;
        let orig = conv.weight.value.at4(0, 0, 1, 1);
        conv.weight.value.set4(0, 0, 1, 1, orig + eps);
        let up: f32 = conv.forward(&x).unwrap().data().iter().sum();
        conv.weight.value.set4(0, 0, 1, 1, orig - eps);
        let down: f32 = conv.forward(&x).unwrap().data().iter().sum();
        let numeric = (up - down) / (2.0 * eps);
        prop_assert!((analytic - numeric).abs() < 0.05,
            "analytic {} vs numeric {}", analytic, numeric);
    }

    /// Linear layers are, well, linear: f(a·x) = a·f(x) when bias is zero.
    #[test]
    fn linear_is_linear_without_bias(seed in 0u64..500, a in 0.1f32..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = Linear::new(4, 3, &mut rng);
        lin.bias.value.zero();
        let x = small_input(&[2, 4], seed ^ 1, 1.0);
        let fx = lin.forward(&x).unwrap();
        let fax = lin.forward(&x.map(|v| v * a)).unwrap();
        for (l, r) in fax.data().iter().zip(fx.data()) {
            prop_assert!((l - a * r).abs() < 1e-3, "{} vs {}", l, a * r);
        }
    }

    /// ReLU output is non-negative and idempotent.
    #[test]
    fn relu_is_nonneg_and_idempotent(seed in 0u64..1000) {
        let mut relu = Relu::new();
        let x = small_input(&[8], seed, 2.0);
        let y = relu.forward(&x);
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        let y2 = relu.forward(&y);
        prop_assert_eq!(y2.data(), y.data());
    }

    /// Average pooling preserves the tensor mean exactly.
    #[test]
    fn avg_pool_preserves_mean(seed in 0u64..1000) {
        let mut pool = AvgPool2d::new();
        let x = small_input(&[1, 2, 4, 4], seed, 1.0);
        let y = pool.forward(&x).unwrap();
        let mx: f32 = x.data().iter().sum::<f32>() / x.len() as f32;
        let my: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        prop_assert!((mx - my).abs() < 1e-5);
    }

    /// Training-mode batch norm always produces (near) zero-mean
    /// unit-variance channels, whatever the input statistics.
    #[test]
    fn batchnorm_normalizes_any_input(seed in 0u64..500, offset in -5.0f32..5.0, scale in 0.5f32..4.0) {
        let mut bn = BatchNorm2d::new(1);
        let x = small_input(&[4, 1, 3, 3], seed, scale).map(|v| v + offset);
        let y = bn.forward(&x).unwrap();
        let n = y.len() as f32;
        let mean: f32 = y.data().iter().sum::<f32>() / n;
        let var: f32 = y.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
        prop_assert!((var - 1.0).abs() < 0.05, "var {}", var);
    }

    /// Fake quantization is idempotent and bounded by the input range.
    #[test]
    fn fake_quantize_idempotent_and_bounded(
        vals in prop::collection::vec(-2.0f32..2.0, 1..32),
        bits in 2u8..8,
    ) {
        let t = Tensor::from_vec(vec![vals.len()], vals).unwrap();
        let q1 = geo_nn::quant::fake_quantize(&t, bits);
        let q2 = geo_nn::quant::fake_quantize(&q1, bits);
        let max = t.max_abs();
        for (a, b) in q1.data().iter().zip(q2.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        prop_assert!(q1.max_abs() <= max + 1e-5);
    }

    /// Softmax cross-entropy loss is non-negative and its gradient rows
    /// sum to zero.
    #[test]
    fn loss_nonneg_gradient_rows_sum_zero(
        vals in prop::collection::vec(-4.0f32..4.0, 6..=6),
        label in 0usize..3,
    ) {
        let logits = Tensor::from_vec(vec![2, 3], vals).unwrap();
        let out = geo_nn::loss::softmax_cross_entropy(&logits, &[label, (label + 1) % 3]).unwrap();
        prop_assert!(out.loss >= 0.0);
        for b in 0..2 {
            let sum: f32 = (0..3).map(|c| out.grad.at2(b, c)).sum();
            prop_assert!(sum.abs() < 1e-5);
        }
    }
}
