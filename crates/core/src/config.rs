//! GEO engine configuration.

use crate::error::GeoError;
use geo_sc::{RngKind, SharingLevel, MAX_WIDTH, MIN_WIDTH};
use serde::{Deserialize, Serialize};

// The accumulation split is substrate-level vocabulary shared with
// `geo-arch`; it lives in `geo-sc` and is re-exported here so
// `geo_core::Accumulation` keeps working.
pub use geo_sc::Accumulation;

/// Full configuration of the GEO stochastic inference engine.
///
/// Stream lengths follow the paper's `{sp-s}` notation: layers feeding a
/// pooling stage run `stream_len_pooled` cycles (computation skipping lets
/// them be shorter), other hidden layers run `stream_len`, and the output
/// layer always runs `output_stream_len` (128 in the paper). The effective
/// hardware stream is twice each value due to split-unipolar operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoConfig {
    /// RNG sharing policy across a layer's kernels.
    pub sharing: SharingLevel,
    /// Random source driving the SNGs.
    pub rng: RngKind,
    /// SC / fixed-point accumulation split.
    pub accumulation: Accumulation,
    /// Stream length for layers **with** pooling (`sp`).
    pub stream_len_pooled: usize,
    /// Stream length for layers **without** pooling (`s`).
    pub stream_len: usize,
    /// Stream length for the output layer (128 in the paper).
    pub output_stream_len: usize,
    /// Progressive stream generation (start after 2 MSBs).
    pub progressive: bool,
    /// Fixed-point bit width of the near-memory batch norm; `None` keeps
    /// batch norm in float (used during training's statistics pass).
    pub bn_bits: Option<u8>,
    /// Base seed for the per-layer seed plans.
    pub base_seed: u32,
    /// Fuse `Conv → [BatchNorm] → [ReLU] → AvgPool2d` chains into a single
    /// prepared step that accumulates pooling windows in the counter domain
    /// and converts once per pooled output (§III-A computation skipping),
    /// and chain SC layers through quantized activation levels instead of
    /// f32 round-trips. Float-identical to the unfused pipeline; disable
    /// only to benchmark the unfused path.
    pub fuse_pooling: bool,
}

impl GeoConfig {
    /// The paper's reference GEO configuration at a given `{sp-s}` pair:
    /// LFSR generation, moderate sharing, PBW accumulation, progressive
    /// generation, 8-bit near-memory BN.
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = geo_core::GeoConfig::geo(32, 64);
    /// assert_eq!(cfg.stream_len_pooled, 32);
    /// assert_eq!(cfg.stream_len, 64);
    /// ```
    pub fn geo(stream_len_pooled: usize, stream_len: usize) -> Self {
        GeoConfig {
            sharing: SharingLevel::Moderate,
            rng: RngKind::Lfsr,
            accumulation: Accumulation::Pbw,
            stream_len_pooled,
            stream_len,
            output_stream_len: 128,
            progressive: true,
            bn_bits: Some(8),
            base_seed: 0x9E37,
            fuse_pooling: true,
        }
    }

    /// ACOUSTIC-style baseline: OR-only accumulation, no partial binary,
    /// no progressive generation, at a single stream length.
    pub fn acoustic(stream_len: usize) -> Self {
        GeoConfig {
            sharing: SharingLevel::Moderate,
            rng: RngKind::Lfsr,
            accumulation: Accumulation::Or,
            stream_len_pooled: stream_len,
            stream_len,
            output_stream_len: 128,
            progressive: false,
            bn_bits: Some(8),
            base_seed: 0x9E37,
            fuse_pooling: true,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] if a stream length is not a
    /// power of two in the supported LFSR range, or BN bits are out of
    /// range.
    pub fn validate(&self) -> Result<(), GeoError> {
        for (name, len) in [
            ("stream_len_pooled", self.stream_len_pooled),
            ("stream_len", self.stream_len),
            ("output_stream_len", self.output_stream_len),
        ] {
            if !len.is_power_of_two() {
                return Err(GeoError::InvalidConfig(format!(
                    "{name} = {len} is not a power of two"
                )));
            }
            let width = len.trailing_zeros() as u8;
            if !(MIN_WIDTH..=MAX_WIDTH).contains(&width) {
                return Err(GeoError::InvalidConfig(format!(
                    "{name} = {len} needs LFSR width {width}, outside {MIN_WIDTH}..={MAX_WIDTH}"
                )));
            }
        }
        if let Some(bits) = self.bn_bits {
            if !(2..=16).contains(&bits) {
                return Err(GeoError::InvalidConfig(format!(
                    "bn_bits = {bits} outside 2..=16"
                )));
            }
        }
        Ok(())
    }

    /// LFSR width matched to a stream length (`log2`), per §II-B.
    pub fn width_for(len: usize) -> u8 {
        len.trailing_zeros() as u8
    }

    /// Returns a copy with a different accumulation mode (for ablations).
    pub fn with_accumulation(mut self, accumulation: Accumulation) -> Self {
        self.accumulation = accumulation;
        self
    }

    /// Returns a copy with a different sharing level (for Fig. 1 sweeps).
    pub fn with_sharing(mut self, sharing: SharingLevel) -> Self {
        self.sharing = sharing;
        self
    }

    /// Returns a copy with a different RNG kind (for Fig. 1 sweeps).
    pub fn with_rng(mut self, rng: RngKind) -> Self {
        self.rng = rng;
        self
    }

    /// Returns a copy with progressive generation toggled.
    pub fn with_progressive(mut self, progressive: bool) -> Self {
        self.progressive = progressive;
        self
    }

    /// Returns a copy with conv→pool fusion toggled (fused-vs-unfused
    /// benchmarking and equivalence tests).
    pub fn with_fuse_pooling(mut self, fuse_pooling: bool) -> Self {
        self.fuse_pooling = fuse_pooling;
        self
    }
}

/// Configuration of the batched serving loop ([`crate::serve`]).
///
/// The dispatcher drains up to `max_batch` queued requests per pass and
/// runs them as one forward through the shared
/// [`PreparedModel`](crate::PreparedModel); the submission queue holds at
/// most `queue_depth` requests before
/// [`GeoError::ServeOverflow`](crate::GeoError) pushes back on callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Maximum requests fused into one batched forward pass.
    pub max_batch: usize,
    /// Bound of the submission queue (requests waiting to be batched).
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            queue_depth: 64,
        }
    }
}

impl ServeConfig {
    /// Validates the serve configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] if either bound is zero.
    pub fn validate(&self) -> Result<(), GeoError> {
        if self.max_batch == 0 {
            return Err(GeoError::InvalidConfig(
                "serve max_batch must be at least 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(GeoError::InvalidConfig(
                "serve queue_depth must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// Returns a copy with a different batch bound.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns a copy with a different queue bound.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_defaults_validate_and_zero_bounds_are_rejected() {
        let s = ServeConfig::default();
        assert_eq!(s.max_batch, 8);
        assert_eq!(s.queue_depth, 64);
        assert!(s.validate().is_ok());
        assert!(ServeConfig::default().with_max_batch(0).validate().is_err());
        assert!(ServeConfig::default()
            .with_queue_depth(0)
            .validate()
            .is_err());
    }

    #[test]
    fn geo_defaults_match_paper() {
        let c = GeoConfig::geo(32, 64);
        assert_eq!(c.sharing, SharingLevel::Moderate);
        assert_eq!(c.rng, RngKind::Lfsr);
        assert_eq!(c.accumulation, Accumulation::Pbw);
        assert_eq!(c.output_stream_len, 128);
        assert!(c.progressive);
        assert_eq!(c.bn_bits, Some(8));
        assert!(c.fuse_pooling);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fuse_pooling_toggles_and_defaults_on() {
        assert!(GeoConfig::geo(32, 64).fuse_pooling);
        assert!(GeoConfig::acoustic(128).fuse_pooling);
        assert!(!GeoConfig::geo(32, 64).with_fuse_pooling(false).fuse_pooling);
    }

    #[test]
    fn acoustic_is_or_only() {
        let c = GeoConfig::acoustic(128);
        assert_eq!(c.accumulation, Accumulation::Or);
        assert!(!c.progressive);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_lengths() {
        let mut c = GeoConfig::geo(32, 64);
        c.stream_len = 100;
        assert!(c.validate().is_err());
        c.stream_len = 4; // width 2 < MIN_WIDTH
        assert!(c.validate().is_err());
        c.stream_len = 1 << 17;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_bn_bits() {
        let mut c = GeoConfig::geo(32, 64);
        c.bn_bits = Some(1);
        assert!(c.validate().is_err());
        c.bn_bits = None;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn width_matches_stream_length() {
        assert_eq!(GeoConfig::width_for(128), 7);
        assert_eq!(GeoConfig::width_for(32), 5);
    }

    #[test]
    fn builder_helpers() {
        let c = GeoConfig::geo(32, 64)
            .with_accumulation(Accumulation::Fxp)
            .with_sharing(SharingLevel::None)
            .with_rng(RngKind::Trng)
            .with_progressive(false);
        assert_eq!(c.accumulation, Accumulation::Fxp);
        assert_eq!(c.sharing, SharingLevel::None);
        assert_eq!(c.rng, RngKind::Trng);
        assert!(!c.progressive);
    }
}
