//! SC-in-the-loop training (paper §II-A, §IV).
//!
//! The forward pass runs through the stochastic engine — so the network
//! sees the exact deterministic generation bias, OR-accumulation
//! compression, and quantization it will see at inference — while gradients
//! flow through the float layers (straight-through). This is what lets
//! moderate LFSR sharing *gain* accuracy: the error profile is fixed, and
//! training absorbs it.

use crate::engine::ScEngine;
use crate::error::GeoError;
use geo_nn::datasets::Dataset;
use geo_nn::loss::{argmax_rows, softmax_cross_entropy};
use geo_nn::optim::Optimizer;
use geo_nn::train::TrainConfig;
use geo_nn::Sequential;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-epoch record of SC training.
#[derive(Debug, Clone, Default)]
pub struct ScHistory {
    /// Mean training loss per epoch (computed on SC logits).
    pub losses: Vec<f32>,
}

impl ScHistory {
    /// The final epoch's mean loss.
    pub fn final_loss(&self) -> Option<f32> {
        self.losses.last().copied()
    }
}

fn gather(ds: &Dataset, idx: &[usize]) -> Result<(geo_nn::Tensor, Vec<usize>), GeoError> {
    let (c, h, w) = ds.image_shape();
    let sz = c * h * w;
    let mut data = Vec::with_capacity(idx.len() * sz);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(&ds.images.data()[i * sz..(i + 1) * sz]);
        labels.push(ds.labels[i]);
    }
    let batch = geo_nn::Tensor::from_vec(vec![idx.len(), c, h, w], data).map_err(GeoError::Nn)?;
    Ok((batch, labels))
}

/// Trains `model` with SC forward passes and float backward passes.
///
/// # Errors
///
/// Propagates engine and layer errors.
///
/// # Examples
///
/// ```
/// use geo_core::{train_sc, GeoConfig, ScEngine};
/// use geo_nn::datasets::{generate, DatasetSpec};
/// use geo_nn::optim::Optimizer;
/// use geo_nn::train::TrainConfig;
///
/// # fn main() -> Result<(), geo_core::GeoError> {
/// let (train_ds, _) = generate(&DatasetSpec::mnist_like(0).with_samples(16, 8));
/// let mut model = geo_nn::models::lenet5(1, 8, 10, 0);
/// let mut engine = ScEngine::new(GeoConfig::geo(32, 64))?;
/// let mut opt = Optimizer::paper_default();
/// let cfg = TrainConfig { epochs: 1, batch_size: 8, seed: 0 };
/// let history = train_sc(&mut engine, &mut model, &train_ds, &mut opt, &cfg)?;
/// assert_eq!(history.losses.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn train_sc(
    engine: &mut ScEngine,
    model: &mut Sequential,
    dataset: &Dataset,
    optimizer: &mut Optimizer,
    config: &TrainConfig,
) -> Result<ScHistory, GeoError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = ScHistory::default();
    for epoch in 0..config.epochs {
        // Step decay: straight-through gradients (float backward against an
        // SC forward) are biased, so late training needs a smaller step to
        // stay stable — halve the rate at 50% and again at 75%.
        if config.epochs >= 8 && (epoch * 2 == config.epochs || epoch * 4 == config.epochs * 3) {
            optimizer.scale_lr(0.5);
        }
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let (batch, labels) = gather(dataset, chunk)?;
            let logits = engine.forward(model, &batch, true)?;
            let out = softmax_cross_entropy(&logits, &labels)?;
            model.backward(&out.grad)?;
            optimizer.step(&mut model.params_mut());
            epoch_loss += out.loss;
            batches += 1;
        }
        history.losses.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(history)
}

/// Top-1 accuracy of the SC datapath on `dataset` (inference mode:
/// quantized near-memory BN, running statistics).
///
/// # Errors
///
/// Propagates engine and layer errors.
pub fn evaluate_sc(
    engine: &mut ScEngine,
    model: &mut Sequential,
    dataset: &Dataset,
) -> Result<f32, GeoError> {
    let mut correct = 0usize;
    let batch = 32usize;
    let mut i = 0;
    while i < dataset.len() {
        let n = batch.min(dataset.len() - i);
        let (x, labels) = dataset.batch(i, n);
        let logits = engine.forward(model, &x, false)?;
        for (pred, label) in argmax_rows(&logits).into_iter().zip(&labels) {
            if pred == *label {
                correct += 1;
            }
        }
        i += n;
    }
    Ok(correct as f32 / dataset.len().max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeoConfig;
    use geo_nn::datasets::{generate, DatasetSpec};
    use geo_nn::models;

    #[test]
    fn sc_training_reduces_loss() {
        let (train_ds, _) = generate(&DatasetSpec::mnist_like(4).with_samples(48, 16));
        let mut model = models::lenet5(1, 8, 10, 2);
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64)).unwrap();
        let mut opt = Optimizer::paper_default();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 16,
            seed: 0,
        };
        let history = train_sc(&mut engine, &mut model, &train_ds, &mut opt, &cfg).unwrap();
        assert_eq!(history.losses.len(), 4);
        assert!(
            history.final_loss().unwrap() < history.losses[0],
            "losses {:?}",
            history.losses
        );
    }

    #[test]
    fn sc_trained_model_beats_chance() {
        let (train_ds, test_ds) = generate(&DatasetSpec::mnist_like(6).with_samples(80, 40));
        let mut model = models::lenet5(1, 8, 10, 3);
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64)).unwrap();
        let mut opt = Optimizer::paper_default();
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 16,
            seed: 1,
        };
        train_sc(&mut engine, &mut model, &train_ds, &mut opt, &cfg).unwrap();
        let acc = evaluate_sc(&mut engine, &mut model, &test_ds).unwrap();
        assert!(acc > 0.2, "SC accuracy {acc} should beat 10-class chance");
    }

    #[test]
    fn evaluate_handles_empty_dataset_shape() {
        let (train_ds, _) = generate(&DatasetSpec::mnist_like(1).with_samples(8, 4));
        let mut model = models::lenet5(1, 8, 10, 0);
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64)).unwrap();
        let acc = evaluate_sc(&mut engine, &mut model, &train_ds.take(3)).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
