//! The GEO stochastic-computing inference engine.
//!
//! Executes a `geo-nn` network with a simulated SC datapath: activations
//! and split-unipolar weights become LFSR/TRNG-generated bitstreams (via
//! cached value-indexed tables), multiplications are ANDs, and
//! accumulation follows the configured SC/fixed-point split (§III-B).
//! Batch normalization runs as the quantized near-memory affine transform
//! at inference, and pooling operates on converted counts (computation
//! skipping).
//!
//! In training mode the float layers still run forward to cache their
//! inputs, but each parametrized layer's *output* is replaced by the SC
//! result — the paper's "simulated SC computes output values while the
//! floating-point forward pass guides back propagation".
//!
//! # Resolve/compute pipeline
//!
//! Each parametrized layer executes in two phases:
//!
//! 1. **Resolve** (serial, `&mut self`): every lane table is built or
//!    fetched through the [`TableCache`] and every operand is quantized
//!    into a [`ResolvedConv`]/[`ResolvedLinear`]. Table construction is
//!    the injection point for the fault model, so running it serially in
//!    a fixed order keeps fault draws and counters deterministic and
//!    call-order independent. Resolve also performs every computation
//!    that is invariant across output positions: zero-weight lanes are
//!    compacted away into per-output-channel [`CompactKernel`] lists,
//!    operand levels are range-validated (making compute-phase table
//!    lookups infallible), and the interior output-column span is
//!    derived so the inner loop can drop its padding tests.
//! 2. **Compute** (pure, `&self`): output positions `(b, co, oy, ox)` are
//!    computed over disjoint output slices, in parallel across `rayon`
//!    workers. Each position's accumulators are position-local and the
//!    resolved tables are immutable, so the result is **bit-identical to
//!    the serial engine at every thread count** — the correctness
//!    contract `crates/core/tests/parallel_equivalence.rs` enforces.
//!
//! # Sparsity-compacted kernels (DESIGN.md §11)
//!
//! The compute phase walks dense arrays built at resolve time instead of
//! re-deriving per-lane facts per pixel: compacted nonzero-lane lists
//! with their stream words contiguous in memory, a once-per-row `iy`
//! resolution, an interior/border split of each output row, and a
//! streaming one-level APC accumulator that replaces per-MAC heap
//! allocations. The pre-compaction kernels are retained verbatim (the
//! [`reference`] module, reachable via [`ScEngine::forward_reference`])
//! as the bit-identity oracle for
//! `crates/core/tests/compaction_equivalence.rs` and as the "before"
//! side of the `bench_forward` perf trajectory.
//!
//! Thread count follows `RAYON_NUM_THREADS` (or an installed
//! `rayon::ThreadPool`), defaulting to the machine's parallelism.

use crate::config::{Accumulation, GeoConfig};
use crate::error::GeoError;
use crate::tables::{ProgressiveTable, TableCache};
use crate::telemetry::{self, EngineTelemetry, LayerCounters, Phase, Stopwatch, TelemetryReport};
use geo_nn::{Conv2d, Layer, Linear, Sequential, Tensor};
use geo_sc::fault::{FaultCounters, FaultInjector, FaultModel};
use geo_sc::{quantize_unipolar, Bitstream, KernelDims, SeedPlan, StreamTable};
use rayon::prelude::*;
use std::sync::{Arc, Mutex};

/// Array width assumed when mapping fully-connected layers onto the MAC
/// fabric: features fill a pseudo-kernel of this W dimension, so partial
/// binary accumulation applies to FC layers too (with the underutilization
/// the paper notes in §III-A).
pub const FC_BINARY_WIDTH: usize = 8;

/// Per-layer-index seed stride, keeping layer seed plans disjoint.
const LAYER_SEED_STRIDE: u32 = 0x1009;

/// A value-indexed stream source: normal or progressive.
enum LaneTable {
    Normal(Arc<StreamTable>),
    Progressive(Arc<ProgressiveTable>),
}

impl LaneTable {
    /// Stream lookup for a quantized operand level.
    ///
    /// [`ScEngine::act_level`] / [`ScEngine::weight_levels`] quantize every
    /// operand into the table's range, so an out-of-range level here means
    /// an engine bug — it surfaces as [`GeoError::Internal`] rather than a
    /// silent clamp (which would alias distinct operands) or a panic.
    fn stream(&self, level: u32) -> Result<&Bitstream, GeoError> {
        match self {
            LaneTable::Normal(t) => {
                if level > (1u32 << t.width()) {
                    return Err(GeoError::Internal(format!(
                        "operand level {level} exceeds stream-table range 0..={}",
                        1u32 << t.width()
                    )));
                }
                Ok(t.stream(level))
            }
            LaneTable::Progressive(t) => {
                if level > 255 {
                    return Err(GeoError::Internal(format!(
                        "operand level {level} exceeds the 8-bit progressive buffer"
                    )));
                }
                Ok(t.stream(level as u8))
            }
        }
    }

    /// Packed stream words for a *resolve-validated* operand level — the
    /// hot-loop form of [`Self::stream`], with the range check and
    /// `Result` plumbing hoisted out: the resolve phase validates the
    /// layer's maximum activation level once ([`validate_act_levels`]),
    /// so per-pixel lookups index straight into the table.
    #[inline]
    fn words(&self, level: u32) -> &[u64] {
        match self {
            LaneTable::Normal(t) => t.words(level),
            LaneTable::Progressive(t) => t.words(level as u8),
        }
    }
}

/// Validates once, at resolve time, that every quantized activation level
/// is inside the lane tables' range, licensing the infallible
/// [`LaneTable::words`] lookups the compute phase performs. All of a
/// layer's activation tables share one width/length, so checking the
/// maximum level against the first table covers them all.
fn validate_act_levels(tables: &[LaneTable], levels: &[u32]) -> Result<(), GeoError> {
    if let (Some(table), Some(&max)) = (tables.first(), levels.iter().max()) {
        table.stream(max)?;
    }
    Ok(())
}

/// Per-layer and total fault-injection counts observed by an engine built
/// with [`ScEngine::with_faults`].
///
/// Counters attribute each injected fault to the parametrized layer whose
/// stream tables were being built when it happened; because deterministic
/// tables are cached, a layer's static faults are counted on the pass that
/// first builds its tables, while transient faults recur every pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Forward passes executed with fault injection active.
    pub passes: u64,
    /// Fault counts per parametrized (conv/linear) layer, in network order.
    pub layers: Vec<FaultCounters>,
    /// Fault counts across all layers.
    pub total: FaultCounters,
}

impl ResilienceReport {
    fn record(&mut self, param_layer: u32, delta: FaultCounters) {
        let idx = param_layer as usize;
        if self.layers.len() <= idx {
            self.layers.resize(idx + 1, FaultCounters::default());
        }
        self.layers[idx].accumulate(&delta);
        self.total.accumulate(&delta);
    }
}

/// A weight operand resolved for the compute phase: quantized split
/// levels, the accumulator group its lane feeds, and the packed words of
/// its positive/negative streams. The words are copied out of the lane
/// table once per resolve so the per-position hot loop reads flat local
/// data instead of chasing table pointers; tables are immutable for the
/// duration of a pass, so the copy is exact.
struct WeightRef {
    pos: u32,
    neg: u32,
    group: usize,
    pos_words: Vec<u64>,
    neg_words: Vec<u64>,
}

impl WeightRef {
    fn resolve(
        table: &LaneTable,
        (pos, neg): (u32, u32),
        group: usize,
    ) -> Result<WeightRef, GeoError> {
        let words_of = |level: u32| -> Result<Vec<u64>, GeoError> {
            Ok(if level > 0 {
                table.stream(level)?.as_words().to_vec()
            } else {
                Vec::new()
            })
        };
        Ok(WeightRef {
            pos,
            neg,
            group,
            pos_words: words_of(pos)?,
            neg_words: words_of(neg)?,
        })
    }

    /// Whether both split halves are zero (the lane contributes nothing).
    fn is_zero(&self) -> bool {
        self.pos == 0 && self.neg == 0
    }
}

/// One nonzero weight lane in a [`CompactKernel`] row: the kernel
/// coordinates it reads, the accumulator group it feeds, and where its
/// stream words live in the shared contiguous buffer.
#[derive(Debug, Clone, Copy)]
struct CompactLane {
    /// Activation-table index (conv: `(ci·k + ky)·k + kx`; linear: the
    /// feature index).
    lane: u32,
    /// Input channel (conv only; zero for linear).
    ci: u32,
    /// Kernel row offset (conv only; zero for linear).
    ky: u32,
    /// Kernel column offset (conv only; zero for linear).
    kx: u32,
    /// Accumulator group this lane feeds.
    group: u32,
    /// Offset of this lane's weight words in [`CompactKernel::words_buf`]:
    /// the positive half at `word_off`, the negative at `word_off + words`.
    word_off: usize,
    /// Whether the positive split half is nonzero.
    has_pos: bool,
    /// Whether the negative split half is nonzero.
    has_neg: bool,
}

/// Sparsity-compacted weight lanes for a whole layer: per output
/// channel/neuron, a contiguous run of its *nonzero* lanes plus one flat
/// buffer holding every lane's stream words back to back. The per-pixel
/// hot loop walks these dense arrays instead of re-testing
/// `WeightRef::is_zero` on every lane of every output position, and the
/// adjacent word layout keeps the accumulation loop cache-resident.
///
/// Lane order within a row matches the resolve order (`ci`, `ky`, `kx`
/// ascending), so the sequence of accumulate calls — and therefore APC
/// compressor pairing — is exactly the pre-compaction sequence.
#[derive(Debug)]
struct CompactKernel {
    lanes: Vec<CompactLane>,
    /// Row `r`'s lanes are `lanes[offsets[r]..offsets[r + 1]]`.
    offsets: Vec<usize>,
    /// `2·words` u64 per compacted lane: positive words then negative
    /// words, zero-filled for an absent split half (never read — the
    /// `has_pos`/`has_neg` flags gate access, preserving APC push order).
    words_buf: Vec<u64>,
    /// Words per stream (`len.div_ceil(64)`).
    words: usize,
}

impl CompactKernel {
    /// Compacts `wrefs` (laid out `rows × lanes_per_row`, resolve order)
    /// into per-row nonzero lane lists. `meta(lane)` supplies the
    /// `(ci, ky, kx)` coordinates of a lane index.
    fn build<F>(
        wrefs: &[WeightRef],
        rows: usize,
        lanes_per_row: usize,
        words: usize,
        meta: F,
    ) -> CompactKernel
    where
        F: Fn(usize) -> (u32, u32, u32),
    {
        let mut lanes = Vec::new();
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut words_buf = Vec::new();
        offsets.push(0);
        for r in 0..rows {
            for l in 0..lanes_per_row {
                let wref = &wrefs[r * lanes_per_row + l];
                if wref.is_zero() {
                    continue;
                }
                let word_off = words_buf.len();
                for half in [&wref.pos_words, &wref.neg_words] {
                    if half.is_empty() {
                        words_buf.resize(words_buf.len() + words, 0);
                    } else {
                        words_buf.extend_from_slice(half);
                    }
                }
                let (ci, ky, kx) = meta(l);
                lanes.push(CompactLane {
                    lane: l as u32,
                    ci,
                    ky,
                    kx,
                    group: wref.group as u32,
                    word_off,
                    has_pos: wref.pos > 0,
                    has_neg: wref.neg > 0,
                });
            }
            offsets.push(lanes.len());
        }
        CompactKernel {
            lanes,
            offsets,
            words_buf,
            words,
        }
    }

    /// The compacted lanes of output row/channel `r`.
    #[inline]
    fn row(&self, r: usize) -> &[CompactLane] {
        &self.lanes[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Positive-half stream words of a lane.
    #[inline]
    fn pos_words(&self, l: &CompactLane) -> &[u64] {
        &self.words_buf[l.word_off..l.word_off + self.words]
    }

    /// Negative-half stream words of a lane.
    #[inline]
    fn neg_words(&self, l: &CompactLane) -> &[u64] {
        &self.words_buf[l.word_off + self.words..l.word_off + 2 * self.words]
    }

    /// Largest nonzero-lane count of any row — the layer's effective max
    /// fan-in, which sizes per-worker row scratch exactly once.
    fn max_row_lanes(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }
}

/// Everything the pure compute phase needs for one convolution layer,
/// produced serially by [`ScEngine::resolve_conv`]. Shared as `&self`
/// across worker threads (see the compile-time assertions below).
struct ResolvedConv {
    mode: Accumulation,
    len: usize,
    words: usize,
    groups: usize,
    n: usize,
    cin: usize,
    h: usize,
    w: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    volume: usize,
    act_tables: Vec<LaneTable>,
    /// Uncompacted lanes, kept for the pre-compaction reference kernels
    /// (the equivalence oracle and the `bench_forward` baseline).
    wrefs: Vec<WeightRef>,
    act_levels: Vec<u32>,
    /// Per-output-channel compacted nonzero lanes (the hot-path layout).
    compact: CompactKernel,
    /// First output column whose every `kx` tap is inside the image.
    x_lo: usize,
    /// One past the last interior output column (`x_lo..x_hi` runs the
    /// padding-check-free inner loop).
    x_hi: usize,
}

/// Everything the pure compute phase needs for one fully-connected layer,
/// produced serially by [`ScEngine::resolve_linear`].
struct ResolvedLinear {
    mode: Accumulation,
    len: usize,
    words: usize,
    groups: usize,
    n: usize,
    features: usize,
    outf: usize,
    act_tables: Vec<LaneTable>,
    /// Uncompacted lanes, kept for the pre-compaction reference kernels.
    wrefs: Vec<WeightRef>,
    act_levels: Vec<u32>,
    /// Per-output-neuron compacted nonzero lanes (the hot-path layout).
    compact: CompactKernel,
}

// The compute phase hands these to scoped worker threads by shared
// reference; pin the auto-trait obligations at compile time so a future
// non-Sync field (e.g. a Cell or Rc in a table) fails here, not at a
// distant use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LaneTable>();
    assert_send_sync::<WeightRef>();
    assert_send_sync::<CompactLane>();
    assert_send_sync::<CompactKernel>();
    assert_send_sync::<ResolvedConv>();
    assert_send_sync::<ResolvedLinear>();
};

/// Streaming one-level approximate-parallel-counter state.
///
/// [`geo_sc::apc::apc_count`] with one compressor level pairs the product
/// streams in arrival order — `(s0, s1), (s2, s3), …` — and counts
/// `2·ones(a ∧ b) + ones(a ∨ b)` per pair plus the unpaired tail exactly.
/// That fold is computable online: hold at most one pending product in a
/// fixed `words`-sized buffer and collapse each arriving partner into the
/// running count. Bit-identical to materializing every product (the
/// pre-compaction path allocated a `Vec<u64>` *and* a [`Bitstream`] per
/// MAC per pixel just to feed `apc_count`), with zero heap traffic in the
/// hot loop.
struct ApcAcc {
    /// The unpaired product, valid when `filled` (sized once; asserted
    /// non-reallocating in debug builds via [`Scratch::debug_check`]).
    pending: Vec<u64>,
    filled: bool,
    count: i64,
}

impl ApcAcc {
    fn new(words: usize) -> Self {
        ApcAcc {
            pending: vec![0u64; words],
            filled: false,
            count: 0,
        }
    }

    fn reset(&mut self) {
        // `pending` is overwritten before it is next read; only the pair
        // state and count need clearing.
        self.filled = false;
        self.count = 0;
    }

    /// Folds in the product `act ∧ weight` as the next APC input stream.
    #[inline]
    fn push(&mut self, act: &[u64], weight: &[u64]) {
        if self.filled {
            let mut c = 0i64;
            for ((&p, &a), &w) in self.pending.iter().zip(act).zip(weight) {
                let prod = a & w;
                c += 2 * i64::from((p & prod).count_ones()) + i64::from((p | prod).count_ones());
            }
            self.count += c;
            self.filled = false;
        } else {
            for ((p, &a), &w) in self.pending.iter_mut().zip(act).zip(weight) {
                *p = a & w;
            }
            self.filled = true;
        }
    }

    /// The count `apc_count(products, 1)` would have produced.
    fn total(&self) -> i64 {
        let tail: i64 = if self.filled {
            self.pending.iter().map(|w| i64::from(w.count_ones())).sum()
        } else {
            0
        };
        self.count + tail
    }
}

/// One compacted lane resolved against a fixed output row: `iy` is the
/// same for every pixel of the row, so the y-bounds test and the input
/// row base address are computed once per row, not once per pixel.
#[derive(Debug, Clone, Copy)]
struct RowLane {
    /// `act_levels` index of this lane's input at `ix = 0`.
    row_base: usize,
    kx: usize,
    lane: u32,
    group: u32,
    word_off: usize,
    has_pos: bool,
    has_neg: bool,
}

/// Per-output-position accumulator state for the compacted kernels. All
/// buffers are sized once, at construction, from resolve-time layer
/// constants — the hot loop performs no heap allocation in any mode.
struct AccumState {
    mode: Accumulation,
    words: usize,
    acc_pos: Vec<u64>,
    acc_neg: Vec<u64>,
    fxp_pos: i64,
    fxp_neg: i64,
    apc_pos: ApcAcc,
    apc_neg: ApcAcc,
    /// MACs folded since the last telemetry flush. Local (non-atomic) so
    /// the hot loop pays one integer increment; flushed to the layer's
    /// shared counter once per output row, and *not* cleared by the
    /// per-pixel [`AccumState::reset`].
    macs: u64,
}

impl AccumState {
    fn new(mode: Accumulation, groups: usize, words: usize) -> Self {
        AccumState {
            mode,
            words,
            acc_pos: vec![0u64; groups * words],
            acc_neg: vec![0u64; groups * words],
            fxp_pos: 0,
            fxp_neg: 0,
            apc_pos: ApcAcc::new(words),
            apc_neg: ApcAcc::new(words),
            macs: 0,
        }
    }

    #[inline]
    fn reset(&mut self) {
        self.acc_pos.fill(0);
        self.acc_neg.fill(0);
        self.fxp_pos = 0;
        self.fxp_neg = 0;
        self.apc_pos.reset();
        self.apc_neg.reset();
    }

    /// Folds one multiply-accumulate into the mode-specific state. The
    /// single-word case (stream lengths up to 64 cycles — every paper
    /// configuration's hidden layers) is special-cased so the compiler
    /// drops the inner loops.
    #[inline]
    fn fold(
        &mut self,
        act: &[u64],
        pos: &[u64],
        neg: &[u64],
        group: usize,
        has_pos: bool,
        has_neg: bool,
    ) {
        if telemetry::enabled() {
            self.macs += 1;
        }
        match self.mode {
            Accumulation::Or | Accumulation::Pbw | Accumulation::Pbhw => {
                if self.words == 1 {
                    if has_pos {
                        self.acc_pos[group] |= act[0] & pos[0];
                    }
                    if has_neg {
                        self.acc_neg[group] |= act[0] & neg[0];
                    }
                    return;
                }
                let words = self.words;
                if has_pos {
                    let dst = &mut self.acc_pos[group * words..(group + 1) * words];
                    for ((d, &a), &w) in dst.iter_mut().zip(act).zip(pos) {
                        *d |= a & w;
                    }
                }
                if has_neg {
                    let dst = &mut self.acc_neg[group * words..(group + 1) * words];
                    for ((d, &a), &w) in dst.iter_mut().zip(act).zip(neg) {
                        *d |= a & w;
                    }
                }
            }
            Accumulation::Fxp => {
                if has_pos {
                    self.fxp_pos += act
                        .iter()
                        .zip(pos)
                        .map(|(&a, &w)| i64::from((a & w).count_ones()))
                        .sum::<i64>();
                }
                if has_neg {
                    self.fxp_neg += act
                        .iter()
                        .zip(neg)
                        .map(|(&a, &w)| i64::from((a & w).count_ones()))
                        .sum::<i64>();
                }
            }
            Accumulation::Apc => {
                if has_pos {
                    self.apc_pos.push(act, pos);
                }
                if has_neg {
                    self.apc_neg.push(act, neg);
                }
            }
        }
    }

    /// Converts the accumulated state into the output value.
    #[inline]
    fn finish(&self, len: usize) -> f32 {
        let signed: i64 = match self.mode {
            Accumulation::Or | Accumulation::Pbw | Accumulation::Pbhw => {
                let pos: i64 = self.acc_pos.iter().map(|w| i64::from(w.count_ones())).sum();
                let neg: i64 = self.acc_neg.iter().map(|w| i64::from(w.count_ones())).sum();
                pos - neg
            }
            Accumulation::Fxp => self.fxp_pos - self.fxp_neg,
            Accumulation::Apc => self.apc_pos.total() - self.apc_neg.total(),
        };
        signed as f32 / len as f32
    }
}

/// Per-worker scratch for the compacted kernels, allocated once per
/// worker (`for_each_init`) and sized from resolve-time constants.
struct Scratch {
    /// Reusable per-row lane list, capacity fixed at the layer's max
    /// fan-in so row resolution never reallocates.
    row_lanes: Vec<RowLane>,
    row_capacity: usize,
    acc: AccumState,
}

impl Scratch {
    fn new(mode: Accumulation, groups: usize, words: usize, max_row_lanes: usize) -> Self {
        Scratch {
            row_lanes: Vec::with_capacity(max_row_lanes),
            row_capacity: max_row_lanes,
            acc: AccumState::new(mode, groups, words),
        }
    }

    /// Debug-build invariant: no scratch buffer reallocated after
    /// construction — the sizing contract of the compacted kernels.
    #[inline]
    fn debug_check(&self) {
        debug_assert!(
            self.row_lanes.capacity() >= self.row_capacity
                && self.row_lanes.len() <= self.row_capacity,
            "row-lane scratch outgrew its resolve-time max fan-in sizing"
        );
        debug_assert_eq!(self.acc.apc_pos.pending.len(), self.acc.words);
        debug_assert_eq!(self.acc.apc_neg.pending.len(), self.acc.words);
    }
}

/// Stores the first error any worker produced (later ones are dropped —
/// one failure already fails the whole layer).
fn record_error(slot: &Mutex<Option<GeoError>>, err: GeoError) {
    let mut guard = match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if guard.is_none() {
        *guard = Some(err);
    }
}

impl ResolvedConv {
    /// Phase 2: computes the whole output tensor, parallelizing over
    /// output rows `(b, co, oy)`. Bit-identical at every thread count:
    /// each row is written by exactly one worker from shared immutable
    /// state. Infallible — every lookup the compacted kernels perform
    /// was validated during resolve.
    fn compute(&self, tel: &LayerCounters) -> Tensor {
        let mut out = Tensor::zeros(&[self.n, self.cout, self.oh, self.ow]);
        out.data_mut()
            .par_chunks_mut(self.ow.max(1))
            .enumerate()
            .for_each_init(
                || {
                    Scratch::new(
                        self.mode,
                        self.groups,
                        self.words,
                        self.compact.max_row_lanes(),
                    )
                },
                |scratch, (row, chunk)| self.compute_row(row, chunk, scratch, tel),
            );
        out
    }

    /// Computes one output row: `b`, `co`, `oy` fixed, all `ox`.
    ///
    /// The row's compacted lanes are resolved once (`iy` bounds test +
    /// input row base address), then the pixel loop runs in three spans:
    /// left border, interior (`x_lo..x_hi`, no padding checks), right
    /// border.
    fn compute_row(
        &self,
        row: usize,
        chunk: &mut [f32],
        scratch: &mut Scratch,
        tel: &LayerCounters,
    ) {
        let oy = row % self.oh;
        let bc = row / self.oh;
        let co = bc % self.cout;
        let b = bc / self.cout;
        scratch.row_lanes.clear();
        for l in self.compact.row(co) {
            let iy = (oy * self.stride + l.ky as usize) as isize - self.pad as isize;
            if iy < 0 || iy >= self.h as isize {
                continue;
            }
            scratch.row_lanes.push(RowLane {
                row_base: ((b * self.cin + l.ci as usize) * self.h + iy as usize) * self.w,
                kx: l.kx as usize,
                lane: l.lane,
                group: l.group,
                word_off: l.word_off,
                has_pos: l.has_pos,
                has_neg: l.has_neg,
            });
        }
        scratch.debug_check();
        let Scratch { row_lanes, acc, .. } = scratch;
        let (x_lo, x_hi) = (self.x_lo.min(chunk.len()), self.x_hi.min(chunk.len()));
        for (ox, out_v) in chunk.iter_mut().enumerate().take(x_lo) {
            *out_v = self.border_pixel(ox, row_lanes, acc);
        }
        for (ox, out_v) in chunk.iter_mut().enumerate().take(x_hi).skip(x_lo) {
            *out_v = self.interior_pixel(ox, row_lanes, acc);
        }
        for (ox, out_v) in chunk.iter_mut().enumerate().skip(x_hi) {
            *out_v = self.border_pixel(ox, row_lanes, acc);
        }
        if telemetry::enabled() {
            tel.macs.add(acc.macs);
            acc.macs = 0;
        }
    }

    /// One interior output pixel: every `kx` tap is in-bounds by the
    /// definition of `x_lo..x_hi`, so the inner loop carries no padding
    /// test at all.
    #[inline]
    fn interior_pixel(&self, ox: usize, row_lanes: &[RowLane], acc: &mut AccumState) -> f32 {
        acc.reset();
        let base_x = ox * self.stride - self.pad;
        for l in row_lanes {
            let alevel = self.act_levels[l.row_base + base_x + l.kx];
            if alevel == 0 {
                continue;
            }
            let act = self.act_tables[l.lane as usize].words(alevel);
            acc.fold(
                act,
                &self.compact.words_buf[l.word_off..l.word_off + self.words],
                &self.compact.words_buf[l.word_off + self.words..l.word_off + 2 * self.words],
                l.group as usize,
                l.has_pos,
                l.has_neg,
            );
        }
        acc.finish(self.len)
    }

    /// One border output pixel: `ix` is range-checked per lane.
    fn border_pixel(&self, ox: usize, row_lanes: &[RowLane], acc: &mut AccumState) -> f32 {
        acc.reset();
        let x0 = (ox * self.stride) as isize - self.pad as isize;
        for l in row_lanes {
            let ix = x0 + l.kx as isize;
            if ix < 0 || ix >= self.w as isize {
                continue;
            }
            let alevel = self.act_levels[l.row_base + ix as usize];
            if alevel == 0 {
                continue;
            }
            let act = self.act_tables[l.lane as usize].words(alevel);
            acc.fold(
                act,
                &self.compact.words_buf[l.word_off..l.word_off + self.words],
                &self.compact.words_buf[l.word_off + self.words..l.word_off + 2 * self.words],
                l.group as usize,
                l.has_pos,
                l.has_neg,
            );
        }
        acc.finish(self.len)
    }
}

/// The interior output-column span `x_lo..x_hi` for a convolution row:
/// exactly the columns `ox` where every kernel tap `kx ∈ 0..k` reads
/// inside the image (`0 ≤ ox·stride + kx − pad < w`). Empty (possibly
/// with `x_lo = x_hi = 0`) when no column qualifies — e.g. `pad ≥ k`
/// layers whose every pixel touches padding, or kernels wider than the
/// padded image.
fn interior_span(w: usize, k: usize, stride: usize, pad: usize, ow: usize) -> (usize, usize) {
    let x_lo = pad.div_ceil(stride).min(ow);
    let x_hi = if w + pad >= k {
        ((w + pad - k) / stride + 1).min(ow)
    } else {
        0
    };
    (x_lo, x_hi.max(x_lo))
}

impl ResolvedLinear {
    /// Phase 2: computes the whole output tensor. Output neurons
    /// `(b, o)` are split into one contiguous run per worker (rather
    /// than scheduling each neuron as its own chunk), so per-chunk
    /// dispatch overhead is paid once per worker. Chunk geometry cannot
    /// affect the numerics — each neuron is a pure function of its row
    /// index — so this stays bit-identical at every thread count.
    fn compute(&self, tel: &LayerCounters) -> Tensor {
        let mut out = Tensor::zeros(&[self.n, self.outf]);
        let total = self.n * self.outf;
        let chunk_rows = total.div_ceil(rayon::current_num_threads().max(1)).max(1);
        out.data_mut()
            .par_chunks_mut(chunk_rows)
            .enumerate()
            .for_each_init(
                || Scratch::new(self.mode, self.groups, self.words, 0),
                |scratch, (ci, chunk)| {
                    let start = ci * chunk_rows;
                    for (j, out_v) in chunk.iter_mut().enumerate() {
                        *out_v = self.compute_neuron(start + j, &mut scratch.acc);
                    }
                    if telemetry::enabled() {
                        tel.macs.add(scratch.acc.macs);
                        scratch.acc.macs = 0;
                    }
                    scratch.debug_check();
                },
            );
        out
    }

    /// Computes one output neuron: `row = b * outf + o`.
    fn compute_neuron(&self, row: usize, acc: &mut AccumState) -> f32 {
        let o = row % self.outf;
        let b = row / self.outf;
        acc.reset();
        let base = b * self.features;
        for l in self.compact.row(o) {
            let alevel = self.act_levels[base + l.lane as usize];
            if alevel == 0 {
                continue;
            }
            let act = self.act_tables[l.lane as usize].words(alevel);
            acc.fold(
                act,
                self.compact.pos_words(l),
                self.compact.neg_words(l),
                l.group as usize,
                l.has_pos,
                l.has_neg,
            );
        }
        acc.finish(self.len)
    }
}

/// The stochastic inference engine.
///
/// # Examples
///
/// ```
/// use geo_core::{GeoConfig, ScEngine};
/// use geo_nn::{models, Tensor};
///
/// # fn main() -> Result<(), geo_core::GeoError> {
/// let mut engine = ScEngine::new(GeoConfig::geo(32, 64))?;
/// let mut model = models::lenet5(1, 8, 10, 0);
/// let logits = engine.forward(&mut model, &Tensor::full(&[1, 1, 8, 8], 0.5), false)?;
/// assert_eq!(logits.shape(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
pub struct ScEngine {
    config: GeoConfig,
    cache: TableCache,
    resilience: ResilienceReport,
    telemetry: EngineTelemetry,
    /// When set, compute phases run the pre-compaction reference kernels
    /// instead of the compacted ones (see [`ScEngine::forward_reference`]).
    reference_kernels: bool,
}

impl ScEngine {
    /// Creates an engine for a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] for unrealizable configurations.
    pub fn new(config: GeoConfig) -> Result<Self, GeoError> {
        Self::with_faults(config, FaultModel::none())
    }

    /// Creates an engine whose datapath injects the given fault model
    /// (see [`geo_sc::fault`]).
    ///
    /// [`FaultModel::none`] is guaranteed to take the exact fault-free code
    /// path, so its outputs are bit-for-bit identical to
    /// [`ScEngine::new`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] for unrealizable configurations
    /// and [`GeoError::Sc`] for fault rates outside `[0, 1]`.
    pub fn with_faults(config: GeoConfig, faults: FaultModel) -> Result<Self, GeoError> {
        config.validate()?;
        faults.validate().map_err(GeoError::Sc)?;
        let mut cache = TableCache::new();
        if !faults.is_none() {
            cache.set_faults(Some(FaultInjector::new(faults).map_err(GeoError::Sc)?));
        }
        Ok(ScEngine {
            config,
            cache,
            resilience: ResilienceReport::default(),
            telemetry: EngineTelemetry::default(),
            reference_kernels: false,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GeoConfig {
        &self.config
    }

    /// The fault model injected into this engine's datapath, if any.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.cache.fault_model()
    }

    /// Per-layer fault counts accumulated since creation (or the last
    /// [`ScEngine::reset_resilience_report`]). Empty for fault-free
    /// engines.
    pub fn resilience_report(&self) -> &ResilienceReport {
        &self.resilience
    }

    /// Clears the accumulated resilience report.
    pub fn reset_resilience_report(&mut self) {
        self.resilience = ResilienceReport::default();
    }

    /// Snapshot of the per-layer telemetry counters and phase times
    /// accumulated since creation (or the last
    /// [`ScEngine::reset_telemetry`]).
    ///
    /// All-zero unless the crate is built with the `telemetry` feature
    /// (see [`crate::telemetry::enabled`]). Counters cover both the
    /// compacted and reference compute paths, which execute the identical
    /// MAC set by construction.
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.telemetry.report("sc-engine")
    }

    /// Clears the accumulated telemetry counters and phase times.
    pub fn reset_telemetry(&mut self) {
        self.telemetry.reset();
    }

    /// Stream length assigned to each parametrized (conv/linear) layer:
    /// `sp` if the layer feeds a pooling stage, the output length for the
    /// last layer, `s` otherwise. Indexed by position in `model.layers()`.
    pub fn stream_plan(&self, model: &Sequential) -> Vec<Option<usize>> {
        let layers = model.layers();
        let param_idx: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
            .map(|(i, _)| i)
            .collect();
        let mut plan = vec![None; layers.len()];
        for (k, &i) in param_idx.iter().enumerate() {
            let next = param_idx.get(k + 1).copied().unwrap_or(layers.len());
            let pooled = layers[i..next]
                .iter()
                .any(|l| matches!(l, Layer::AvgPool2d(_) | Layer::MaxPool2d(_)));
            let len = if k + 1 == param_idx.len() {
                self.config.output_stream_len
            } else if pooled {
                self.config.stream_len_pooled
            } else {
                self.config.stream_len
            };
            plan[i] = Some(len);
        }
        plan
    }

    /// Runs the network with the SC datapath.
    ///
    /// With `training = true`, float layers run forward first (caching
    /// inputs for backward) and SC outputs replace their results; batch
    /// norm uses batch statistics. With `training = false`, only the SC
    /// path runs and batch norm applies its quantized folded affine.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors and shape mismatches.
    pub fn forward(
        &mut self,
        model: &mut Sequential,
        input: &Tensor,
        training: bool,
    ) -> Result<Tensor, GeoError> {
        self.forward_with_lens(model, input, training, |_, len| Ok(len))
    }

    /// Runs the network through the *pre-compaction reference kernels*:
    /// the per-pixel loops that test padding bounds and `WeightRef`
    /// zeroness on every lane and materialize APC products as heap
    /// bitstreams.
    ///
    /// The reference path is retained for two jobs: it is the oracle the
    /// compacted kernels are proven bit-identical against
    /// (`crates/core/tests/compaction_equivalence.rs`), and it is the
    /// "before" side of the `bench_forward` perf trajectory. Outputs are
    /// bit-for-bit equal to [`ScEngine::forward`] at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors and shape mismatches, exactly as
    /// [`ScEngine::forward`] does.
    pub fn forward_reference(
        &mut self,
        model: &mut Sequential,
        input: &Tensor,
        training: bool,
    ) -> Result<Tensor, GeoError> {
        self.reference_kernels = true;
        let out = self.forward_with_lens(model, input, training, |_, len| Ok(len));
        self.reference_kernels = false;
        out
    }

    /// The forward loop, parameterized over the per-layer stream-length
    /// source: `len_for(param_layer, planned_len)` returns the length each
    /// parametrized layer runs at. [`ScEngine::forward`] passes the stream
    /// plan through unchanged; [`crate::exec::ProgramExecutor`] supplies
    /// lengths decoded from a compiled ISA program (cross-checked against
    /// the plan), so both paths share one datapath and stay bit-identical
    /// by construction.
    pub(crate) fn forward_with_lens<F>(
        &mut self,
        model: &mut Sequential,
        input: &Tensor,
        training: bool,
        mut len_for: F,
    ) -> Result<Tensor, GeoError>
    where
        F: FnMut(u32, usize) -> Result<usize, GeoError>,
    {
        self.cache.begin_pass();
        self.telemetry.passes.incr();
        if self.fault_model().is_some() {
            self.resilience.passes += 1;
        }
        model.set_training(training);
        let plan = self.stream_plan(model);
        let mut x = input.clone();
        let mut param_layer = 0u32;
        for (i, layer) in model.layers_mut().iter_mut().enumerate() {
            match layer {
                Layer::Conv2d(conv) => {
                    let len = len_for(param_layer, planned_len(&plan, i)?)?;
                    if training {
                        let _ = conv.forward(&x)?; // cache input for backward
                    }
                    let before = self.cache.fault_counters();
                    x = self.sc_conv(conv, &x, len, param_layer)?;
                    self.record_layer_faults(param_layer, before);
                    param_layer += 1;
                }
                Layer::Linear(lin) => {
                    let len = len_for(param_layer, planned_len(&plan, i)?)?;
                    if training {
                        let _ = lin.forward(&x)?;
                    }
                    let before = self.cache.fault_counters();
                    x = self.sc_linear(lin, &x, len, param_layer)?;
                    self.record_layer_faults(param_layer, before);
                    param_layer += 1;
                }
                Layer::BatchNorm2d(bn) => {
                    if training {
                        x = bn.forward(&x)?;
                    } else {
                        // Near-memory work (quantized BN, pooling on
                        // converted counts) is attributed to the
                        // parametrized layer whose outputs it transforms.
                        let sw = Stopwatch::start();
                        x = quantized_batchnorm(bn, &x, self.config.bn_bits)?;
                        if telemetry::enabled() {
                            self.telemetry
                                .layer(param_layer.saturating_sub(1) as usize)
                                .add_phase_ns(Phase::NearMem, sw.elapsed_ns());
                        }
                    }
                }
                Layer::Relu(r) => {
                    // ReLU, then saturate at 1.0: unipolar streams cannot
                    // carry more (the straight-through clamp SC training
                    // learns around).
                    x = r.forward(&x).map(|v| v.min(1.0));
                }
                other => {
                    let sw = Stopwatch::start();
                    x = other.forward(&x)?;
                    if telemetry::enabled() {
                        self.telemetry
                            .layer(param_layer.saturating_sub(1) as usize)
                            .add_phase_ns(Phase::NearMem, sw.elapsed_ns());
                    }
                }
            }
        }
        Ok(x)
    }

    /// Runs the SC datapath of the single parametrized layer at
    /// `layer_index` on the given activations — the building block of
    /// per-layer error analysis ([`crate::analyze`]).
    ///
    /// Uses the same stream plan, seeds, and tables as a full forward, so
    /// the result is bit-identical to that layer's contribution in
    /// [`ScEngine::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] if `layer_index` is not a
    /// conv/linear layer; propagates substrate errors.
    pub fn forward_single_layer(
        &mut self,
        model: &Sequential,
        layer_index: usize,
        input: &Tensor,
    ) -> Result<Tensor, GeoError> {
        self.cache.begin_pass();
        let plan = self.stream_plan(model);
        let len = plan.get(layer_index).copied().flatten().ok_or_else(|| {
            GeoError::InvalidConfig(format!(
                "layer {layer_index} is not a parametrized (conv/linear) layer"
            ))
        })?;
        let param_layer = model.layers()[..layer_index]
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
            .count() as u32;
        let before = self.cache.fault_counters();
        // Layers are borrowed, not cloned: the resolve phase only reads
        // weights, so nothing here needs `&mut` access to the model.
        let out = match &model.layers()[layer_index] {
            Layer::Conv2d(conv) => self.sc_conv(conv, input, len, param_layer),
            Layer::Linear(lin) => self.sc_linear(lin, input, len, param_layer),
            other => {
                return Err(GeoError::Internal(format!(
                    "stream plan assigned a length to non-parametrized layer {}",
                    other.kind()
                )))
            }
        };
        self.record_layer_faults(param_layer, before);
        out
    }

    /// Attributes faults injected since the `before` snapshot to
    /// `param_layer`.
    fn record_layer_faults(&mut self, param_layer: u32, before: FaultCounters) {
        if self.cache.fault_model().is_none() {
            return;
        }
        let delta = self.cache.fault_counters().delta_since(&before);
        if telemetry::enabled() {
            self.telemetry
                .layer(param_layer as usize)
                .fault_events
                .add(delta.total());
        }
        self.resilience.record(param_layer, delta);
    }

    fn layer_seed(&self, param_layer: u32) -> u32 {
        self.config
            .base_seed
            .wrapping_add(param_layer.wrapping_mul(LAYER_SEED_STRIDE))
    }

    fn lane_table(
        &mut self,
        width: u8,
        len: usize,
        spec: geo_sc::RngSpec,
    ) -> Result<LaneTable, GeoError> {
        Ok(if self.config.progressive {
            LaneTable::Progressive(self.cache.progressive(self.config.rng, width, len, spec)?)
        } else {
            LaneTable::Normal(self.cache.regular(self.config.rng, width, len, spec)?)
        })
    }

    /// Quantized activation level for table lookup.
    ///
    /// Operands live in memory as 8-bit values; matching the LFSR width to
    /// the stream length *truncates* them to the top `width` bits (§II-B).
    /// A full-scale operand (`x = 1.0`) quantizes to level 256 — the
    /// documented all-ones encoding of [`quantize_unipolar`] — and
    /// `256 >> shift` is exactly `2^width`, the all-ones entry a normal
    /// [`StreamTable`] explicitly carries. The progressive path instead
    /// saturates at 255: its stream buffer holds 8-bit operands, a
    /// deliberate hardware limit and the one place the two generation
    /// modes encode operands differently.
    fn act_level(&self, x: f32, width: u8) -> u32 {
        let q = quantize_unipolar(x.clamp(0.0, 1.0), 8);
        if self.config.progressive {
            q.min(255)
        } else {
            q >> (8 - width.min(8))
        }
    }

    /// Quantized split-weight levels for table lookup (same truncation and
    /// full-scale semantics as [`Self::act_level`], so `|w| = 1.0` keeps
    /// the all-ones stream in normal mode).
    fn weight_levels(&self, w: f32, width: u8) -> (u32, u32) {
        let w = w.clamp(-1.0, 1.0);
        let pos = quantize_unipolar(w.max(0.0), 8);
        let neg = quantize_unipolar((-w).max(0.0), 8);
        if self.config.progressive {
            (pos.min(255), neg.min(255))
        } else {
            let shift = 8 - width.min(8);
            (pos >> shift, neg >> shift)
        }
    }

    /// Stochastic convolution of one layer: serial resolve, parallel
    /// compute.
    fn sc_conv(
        &mut self,
        conv: &Conv2d,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<Tensor, GeoError> {
        let resolved = self.resolve_conv(conv, input, len, param_layer)?;
        let tel = self.telemetry.layer(param_layer as usize);
        let sw = Stopwatch::start();
        let out = if self.reference_kernels {
            resolved.compute_reference(tel)
        } else {
            Ok(resolved.compute(tel))
        };
        if telemetry::enabled() {
            tel.add_phase_ns(Phase::Compute, sw.elapsed_ns());
        }
        out
    }

    /// Phase 1 for a convolution: builds/fetches every lane table through
    /// the serial [`TableCache`] (in a fixed order, so fault injection is
    /// deterministic) and quantizes every operand.
    fn resolve_conv(
        &mut self,
        conv: &Conv2d,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<ResolvedConv, GeoError> {
        let s = input.shape();
        if s.len() != 4 || s[1] != conv.cin() {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {}, H, W)", conv.cin()),
                actual: s.to_vec(),
            }));
        }
        let sw_resolve = Stopwatch::start();
        let (hits0, misses0) = self.cache.lookup_counts();
        let (n, cin, h, w) = (s[0], s[1], s[2], s[3]);
        let (cout, k) = (conv.cout(), conv.kernel());
        let (stride, pad) = (conv.stride(), conv.padding());
        let (oh, ow) = conv.output_size(h, w);
        let width = GeoConfig::width_for(len);
        let dims = KernelDims::new(cout, cin, k, k);
        let plan = SeedPlan::new(
            self.config.sharing,
            width,
            self.layer_seed(param_layer),
            dims,
        );
        let volume = dims.kernel_volume();
        let mode = self.config.accumulation;

        // Activation lane tables: one generator per kernel position,
        // broadcast across all rows (kernels).
        let act_tables: Vec<LaneTable> = (0..volume)
            .map(|lane| {
                let spec = plan.activation_spec(lane);
                self.lane_table(width, len, spec)
            })
            .collect::<Result<_, _>>()?;

        // Weight references: per (kernel, position), with the accumulator
        // group each lane feeds precomputed from its kernel coordinates.
        let mut wrefs = Vec::with_capacity(cout * volume);
        for co in 0..cout {
            for ci in 0..cin {
                for ky in 0..k {
                    for kx in 0..k {
                        let spec = plan.weight_spec(co, ci, ky, kx);
                        let table = self.lane_table(width, len, spec)?;
                        let levels =
                            self.weight_levels(conv.weight.value.at4(co, ci, ky, kx), width);
                        let group = match mode {
                            Accumulation::Pbw => kx,
                            Accumulation::Pbhw => ky * k + kx,
                            Accumulation::Or | Accumulation::Fxp | Accumulation::Apc => 0,
                        };
                        wrefs.push(WeightRef::resolve(&table, levels, group)?);
                    }
                }
            }
        }
        if telemetry::enabled() {
            let (hits, misses) = self.cache.lookup_counts();
            let tel = self.telemetry.layer(param_layer as usize);
            tel.add_phase_ns(Phase::Resolve, sw_resolve.elapsed_ns());
            tel.table_hits.add(hits - hits0);
            tel.table_misses.add(misses - misses0);
        }

        // Activation levels for the whole input tensor, validated once so
        // the compute phase's table lookups are infallible.
        let sw_convert = Stopwatch::start();
        let act_levels: Vec<u32> = input
            .data()
            .iter()
            .map(|&x| self.act_level(x, width))
            .collect();
        validate_act_levels(&act_tables, &act_levels)?;
        if telemetry::enabled() {
            self.telemetry
                .layer(param_layer as usize)
                .add_phase_ns(Phase::Convert, sw_convert.elapsed_ns());
        }

        let sw_compact = Stopwatch::start();
        let groups = match mode {
            Accumulation::Or => 1,
            Accumulation::Pbw => k,
            Accumulation::Pbhw => k * k,
            Accumulation::Fxp | Accumulation::Apc => 1, // handled separately
        };
        let words = len.div_ceil(64);
        let compact = CompactKernel::build(&wrefs, cout, volume, words, |lane| {
            let ci = lane / (k * k);
            let rem = lane % (k * k);
            ((ci as u32), ((rem / k) as u32), ((rem % k) as u32))
        });
        let (x_lo, x_hi) = interior_span(w, k, stride, pad, ow);
        if telemetry::enabled() {
            let tel = self.telemetry.layer(param_layer as usize);
            tel.add_phase_ns(Phase::Resolve, sw_compact.elapsed_ns());
            tel.compacted_lanes.add(compact.lanes.len() as u64);
            tel.skipped_zero_lanes
                .add((wrefs.len() - compact.lanes.len()) as u64);
        }
        Ok(ResolvedConv {
            mode,
            len,
            words,
            groups,
            n,
            cin,
            h,
            w,
            cout,
            k,
            stride,
            pad,
            oh,
            ow,
            volume,
            act_tables,
            wrefs,
            act_levels,
            compact,
            x_lo,
            x_hi,
        })
    }

    /// Stochastic fully-connected layer: features map onto a pseudo-kernel
    /// of width [`FC_BINARY_WIDTH`], so the accumulation split applies.
    /// Serial resolve, parallel compute.
    fn sc_linear(
        &mut self,
        lin: &Linear,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<Tensor, GeoError> {
        let resolved = self.resolve_linear(lin, input, len, param_layer)?;
        let tel = self.telemetry.layer(param_layer as usize);
        let sw = Stopwatch::start();
        let out = if self.reference_kernels {
            resolved.compute_reference(tel)
        } else {
            Ok(resolved.compute(tel))
        };
        if telemetry::enabled() {
            tel.add_phase_ns(Phase::Compute, sw.elapsed_ns());
        }
        out
    }

    /// Phase 1 for a fully-connected layer (see [`Self::resolve_conv`]).
    fn resolve_linear(
        &mut self,
        lin: &Linear,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<ResolvedLinear, GeoError> {
        let s = input.shape();
        if s.len() != 2 || s[1] != lin.input_features() {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {})", lin.input_features()),
                actual: s.to_vec(),
            }));
        }
        let sw_resolve = Stopwatch::start();
        let (hits0, misses0) = self.cache.lookup_counts();
        let (n, features) = (s[0], s[1]);
        let outf = lin.output_features();
        let width = GeoConfig::width_for(len);
        let wdim = FC_BINARY_WIDTH.min(features);
        let cdim = features.div_ceil(wdim);
        let dims = KernelDims::new(outf, cdim, 1, wdim);
        let plan = SeedPlan::new(
            self.config.sharing,
            width,
            self.layer_seed(param_layer),
            dims,
        );
        let mode = self.config.accumulation;

        let act_tables: Vec<LaneTable> = (0..features)
            .map(|lane| {
                let spec = plan.activation_spec(lane);
                self.lane_table(width, len, spec)
            })
            .collect::<Result<_, _>>()?;
        let mut wrefs = Vec::with_capacity(outf * features);
        for o in 0..outf {
            for i in 0..features {
                let spec = plan.weight_spec(o, i / wdim, 0, i % wdim);
                let table = self.lane_table(width, len, spec)?;
                let levels = self.weight_levels(lin.weight.value.at2(o, i), width);
                let group = match mode {
                    Accumulation::Pbw | Accumulation::Pbhw => i % wdim,
                    Accumulation::Or | Accumulation::Fxp | Accumulation::Apc => 0,
                };
                wrefs.push(WeightRef::resolve(&table, levels, group)?);
            }
        }
        if telemetry::enabled() {
            let (hits, misses) = self.cache.lookup_counts();
            let tel = self.telemetry.layer(param_layer as usize);
            tel.add_phase_ns(Phase::Resolve, sw_resolve.elapsed_ns());
            tel.table_hits.add(hits - hits0);
            tel.table_misses.add(misses - misses0);
        }

        let sw_convert = Stopwatch::start();
        let act_levels: Vec<u32> = (0..n)
            .flat_map(|b| (0..features).map(move |i| (b, i)))
            .map(|(b, i)| self.act_level(input.at2(b, i), width))
            .collect();
        validate_act_levels(&act_tables, &act_levels)?;
        if telemetry::enabled() {
            self.telemetry
                .layer(param_layer as usize)
                .add_phase_ns(Phase::Convert, sw_convert.elapsed_ns());
        }

        let sw_compact = Stopwatch::start();
        let groups = match mode {
            Accumulation::Or => 1,
            Accumulation::Pbw | Accumulation::Pbhw => wdim,
            Accumulation::Fxp | Accumulation::Apc => 1,
        };
        let words = len.div_ceil(64);
        let compact = CompactKernel::build(&wrefs, outf, features, words, |_| (0, 0, 0));
        if telemetry::enabled() {
            let tel = self.telemetry.layer(param_layer as usize);
            tel.add_phase_ns(Phase::Resolve, sw_compact.elapsed_ns());
            tel.compacted_lanes.add(compact.lanes.len() as u64);
            tel.skipped_zero_lanes
                .add((wrefs.len() - compact.lanes.len()) as u64);
        }
        Ok(ResolvedLinear {
            mode,
            len,
            words,
            groups,
            n,
            features,
            outf,
            act_tables,
            wrefs,
            act_levels,
            compact,
        })
    }
}

/// Stream length planned for layer `i`, which the forward loop only asks
/// for at conv/linear layers — a `None` there is an engine bug.
fn planned_len(plan: &[Option<usize>], i: usize) -> Result<usize, GeoError> {
    plan.get(i).copied().flatten().ok_or_else(|| {
        GeoError::Internal(format!(
            "parametrized layer {i} missing from the stream plan"
        ))
    })
}

/// The pre-compaction compute kernels, preserved verbatim.
///
/// Two consumers keep this module alive: the compaction equivalence
/// proptests use it as the bit-identity oracle for the compacted kernels,
/// and `bench_forward` times it as the "before" side of the repo's perf
/// trajectory (`BENCH_forward.json`). It deliberately keeps every cost the
/// compacted path removed — per-pixel padding and zero-weight tests, the
/// fallible table lookup, per-chunk FC scheduling, and the per-MAC heap
/// allocations feeding [`geo_sc::apc::apc_count`].
mod reference {
    use super::*;

    /// Per-worker accumulator state of the pre-compaction engine; the APC
    /// buffers grow with each product stream, exactly as they used to.
    pub(super) struct RefScratch {
        acc_pos: Vec<u64>,
        acc_neg: Vec<u64>,
        fxp_pos: i64,
        fxp_neg: i64,
        apc_pos: Vec<Bitstream>,
        apc_neg: Vec<Bitstream>,
        /// MACs accumulated since the last telemetry flush; *not* cleared
        /// by the per-pixel [`RefScratch::reset`]. One accumulate call per
        /// surviving lane, the same MAC definition the compacted path
        /// counts — the two paths skip the identical lane set, so their
        /// totals are provably equal.
        macs: u64,
    }

    impl RefScratch {
        fn new(groups: usize, words: usize) -> Self {
            RefScratch {
                acc_pos: vec![0u64; groups * words],
                acc_neg: vec![0u64; groups * words],
                fxp_pos: 0,
                fxp_neg: 0,
                apc_pos: Vec::new(),
                apc_neg: Vec::new(),
                macs: 0,
            }
        }

        fn reset(&mut self) {
            self.acc_pos.fill(0);
            self.acc_neg.fill(0);
            self.fxp_pos = 0;
            self.fxp_neg = 0;
            self.apc_pos.clear();
            self.apc_neg.clear();
        }

        /// Converts the accumulated state into the output value.
        fn finish(&self, mode: Accumulation, len: usize) -> Result<f32, GeoError> {
            let signed = match mode {
                Accumulation::Or | Accumulation::Pbw | Accumulation::Pbhw => {
                    let pos: i64 = self.acc_pos.iter().map(|w| w.count_ones() as i64).sum();
                    let neg: i64 = self.acc_neg.iter().map(|w| w.count_ones() as i64).sum();
                    pos - neg
                }
                Accumulation::Fxp => self.fxp_pos - self.fxp_neg,
                Accumulation::Apc => {
                    // One approximate compressor layer, then exact counting
                    // — the single-level limit the paper describes for APCs.
                    let pos = geo_sc::apc::apc_count(&self.apc_pos, 1)? as i64;
                    let neg = geo_sc::apc::apc_count(&self.apc_neg, 1)? as i64;
                    pos - neg
                }
            };
            Ok(signed as f32 / len as f32)
        }
    }

    /// Folds one multiply-accumulate into the mode-specific accumulator
    /// state (pre-compaction form, including the per-MAC APC allocations).
    fn accumulate(
        mode: Accumulation,
        act_words: &[u64],
        wref: &WeightRef,
        words: usize,
        len: usize,
        scratch: &mut RefScratch,
    ) {
        if telemetry::enabled() {
            scratch.macs += 1;
        }
        let g = wref.group;
        match mode {
            Accumulation::Or | Accumulation::Pbw | Accumulation::Pbhw => {
                if words == 1 {
                    if wref.pos > 0 {
                        scratch.acc_pos[g] |= act_words[0] & wref.pos_words[0];
                    }
                    if wref.neg > 0 {
                        scratch.acc_neg[g] |= act_words[0] & wref.neg_words[0];
                    }
                    return;
                }
                if wref.pos > 0 {
                    for (j, &a) in act_words.iter().enumerate().take(words) {
                        scratch.acc_pos[g * words + j] |= a & wref.pos_words[j];
                    }
                }
                if wref.neg > 0 {
                    for (j, &a) in act_words.iter().enumerate().take(words) {
                        scratch.acc_neg[g * words + j] |= a & wref.neg_words[j];
                    }
                }
            }
            Accumulation::Fxp => {
                if wref.pos > 0 {
                    scratch.fxp_pos += (0..words)
                        .map(|j| (act_words[j] & wref.pos_words[j]).count_ones() as i64)
                        .sum::<i64>();
                }
                if wref.neg > 0 {
                    scratch.fxp_neg += (0..words)
                        .map(|j| (act_words[j] & wref.neg_words[j]).count_ones() as i64)
                        .sum::<i64>();
                }
            }
            Accumulation::Apc => {
                if wref.pos > 0 {
                    let product: Vec<u64> = (0..words)
                        .map(|j| act_words[j] & wref.pos_words[j])
                        .collect();
                    scratch.apc_pos.push(Bitstream::from_words(product, len));
                }
                if wref.neg > 0 {
                    let product: Vec<u64> = (0..words)
                        .map(|j| act_words[j] & wref.neg_words[j])
                        .collect();
                    scratch.apc_neg.push(Bitstream::from_words(product, len));
                }
            }
        }
    }

    impl ResolvedConv {
        /// Pre-compaction phase 2: the per-pixel `cin·k·k` loop with
        /// padding, zero-activation, and zero-weight tests inline.
        pub(super) fn compute_reference(&self, tel: &LayerCounters) -> Result<Tensor, GeoError> {
            let mut out = Tensor::zeros(&[self.n, self.cout, self.oh, self.ow]);
            let first_err: Mutex<Option<GeoError>> = Mutex::new(None);
            out.data_mut()
                .par_chunks_mut(self.ow.max(1))
                .enumerate()
                .for_each_init(
                    || RefScratch::new(self.groups, self.words),
                    |scratch, (row, chunk)| {
                        if let Err(err) = self.compute_row_reference(row, chunk, scratch) {
                            record_error(&first_err, err);
                        }
                        if telemetry::enabled() {
                            tel.macs.add(scratch.macs);
                            scratch.macs = 0;
                        }
                    },
                );
            if let Some(err) = first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
                return Err(err);
            }
            Ok(out)
        }

        fn compute_row_reference(
            &self,
            row: usize,
            chunk: &mut [f32],
            scratch: &mut RefScratch,
        ) -> Result<(), GeoError> {
            let oy = row % self.oh;
            let bc = row / self.oh;
            let co = bc % self.cout;
            let b = bc / self.cout;
            let idx_in =
                |c: usize, y: usize, x: usize| ((b * self.cin + c) * self.h + y) * self.w + x;
            for (ox, out_v) in chunk.iter_mut().enumerate() {
                scratch.reset();
                let mut lane = 0usize;
                for ci in 0..self.cin {
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            let cur = lane;
                            lane += 1;
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if iy < 0 || iy >= self.h as isize || ix < 0 || ix >= self.w as isize {
                                continue;
                            }
                            let alevel = self.act_levels[idx_in(ci, iy as usize, ix as usize)];
                            if alevel == 0 {
                                continue;
                            }
                            let wref = &self.wrefs[co * self.volume + cur];
                            if wref.is_zero() {
                                continue;
                            }
                            let astream = self.act_tables[cur].stream(alevel)?;
                            accumulate(
                                self.mode,
                                astream.as_words(),
                                wref,
                                self.words,
                                self.len,
                                scratch,
                            );
                        }
                    }
                }
                *out_v = scratch.finish(self.mode, self.len)?;
            }
            Ok(())
        }
    }

    impl ResolvedLinear {
        /// Pre-compaction phase 2: each output neuron scheduled as its
        /// own single-element chunk (`par_chunks_mut(1)`).
        pub(super) fn compute_reference(&self, tel: &LayerCounters) -> Result<Tensor, GeoError> {
            let mut out = Tensor::zeros(&[self.n, self.outf]);
            let first_err: Mutex<Option<GeoError>> = Mutex::new(None);
            out.data_mut().par_chunks_mut(1).enumerate().for_each_init(
                || RefScratch::new(self.groups, self.words),
                |scratch, (row, chunk)| {
                    if let Err(err) = self.compute_neuron_reference(row, chunk, scratch) {
                        record_error(&first_err, err);
                    }
                    if telemetry::enabled() {
                        tel.macs.add(scratch.macs);
                        scratch.macs = 0;
                    }
                },
            );
            if let Some(err) = first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
                return Err(err);
            }
            Ok(out)
        }

        fn compute_neuron_reference(
            &self,
            row: usize,
            chunk: &mut [f32],
            scratch: &mut RefScratch,
        ) -> Result<(), GeoError> {
            let o = row % self.outf;
            let b = row / self.outf;
            scratch.reset();
            for i in 0..self.features {
                let alevel = self.act_levels[b * self.features + i];
                if alevel == 0 {
                    continue;
                }
                let wref = &self.wrefs[o * self.features + i];
                if wref.is_zero() {
                    continue;
                }
                let astream = self.act_tables[i].stream(alevel)?;
                accumulate(
                    self.mode,
                    astream.as_words(),
                    wref,
                    self.words,
                    self.len,
                    scratch,
                );
            }
            chunk[0] = scratch.finish(self.mode, self.len)?;
            Ok(())
        }
    }
}

/// Inference-time batch normalization: the folded per-channel affine
/// quantized to `bits` (GEO's near-memory 8-bit BN), or exact when `bits`
/// is `None`.
fn quantized_batchnorm(
    bn: &mut geo_nn::BatchNorm2d,
    x: &Tensor,
    bits: Option<u8>,
) -> Result<Tensor, GeoError> {
    let affine = bn.folded_affine();
    let (scales, shifts): (Vec<f32>, Vec<f32>) = affine.into_iter().unzip();
    let (scales, shifts) = match bits {
        Some(b) => {
            let st = geo_nn::quant::fake_quantize(
                &Tensor::from_vec(vec![scales.len()], scales).map_err(GeoError::Nn)?,
                b,
            );
            let sh = geo_nn::quant::fake_quantize(
                &Tensor::from_vec(vec![shifts.len()], shifts).map_err(GeoError::Nn)?,
                b,
            );
            (st.into_data(), sh.into_data())
        }
        None => (scales, shifts),
    };
    let s = x.shape();
    if s.len() != 4 || s[1] != scales.len() {
        return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
            expected: format!("(N, {}, H, W)", scales.len()),
            actual: s.to_vec(),
        }));
    }
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let mut out = Tensor::zeros(s);
    for b in 0..n {
        for ci in 0..c {
            for y in 0..h {
                for xx in 0..w {
                    out.set4(b, ci, y, xx, scales[ci] * x.at4(b, ci, y, xx) + shifts[ci]);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_nn::models;
    use geo_sc::{RngKind, SharingLevel};

    fn engine(cfg: GeoConfig) -> ScEngine {
        ScEngine::new(cfg).unwrap()
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = GeoConfig::geo(32, 64);
        cfg.stream_len = 99;
        assert!(ScEngine::new(cfg).is_err());
    }

    #[test]
    fn stream_plan_assigns_sp_s_and_output_lengths() {
        let eng = engine(GeoConfig::geo(32, 64));
        let model = models::cnn4(3, 8, 10, 0);
        let plan = eng.stream_plan(&model);
        let lens: Vec<usize> = plan.iter().flatten().copied().collect();
        // conv1 (pooled) = 32, conv2 (pooled) = 32, conv3 = 64, fc = 128.
        assert_eq!(lens, vec![32, 32, 64, 128]);
    }

    #[test]
    fn forward_produces_logits_of_right_shape() {
        let mut eng = engine(GeoConfig::geo(32, 64));
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let y = eng.forward(&mut model, &x, false).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lfsr_inference_is_deterministic_trng_is_not() {
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.6);
        let mut eng = engine(GeoConfig::geo(32, 64));
        let a = eng.forward(&mut model, &x, false).unwrap();
        let b = eng.forward(&mut model, &x, false).unwrap();
        assert_eq!(a.data(), b.data(), "LFSR streams are repeatable");

        let mut eng = engine(GeoConfig::geo(32, 64).with_rng(RngKind::Trng));
        let a = eng.forward(&mut model, &x, false).unwrap();
        let b = eng.forward(&mut model, &x, false).unwrap();
        assert_ne!(a.data(), b.data(), "TRNG streams differ every pass");
    }

    #[test]
    fn fxp_accumulation_tracks_float_convolution() {
        // With exact fixed-point accumulation and long streams, the SC conv
        // should approximate the float conv closely.
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = geo_nn::Conv2d::new(2, 3, 3, 1, 1, false, &mut rng);
        let x = Tensor::kaiming(&[1, 2, 6, 6], 4, &mut rng).map(|v| v.abs().min(1.0));
        let float_out = conv.forward(&x).unwrap();
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let cfg = GeoConfig {
            accumulation: Accumulation::Fxp,
            progressive: false,
            output_stream_len: 256,
            ..GeoConfig::geo(256, 256)
        };
        let mut eng = engine(cfg);
        let sc_out = eng.forward(&mut model, &x, false).unwrap();
        let mut max_err = 0.0f32;
        for (a, b) in sc_out.data().iter().zip(float_out.data()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err < 0.25, "max error {max_err}");
    }

    #[test]
    fn or_accumulation_compresses_relative_to_fxp() {
        // OR loses overlapping ones, so its outputs are biased toward zero
        // relative to exact accumulation on an all-positive layer.
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = geo_nn::Conv2d::new(3, 2, 3, 1, 0, false, &mut rng);
        for v in conv.weight.value.data_mut() {
            *v = v.abs().max(0.2); // all positive
        }
        let x = Tensor::full(&[1, 3, 5, 5], 0.5);
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let base = GeoConfig::geo(128, 128).with_progressive(false);
        let mut eng_or = engine(base.with_accumulation(Accumulation::Or));
        let mut eng_fxp = engine(base.with_accumulation(Accumulation::Fxp));
        let or_out = eng_or.forward(&mut model, &x, false).unwrap();
        let fxp_out = eng_fxp.forward(&mut model, &x, false).unwrap();
        let or_mean: f32 = or_out.data().iter().sum::<f32>() / or_out.len() as f32;
        let fxp_mean: f32 = fxp_out.data().iter().sum::<f32>() / fxp_out.len() as f32;
        assert!(
            or_mean < fxp_mean * 0.8,
            "OR should compress: or {or_mean}, fxp {fxp_mean}"
        );
        // And OR outputs are bounded by the stream value range.
        assert!(or_out.data().iter().all(|&v| v <= 1.0 + 1e-6));
    }

    #[test]
    fn pbw_sits_between_or_and_fxp() {
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = geo_nn::Conv2d::new(2, 2, 3, 1, 0, false, &mut rng);
        for v in conv.weight.value.data_mut() {
            *v = v.abs().max(0.15);
        }
        let x = Tensor::full(&[1, 2, 5, 5], 0.6);
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let base = GeoConfig::geo(128, 128).with_progressive(false);
        let mean = |mode: Accumulation, model: &mut Sequential| {
            let mut eng = engine(base.with_accumulation(mode));
            let out = eng.forward(model, &x, false).unwrap();
            out.data().iter().sum::<f32>() / out.len() as f32
        };
        let or_m = mean(Accumulation::Or, &mut model);
        let pbw_m = mean(Accumulation::Pbw, &mut model);
        let pbhw_m = mean(Accumulation::Pbhw, &mut model);
        let fxp_m = mean(Accumulation::Fxp, &mut model);
        assert!(or_m <= pbw_m + 1e-6, "or {or_m} ≤ pbw {pbw_m}");
        assert!(pbw_m <= pbhw_m + 1e-6, "pbw {pbw_m} ≤ pbhw {pbhw_m}");
        assert!(pbhw_m <= fxp_m + 1e-6, "pbhw {pbhw_m} ≤ fxp {fxp_m}");
    }

    #[test]
    fn apc_overcounts_relative_to_fxp() {
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = geo_nn::Conv2d::new(2, 1, 3, 1, 0, false, &mut rng);
        for v in conv.weight.value.data_mut() {
            *v = v.abs().max(0.3);
        }
        let x = Tensor::full(&[1, 2, 4, 4], 0.7);
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let base = GeoConfig::geo(128, 128).with_progressive(false);
        let mut eng_apc = engine(base.with_accumulation(Accumulation::Apc));
        let mut eng_fxp = engine(base.with_accumulation(Accumulation::Fxp));
        let apc_out = eng_apc.forward(&mut model, &x, false).unwrap();
        let fxp_out = eng_fxp.forward(&mut model, &x, false).unwrap();
        for (a, f) in apc_out.data().iter().zip(fxp_out.data()) {
            assert!(*a >= *f - 1e-6, "APC never undercounts: {a} vs {f}");
        }
    }

    #[test]
    fn progressive_mode_changes_little() {
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut eng_n = engine(GeoConfig::geo(64, 64).with_progressive(false));
        let mut eng_p = engine(GeoConfig::geo(64, 64).with_progressive(true));
        let yn = eng_n.forward(&mut model, &x, false).unwrap();
        let yp = eng_p.forward(&mut model, &x, false).unwrap();
        let mut diff = 0.0f32;
        for (a, b) in yn.data().iter().zip(yp.data()) {
            diff = diff.max((a - b).abs());
        }
        assert!(diff < 1.2, "progressive deviation {diff} stays bounded");
    }

    #[test]
    fn extreme_sharing_correlates_outputs() {
        // Under extreme sharing, kernels see heavily correlated streams;
        // the forward pass still runs and stays finite.
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut eng = engine(GeoConfig::geo(32, 64).with_sharing(SharingLevel::Extreme));
        let y = eng.forward(&mut model, &x, false).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_mode_caches_for_backward() {
        let mut eng = engine(GeoConfig::geo(32, 64));
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let y = eng.forward(&mut model, &x, true).unwrap();
        // Backward must succeed because float layers cached their inputs.
        let grad = Tensor::full(y.shape(), 1.0);
        model.backward(&grad).unwrap();
        let grads_nonzero = model.params_mut().iter().any(|p| p.grad.max_abs() > 0.0);
        assert!(grads_nonzero);
    }

    #[test]
    fn interior_span_matches_bruteforce() {
        // `interior_span` must mark exactly the output columns whose every
        // kernel tap reads inside the image, for any geometry — including
        // pad >= k, stride > 1, and kernels wider than the padded image.
        for w in 1..=8usize {
            for k in 1..=4usize {
                for stride in 1..=3usize {
                    for pad in 0..=5usize {
                        if w + 2 * pad < k {
                            continue; // no valid output columns at all
                        }
                        let ow = (w + 2 * pad - k) / stride + 1;
                        let (x_lo, x_hi) = interior_span(w, k, stride, pad, ow);
                        assert!(x_lo <= x_hi && x_hi <= ow, "span order w={w} k={k}");
                        for ox in 0..ow {
                            let interior = (0..k).all(|kx| {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                ix >= 0 && ix < w as isize
                            });
                            assert_eq!(
                                interior,
                                (x_lo..x_hi).contains(&ox),
                                "w={w} k={k} stride={stride} pad={pad} ox={ox}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_apc_matches_apc_count() {
        // The streaming one-level APC fold must reproduce
        // `apc_count(products, 1)` exactly, for even and odd stream
        // counts and multi-word streams.
        for len in [64usize, 96, 256] {
            let words = len.div_ceil(64);
            for count in 0..9usize {
                let streams: Vec<Bitstream> = (0..count)
                    .map(|i| Bitstream::from_fn(len, move |c| (c * 7 + i * 13) % 5 < 2))
                    .collect();
                let expected = geo_sc::apc::apc_count(&streams, 1).unwrap() as i64;
                let mut acc = ApcAcc::new(words);
                let ones = Bitstream::ones(len);
                for s in &streams {
                    acc.push(ones.as_words(), s.as_words());
                }
                assert_eq!(acc.total(), expected, "len={len} count={count}");
                // Reset reuses the buffer with no reallocation.
                let ptr = acc.pending.as_ptr();
                acc.reset();
                assert_eq!(acc.total(), 0);
                assert_eq!(acc.pending.as_ptr(), ptr);
            }
        }
    }

    #[test]
    fn compacted_forward_matches_reference_for_every_mode() {
        // Smoke-level pin of the compaction contract (the proptests in
        // tests/compaction_equivalence.rs sweep the full space).
        let mut model = models::lenet5(1, 8, 10, 3);
        let x = Tensor::full(&[2, 1, 8, 8], 0.37);
        for mode in Accumulation::ALL {
            for progressive in [false, true] {
                let cfg = GeoConfig::geo(32, 32)
                    .with_accumulation(mode)
                    .with_progressive(progressive);
                let a = engine(cfg).forward(&mut model, &x, false).unwrap();
                let b = engine(cfg)
                    .forward_reference(&mut model, &x, false)
                    .unwrap();
                assert_eq!(
                    a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{mode:?} progressive={progressive}"
                );
            }
        }
    }

    #[test]
    fn compact_kernel_drops_only_zero_lanes() {
        // Every nonzero WeightRef appears in the compacted list, in
        // resolve order, and every zero lane is gone.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let conv = geo_nn::Conv2d::new(2, 3, 3, 1, 1, false, &mut rng);
        let x = Tensor::full(&[1, 2, 5, 5], 0.5);
        let mut eng = engine(GeoConfig::geo(32, 32));
        let resolved = eng.resolve_conv(&conv, &x, 32, 0).unwrap();
        let nonzero: usize = resolved.wrefs.iter().filter(|w| !w.is_zero()).count();
        assert_eq!(resolved.compact.lanes.len(), nonzero);
        assert_eq!(resolved.compact.offsets.len(), conv.cout() + 1);
        for co in 0..conv.cout() {
            let lanes = resolved.compact.row(co);
            // Lane indices strictly ascend within a row (resolve order).
            for pair in lanes.windows(2) {
                assert!(pair[0].lane < pair[1].lane);
            }
            for l in lanes {
                let wref = &resolved.wrefs[co * resolved.volume + l.lane as usize];
                assert!(!wref.is_zero());
                assert_eq!(l.has_pos, wref.pos > 0);
                assert_eq!(l.has_neg, wref.neg > 0);
                if l.has_pos {
                    assert_eq!(resolved.compact.pos_words(l), &wref.pos_words[..]);
                }
                if l.has_neg {
                    assert_eq!(resolved.compact.neg_words(l), &wref.neg_words[..]);
                }
            }
        }
    }

    #[test]
    fn telemetry_counts_match_between_compacted_and_reference() {
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut compacted = engine(GeoConfig::geo(32, 32));
        let mut reference = engine(GeoConfig::geo(32, 32));
        compacted.forward(&mut model, &x, false).unwrap();
        reference.forward_reference(&mut model, &x, false).unwrap();
        let rc = compacted.telemetry_report();
        let rr = reference.telemetry_report();
        if crate::telemetry::enabled() {
            assert_eq!(rc.passes, 1);
            assert!(rc.total().macs > 0);
            assert_eq!(rc.total().macs, rr.total().macs);
            assert_eq!(rc.total().compacted_lanes, rr.total().compacted_lanes);
            assert_eq!(
                rc.layers.iter().map(|l| l.macs).collect::<Vec<_>>(),
                rr.layers.iter().map(|l| l.macs).collect::<Vec<_>>()
            );
        } else {
            assert_eq!(rc.total(), crate::telemetry::LayerTelemetry::default());
        }
        compacted.reset_telemetry();
        assert!(compacted.telemetry_report().layers.is_empty());
    }

    #[test]
    fn eval_mode_skips_float_caching() {
        let mut eng = engine(GeoConfig::geo(32, 64));
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.4);
        let _ = eng.forward(&mut model, &x, false).unwrap();
        // No cached inputs → backward fails.
        assert!(model.backward(&Tensor::full(&[1, 10], 1.0)).is_err());
    }
}
