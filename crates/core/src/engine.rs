//! The GEO stochastic-computing inference engine.
//!
//! Executes a `geo-nn` network with a simulated SC datapath: activations
//! and split-unipolar weights become LFSR/TRNG-generated bitstreams (via
//! cached value-indexed tables), multiplications are ANDs, and
//! accumulation follows the configured SC/fixed-point split (§III-B).
//! Batch normalization runs as the quantized near-memory affine transform
//! at inference, and pooling operates on converted counts (computation
//! skipping).
//!
//! In training mode the float layers still run forward to cache their
//! inputs, but each parametrized layer's *output* is replaced by the SC
//! result — the paper's "simulated SC computes output values while the
//! floating-point forward pass guides back propagation".
//!
//! # Prepare/compute pipeline (DESIGN.md §15)
//!
//! Each parametrized layer executes in two phases with a hard
//! immutability boundary between them:
//!
//! 1. **Prepare** (serial, `&mut self`): every lane table is built or
//!    fetched through the [`TableCache`] and every *weight-side* operand
//!    is quantized into a [`PreparedConv`]/[`PreparedLinear`]. Table
//!    construction is the injection point for the fault model, so running
//!    it serially in a fixed order keeps fault draws and counters
//!    deterministic and call-order independent. Prepare also performs
//!    every computation that is invariant across requests and output
//!    positions: zero-weight lanes are compacted away into
//!    per-output-channel [`CompactKernel`] lists, activation tables are
//!    flattened into the gather slab, and per-worker [`Scratch`] sizing
//!    is fixed. Nothing in a prepared layer depends on the activations.
//! 2. **Compute** (pure, `&self`): the request's activations are
//!    quantized and range-validated ([`ActBatch`]), then output positions
//!    `(b, co, oy, ox)` are computed over disjoint output slices, in
//!    parallel across `rayon` workers. Each position's accumulators are
//!    position-local and the prepared state is immutable, so the result
//!    is **bit-identical to the serial engine at every thread count** —
//!    the correctness contract `crates/core/tests/parallel_equivalence.rs`
//!    enforces.
//!
//! [`ScEngine::prepare`] hoists phase 1 for a whole network into an
//! immutable, `Send + Sync`, `Arc`-shareable [`PreparedModel`] whose
//! [`PreparedModel::forward`] borrows `&self` — the compile-once,
//! serve-many entry point `geo_core::serve` batches requests against.
//! [`ScEngine::forward`] itself is reimplemented as prepare-then-compute
//! at inference (training keeps the interleaved loop so float layers can
//! cache), which is what pins the prepared path bit-identical to every
//! historical output.
//!
//! # Sparsity-compacted kernels (DESIGN.md §11)
//!
//! The compute phase walks dense arrays built at resolve time instead of
//! re-deriving per-lane facts per pixel: compacted nonzero-lane lists
//! with their stream words contiguous in memory, a once-per-row `iy`
//! resolution, an interior/border split of each output row, and a
//! streaming one-level APC accumulator that replaces per-MAC heap
//! allocations. The pre-compaction kernels are retained verbatim (the
//! [`reference`] module, reachable via [`ScEngine::forward_reference`])
//! as the bit-identity oracle for
//! `crates/core/tests/compaction_equivalence.rs` and as the "before"
//! side of the `bench_forward` perf trajectory.
//!
//! Thread count follows `RAYON_NUM_THREADS` (or an installed
//! `rayon::ThreadPool`), defaulting to the machine's parallelism.

use crate::config::{Accumulation, GeoConfig};
use crate::error::GeoError;
use crate::tables::{ProgressiveTable, TableCache};
use crate::telemetry::{self, EngineTelemetry, LayerCounters, Phase, Stopwatch, TelemetryReport};
use geo_nn::{Conv2d, Layer, Linear, Sequential, Tensor};
use geo_sc::fault::{FaultCounters, FaultInjector, FaultModel};
use geo_sc::{quantize_unipolar, Bitstream, KernelDims, SeedPlan, StreamTable};
use rayon::prelude::*;
use std::sync::{Arc, Mutex};

/// Array width assumed when mapping fully-connected layers onto the MAC
/// fabric: features fill a pseudo-kernel of this W dimension, so partial
/// binary accumulation applies to FC layers too (with the underutilization
/// the paper notes in §III-A).
pub const FC_BINARY_WIDTH: usize = 8;

/// Per-layer-index seed stride, keeping layer seed plans disjoint.
const LAYER_SEED_STRIDE: u32 = 0x1009;

/// A value-indexed stream source: normal or progressive.
enum LaneTable {
    Normal(Arc<StreamTable>),
    Progressive(Arc<ProgressiveTable>),
}

impl LaneTable {
    /// Stream lookup for a quantized operand level.
    ///
    /// [`act_level`] / [`ScEngine::weight_levels`] quantize every
    /// operand into the table's range, so an out-of-range level here means
    /// an engine bug — it surfaces as [`GeoError::Internal`] rather than a
    /// silent clamp (which would alias distinct operands) or a panic.
    fn stream(&self, level: u32) -> Result<&Bitstream, GeoError> {
        match self {
            LaneTable::Normal(t) => {
                if level > (1u32 << t.width()) {
                    return Err(GeoError::Internal(format!(
                        "operand level {level} exceeds stream-table range 0..={}",
                        1u32 << t.width()
                    )));
                }
                Ok(t.stream(level))
            }
            LaneTable::Progressive(t) => {
                if level > 255 {
                    return Err(GeoError::Internal(format!(
                        "operand level {level} exceeds the 8-bit progressive buffer"
                    )));
                }
                Ok(t.stream(level as u8))
            }
        }
    }

    /// Packed stream words for a *resolve-validated* operand level — the
    /// hot-loop form of [`Self::stream`], with the range check and
    /// `Result` plumbing hoisted out: the resolve phase validates the
    /// layer's maximum activation level once ([`validate_act_levels`]),
    /// so per-pixel lookups index straight into the table.
    #[inline]
    fn words(&self, level: u32) -> &[u64] {
        match self {
            LaneTable::Normal(t) => t.words(level),
            LaneTable::Progressive(t) => t.words(level as u8),
        }
    }

    /// Identity key for flat-table deduplication: lanes sharing one cached
    /// table (the sharing levels of §II-C) share one flat slab.
    fn ptr_key(&self) -> usize {
        match self {
            LaneTable::Normal(t) => Arc::as_ptr(t) as usize,
            LaneTable::Progressive(t) => Arc::as_ptr(t) as usize,
        }
    }

    /// Number of quantized levels the table carries (max level + 1).
    fn level_count(&self) -> usize {
        match self {
            LaneTable::Normal(t) => (1usize << t.width()) + 1,
            LaneTable::Progressive(_) => 256,
        }
    }
}

/// Copies every activation table's streams into one flat, level-indexed
/// slab: lane `i`'s stream for level `lv` occupies
/// `act_flat[act_off[i] + lv·words ..][..words]`. The hoisted row gather
/// then reads packed words with one indexed load — no `LaneTable` enum
/// match, no `Arc` dereference, no per-level slice lookup — which is
/// what licenses the branchless level-0 masking in
/// [`PreparedConv::gather_row`] and [`PreparedLinear::gather_batch`].
/// Tables shared between lanes are deduplicated by pointer identity, so
/// the slab size tracks the layer's *distinct* tables.
fn flatten_act_tables(
    tables: &[LaneTable],
    words: usize,
) -> Result<(Vec<u64>, Vec<u32>), GeoError> {
    let mut flat: Vec<u64> = Vec::new();
    let mut offs: Vec<u32> = Vec::with_capacity(tables.len());
    let mut seen: Vec<(usize, u32)> = Vec::new();
    for t in tables {
        let key = t.ptr_key();
        if let Some(&(_, off)) = seen.iter().find(|&&(p, _)| p == key) {
            offs.push(off);
            continue;
        }
        let off = u32::try_from(flat.len()).map_err(|_| {
            GeoError::Internal("flat activation table exceeds u32 indexing".to_string())
        })?;
        let levels = t.level_count();
        flat.reserve(levels * words);
        for level in 0..levels {
            flat.extend_from_slice(t.words(level as u32));
        }
        seen.push((key, off));
        offs.push(off);
    }
    Ok((flat, offs))
}

/// Validates once, at resolve time, that every quantized activation level
/// is inside the lane tables' range, licensing the infallible
/// [`LaneTable::words`] lookups the compute phase performs. All of a
/// layer's activation tables share one width/length, so checking the
/// maximum level against the first table covers them all.
fn validate_act_levels(tables: &[LaneTable], levels: &[u32]) -> Result<(), GeoError> {
    if let (Some(table), Some(&max)) = (tables.first(), levels.iter().max()) {
        table.stream(max)?;
    }
    Ok(())
}

/// Per-layer and total fault-injection counts observed by an engine built
/// with [`ScEngine::with_faults`].
///
/// Counters attribute each injected fault to the parametrized layer whose
/// stream tables were being built when it happened; because deterministic
/// tables are cached, a layer's static faults are counted on the pass that
/// first builds its tables, while transient faults recur every pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Forward passes executed with fault injection active.
    pub passes: u64,
    /// Fault counts per parametrized (conv/linear) layer, in network order.
    pub layers: Vec<FaultCounters>,
    /// Fault counts across all layers.
    pub total: FaultCounters,
}

impl ResilienceReport {
    fn record(&mut self, param_layer: u32, delta: FaultCounters) {
        let idx = param_layer as usize;
        if self.layers.len() <= idx {
            self.layers.resize(idx + 1, FaultCounters::default());
        }
        self.layers[idx].accumulate(&delta);
        self.total.accumulate(&delta);
    }

    /// Folds another report into this one — how a prepared pass's locally
    /// accumulated fault counts flow back into the engine's report.
    fn absorb(&mut self, other: &ResilienceReport) {
        self.passes += other.passes;
        for (i, layer) in other.layers.iter().enumerate() {
            if self.layers.len() <= i {
                self.layers.resize(i + 1, FaultCounters::default());
            }
            self.layers[i].accumulate(layer);
        }
        self.total.accumulate(&other.total);
    }
}

/// A weight operand resolved for the compute phase: quantized split
/// levels, the accumulator group its lane feeds, and the packed words of
/// its positive/negative streams. The words are copied out of the lane
/// table once per resolve so the per-position hot loop reads flat local
/// data instead of chasing table pointers; tables are immutable for the
/// duration of a pass, so the copy is exact.
struct WeightRef {
    pos: u32,
    neg: u32,
    group: usize,
    pos_words: Vec<u64>,
    neg_words: Vec<u64>,
}

impl WeightRef {
    /// Resolves one weight lane. `copy_words` controls whether the stream
    /// words are copied into the per-lane `Vec`s: the reference kernels
    /// read them, so [`ScEngine::forward_reference`] resolves with the
    /// copies (keeping the "before" timing honest), while the compacted
    /// path skips the two heap copies per lane and reads its words
    /// straight out of the lane table when [`CompactKernel::build`] packs
    /// the position-major buffer. Levels are range-validated either way.
    fn resolve(
        table: &LaneTable,
        (pos, neg): (u32, u32),
        group: usize,
        copy_words: bool,
    ) -> Result<WeightRef, GeoError> {
        let words_of = |level: u32| -> Result<Vec<u64>, GeoError> {
            if level == 0 {
                return Ok(Vec::new());
            }
            let stream = table.stream(level)?;
            Ok(if copy_words {
                stream.as_words().to_vec()
            } else {
                Vec::new()
            })
        };
        Ok(WeightRef {
            pos,
            neg,
            group,
            pos_words: words_of(pos)?,
            neg_words: words_of(neg)?,
        })
    }

    /// Whether both split halves are zero (the lane contributes nothing).
    fn is_zero(&self) -> bool {
        self.pos == 0 && self.neg == 0
    }
}

/// Sparsity-compacted weight lanes for a whole layer, in
/// structure-of-arrays form with **position-major** stream words
/// (DESIGN.md §14): per output channel/neuron, a contiguous run of its
/// *nonzero* lanes, and per row a weight-word segment laid out so that for
/// each stream-word position `j` the words of all `n` row lanes are
/// adjacent (`row_pos(r)[j·n + i]`). The per-pixel hot loop streams
/// through these dense arrays 4 lanes per iteration instead of re-testing
/// `WeightRef::is_zero` per lane per pixel and hopping between per-lane
/// word pairs.
///
/// Lane order within a row matches the resolve order (`ci`, `ky`, `kx`
/// ascending), so the sequence of accumulate calls — and therefore APC
/// compressor pairing — is exactly the pre-compaction sequence. Absent
/// split halves are stored as zero words: ANDing/ORing them is the
/// identity for every popcount mode, and the APC gather gates on
/// [`CompactKernel::flags`] so its push order never sees them.
#[derive(Debug)]
struct CompactKernel {
    /// Activation index of each lane (conv: `(ci·k + ky)·k + kx`; linear:
    /// the feature index).
    lane: Vec<usize>,
    /// Per-lane offset into the shared gathered-activation row buffer
    /// ([`ActBuf`]): `lane · act_stride`, where `act_stride` is `ow` for
    /// conv (one gathered word run per output column) and 1 for linear.
    /// A pixel's activation word lives at `acts[(aoff + ox)·words + j]`,
    /// its nonzero flag at `nz[aoff + ox]`.
    aoff: Vec<u32>,
    /// Accumulator group each lane feeds.
    group: Vec<u32>,
    /// Split-half liveness per lane: bit 0 = nonzero positive half,
    /// bit 1 = nonzero negative half (gates APC push order only).
    flags: Vec<u8>,
    /// Row `r`'s lanes are SoA indices `offsets[r]..offsets[r + 1]`.
    offsets: Vec<usize>,
    /// Per-row position-major stream words: row `r` starts at
    /// `offsets[r]·2·words` and holds `n·words` positive words
    /// (`[j·n + i]`) followed by `n·words` negative words.
    words_buf: Vec<u64>,
    /// Words per stream (`len.div_ceil(64)`).
    words: usize,
    /// Per-row positive-half lane list (APC kernels): the gather offsets
    /// of the lanes whose positive split half is nonzero, in lane
    /// (arrival) order; row `r` spans `pos_offsets[r]..pos_offsets[r+1]`.
    /// Most lanes carry exactly one live half, so walking these lists
    /// halves the APC product loop relative to walking every lane twice.
    pos_aoff: Vec<u32>,
    /// The listed lanes' stream words, lane-major (`words` per entry).
    pos_w: Vec<u64>,
    pos_offsets: Vec<usize>,
    /// Negative-half counterparts of the `pos_*` lists.
    neg_aoff: Vec<u32>,
    neg_w: Vec<u64>,
    neg_offsets: Vec<usize>,
}

impl CompactKernel {
    /// Compacts `wrefs` (laid out `rows × lanes_per_row`, resolve order)
    /// into per-row nonzero lane lists, reading each lane's stream words
    /// from its table in `wtables` (parallel to `wrefs`). `act_stride`
    /// is the gathered-activation stride per lane index (conv: `ow`,
    /// linear: 1); callers guarantee `lanes_per_row · act_stride` fits
    /// `u32`.
    fn build(
        wrefs: &[WeightRef],
        wtables: &[LaneTable],
        rows: usize,
        lanes_per_row: usize,
        words: usize,
        act_stride: usize,
    ) -> CompactKernel {
        let nonzero = wrefs.iter().filter(|w| !w.is_zero()).count();
        let mut k = CompactKernel {
            lane: Vec::with_capacity(nonzero),
            aoff: Vec::with_capacity(nonzero),
            group: Vec::with_capacity(nonzero),
            flags: Vec::with_capacity(nonzero),
            offsets: Vec::with_capacity(rows + 1),
            words_buf: Vec::with_capacity(nonzero * 2 * words),
            words,
            pos_aoff: Vec::new(),
            pos_w: Vec::new(),
            pos_offsets: Vec::with_capacity(rows + 1),
            neg_aoff: Vec::new(),
            neg_w: Vec::new(),
            neg_offsets: Vec::with_capacity(rows + 1),
        };
        k.offsets.push(0);
        k.pos_offsets.push(0);
        k.neg_offsets.push(0);
        let empty: &[u64] = &[];
        let mut row_streams: Vec<(&[u64], &[u64])> = Vec::with_capacity(lanes_per_row);
        for r in 0..rows {
            row_streams.clear();
            for l in 0..lanes_per_row {
                let i = r * lanes_per_row + l;
                let wref = &wrefs[i];
                if wref.is_zero() {
                    continue;
                }
                let aoff = (l * act_stride) as u32;
                let table = &wtables[i];
                let pw = if wref.pos > 0 {
                    table.words(wref.pos)
                } else {
                    empty
                };
                let nw = if wref.neg > 0 {
                    table.words(wref.neg)
                } else {
                    empty
                };
                if !pw.is_empty() {
                    k.pos_aoff.push(aoff);
                    k.pos_w.extend_from_slice(pw);
                }
                if !nw.is_empty() {
                    k.neg_aoff.push(aoff);
                    k.neg_w.extend_from_slice(nw);
                }
                row_streams.push((pw, nw));
                k.lane.push(l);
                k.aoff.push(aoff);
                k.group.push(wref.group as u32);
                k.flags
                    .push(u8::from(wref.pos > 0) | (u8::from(wref.neg > 0) << 1));
            }
            for half in 0..2 {
                for j in 0..words {
                    for &(pw, nw) in &row_streams {
                        let src = if half == 0 { pw } else { nw };
                        k.words_buf.push(if src.is_empty() { 0 } else { src[j] });
                    }
                }
            }
            k.offsets.push(k.lane.len());
            k.pos_offsets.push(k.pos_aoff.len());
            k.neg_offsets.push(k.neg_aoff.len());
        }
        k
    }

    /// The SoA index range of output row/channel `r`.
    #[inline]
    fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.offsets[r]..self.offsets[r + 1]
    }

    /// Position-major positive stream words of row `r`: word `j` of row
    /// lane `i` at `[j·n + i]`.
    #[inline]
    fn row_pos(&self, r: usize) -> &[u64] {
        let (lo, hi) = (self.offsets[r], self.offsets[r + 1]);
        let base = lo * 2 * self.words;
        &self.words_buf[base..base + (hi - lo) * self.words]
    }

    /// Position-major negative stream words of row `r`.
    #[inline]
    fn row_neg(&self, r: usize) -> &[u64] {
        let (lo, hi) = (self.offsets[r], self.offsets[r + 1]);
        let n = hi - lo;
        let base = lo * 2 * self.words + n * self.words;
        &self.words_buf[base..base + n * self.words]
    }

    /// Row `r`'s positive-half lane list: gather offsets and their
    /// lane-major stream words (`words` per entry), arrival order.
    #[inline]
    fn row_pos_list(&self, r: usize) -> (&[u32], &[u64]) {
        let (lo, hi) = (self.pos_offsets[r], self.pos_offsets[r + 1]);
        (
            &self.pos_aoff[lo..hi],
            &self.pos_w[lo * self.words..hi * self.words],
        )
    }

    /// Row `r`'s negative-half lane list.
    #[inline]
    fn row_neg_list(&self, r: usize) -> (&[u32], &[u64]) {
        let (lo, hi) = (self.neg_offsets[r], self.neg_offsets[r + 1]);
        (
            &self.neg_aoff[lo..hi],
            &self.neg_w[lo * self.words..hi * self.words],
        )
    }

    /// Largest nonzero-lane count of any row — the layer's effective max
    /// fan-in, which sizes per-worker row scratch exactly once.
    fn max_row_lanes(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }
}

/// Everything input-independent that the pure compute phase needs for one
/// convolution layer, produced serially by [`ScEngine::prepare_conv`] once
/// per (model × config × fault-model). Shared as `&self` across worker
/// threads and across requests (see the compile-time assertions below);
/// per-request activations arrive separately as an [`ActBatch`].
struct PreparedConv {
    mode: Accumulation,
    len: usize,
    words: usize,
    groups: usize,
    /// Quantization width (`log2 len`) for per-request activation levels.
    width: u8,
    /// Progressive generation flag, fixed at prepare time.
    progressive: bool,
    cin: usize,
    h: usize,
    w: usize,
    cout: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    volume: usize,
    act_tables: Vec<LaneTable>,
    /// Uncompacted lanes, kept for the pre-compaction reference kernels
    /// (the equivalence oracle and the `bench_forward` baseline).
    wrefs: Vec<WeightRef>,
    /// Level-indexed flat copy of the activation tables
    /// ([`flatten_act_tables`]); empty when resolving for the reference
    /// kernels.
    act_flat: Vec<u64>,
    /// Per-output-channel compacted nonzero lanes (the hot-path layout).
    compact: CompactKernel,
    /// Input channel per kernel position (`lane / k²`) — conv activation
    /// tables are per position, shared by every output channel, so the
    /// spatial gather walks these instead of per-compacted-lane copies.
    pos_ci: Vec<u32>,
    /// Kernel row offset per kernel position (`(lane % k²) / k`).
    pos_ky: Vec<u32>,
    /// Kernel column offset per kernel position (`lane % k`).
    pos_kx: Vec<u32>,
    /// Flat activation-table offset per kernel position
    /// ([`flatten_act_tables`]); zeros when resolving for the reference
    /// kernels, which never read it.
    pos_ao: Vec<u32>,
    /// Per-worker scratch buffers, pooled across requests (serve path).
    scratch: ScratchPool,
}

/// Everything input-independent that the pure compute phase needs for one
/// fully-connected layer, produced serially by
/// [`ScEngine::prepare_linear`].
struct PreparedLinear {
    mode: Accumulation,
    len: usize,
    words: usize,
    groups: usize,
    /// Quantization width (`log2 len`) for per-request activation levels.
    width: u8,
    /// Progressive generation flag, fixed at prepare time.
    progressive: bool,
    features: usize,
    outf: usize,
    act_tables: Vec<LaneTable>,
    /// Uncompacted lanes, kept for the pre-compaction reference kernels.
    wrefs: Vec<WeightRef>,
    /// Level-indexed flat copy of the activation tables
    /// ([`flatten_act_tables`]); empty when resolving for the reference
    /// kernels.
    act_flat: Vec<u64>,
    /// Per-output-neuron compacted nonzero lanes (the hot-path layout).
    compact: CompactKernel,
    /// Flat activation-table offset per input feature; zeros when
    /// resolving for the reference kernels.
    pos_ao: Vec<u32>,
    /// Per-worker scratch buffers, pooled across requests (serve path).
    scratch: ScratchPool,
}

/// One request's quantized activations: the only input-dependent state a
/// prepared layer's compute phase reads. Produced by
/// [`PreparedConv::quantize_acts`] / [`PreparedLinear::quantize_acts`],
/// which also range-validate the levels so compute-phase table lookups
/// stay infallible.
struct ActBatch {
    /// Batch dimension of the request.
    n: usize,
    /// Quantized activation levels, input-tensor order.
    levels: Vec<u32>,
}

/// Quantized activation level for table lookup.
///
/// Operands live in memory as 8-bit values; matching the LFSR width to
/// the stream length *truncates* them to the top `width` bits (§II-B).
/// A full-scale operand (`x = 1.0`) quantizes to level 256 — the
/// documented all-ones encoding of [`quantize_unipolar`] — and
/// `256 >> shift` is exactly `2^width`, the all-ones entry a normal
/// [`StreamTable`] explicitly carries. The progressive path instead
/// saturates at 255: its stream buffer holds 8-bit operands, a
/// deliberate hardware limit and the one place the two generation
/// modes encode operands differently.
fn act_level(progressive: bool, x: f32, width: u8) -> u32 {
    let q = quantize_unipolar(x.clamp(0.0, 1.0), 8);
    if progressive {
        q.min(255)
    } else {
        q >> (8 - width.min(8))
    }
}

/// What a parametrized step materializes for the next step (DESIGN.md
/// §16): an f32 tensor (`Float` — the network boundary default), or the
/// next SC consumer's quantized activation levels (`Levels` — the
/// resident integer pipeline, assigned at prepare time when every step in
/// between is level-transparent: ReLU is absorbed because
/// `act_level(clamp(v)) == act_level(v)`, Flatten because levels carry
/// their shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emit {
    /// Materialize an f32 tensor (non-SC boundary or network output).
    Float,
    /// Materialize the downstream SC layer's activation levels directly,
    /// quantized with *its* generation mode and width — the exact values
    /// its `quantize_acts` would have produced from the f32 tensor.
    Levels {
        /// Consumer's progressive-generation flag.
        progressive: bool,
        /// Consumer's quantization width (`log2` of its stream length).
        width: u8,
    },
}

/// Quantized activation levels flowing between chained SC layers in
/// place of an f32 tensor: the producing layer ran [`act_level`] once per
/// produced pixel with the consumer's parameters, so the consumer skips
/// its quantization pass entirely.
struct LevelTensor {
    /// Logical tensor shape the levels stand in for (reshaped by
    /// Flatten, validated by the consumer like a tensor shape).
    shape: Vec<usize>,
    /// Quantized levels, tensor order.
    levels: Vec<u32>,
}

/// The activation value moving between prepared steps: an f32 tensor or
/// a chained [`LevelTensor`]. Which variant reaches which step is decided
/// at prepare time ([`Emit`]); a `Levels` value reaching a float-only
/// step is an internal invariant violation, not a user error.
enum Flow {
    Float(Tensor),
    Levels(LevelTensor),
}

impl Flow {
    /// Unwraps the f32 tensor, erroring on a chained value — used by the
    /// float-only steps (batch norm, pooling, network output), which the
    /// prepare-time chaining pass never feeds levels by construction.
    fn into_float(self, ctx: &str) -> Result<Tensor, GeoError> {
        match self {
            Flow::Float(t) => Ok(t),
            Flow::Levels(_) => Err(GeoError::Internal(format!(
                "level-chained activations reached float-only {ctx}"
            ))),
        }
    }
}

// The compute phase hands these to scoped worker threads by shared
// reference, and `PreparedModel` is additionally shared across requests
// (`Arc`, the serve path); pin the auto-trait obligations at compile time
// so a future non-Sync field (e.g. a Cell or Rc in a table) fails here,
// not at a distant use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LaneTable>();
    assert_send_sync::<WeightRef>();
    assert_send_sync::<CompactKernel>();
    assert_send_sync::<PreparedConv>();
    assert_send_sync::<PreparedLinear>();
    assert_send_sync::<Emit>();
    assert_send_sync::<LevelTensor>();
    assert_send_sync::<PreparedModel>();
};

/// A borrowed, gather-ready view of one output row's compacted lanes.
/// Every slice aliases the [`CompactKernel`] SoA arrays directly — there
/// is no per-row repacking; lanes whose input row falls outside the image
/// read zero words from the shared [`ActBuf`] instead (see
/// [`ResolvedConv::gather_row`]).
struct RowView<'a> {
    n: usize,
    /// Per-lane base offsets into the gathered activations: lane `i` of
    /// pixel `ox` reads `acts[(aoff[i] + ox)·words ..]` and
    /// `nz[aoff[i] + ox]`.
    aoff: &'a [u32],
    /// Per-lane accumulator groups.
    group: &'a [u32],
    /// Per-lane split-half flags (bit 0 pos, bit 1 neg) — APC gating.
    flags: &'a [u8],
    /// Position-major positive stream words (`wp[j·n + i]`).
    wp: &'a [u64],
    /// Position-major negative stream words.
    wn: &'a [u64],
    /// Positive-half lane list ([`CompactKernel::row_pos_list`]) — the
    /// APC kernels walk this instead of testing every lane's flags.
    pos_aoff: &'a [u32],
    pos_w: &'a [u64],
    /// Negative-half lane list.
    neg_aoff: &'a [u32],
    neg_w: &'a [u64],
}

/// Per-worker gathered-activation buffers, shared across every output
/// channel of a spatial row (conv) or every output neuron of a batch
/// element (linear). Conv activation tables are per kernel position —
/// identical for all `cout` channels — so hoisting the gather out of the
/// channel loop amortizes it `cout`× (respectively `outf`× for linear).
struct ActBuf {
    /// Gathered activation words, `units · words`, lane-major within a
    /// unit (`acts[u·words + j]`), zeroed for skipped (level-0 or
    /// out-of-bounds) units.
    acts: Vec<u64>,
    /// Per-unit nonzero-activation flags (0/1) — APC gating and MAC
    /// telemetry.
    nz: Vec<u8>,
    /// Per-output-column count of zero (level-0 or out-of-bounds) units
    /// across every kernel position (conv: `ow` entries; linear: one).
    /// `zeros[ox] == 0` proves every lane of every row is live at that
    /// column, licensing the APC kernels' statically-paired fast path.
    zeros: Vec<u32>,
}

impl ActBuf {
    fn new(units: usize, words: usize, cols: usize) -> Self {
        ActBuf {
            acts: vec![0u64; units * words],
            nz: vec![0u8; units],
            zeros: vec![0u32; cols],
        }
    }
}

/// Per-worker pixel buffers: the APC product gather and the grouped
/// accumulators. All sized once at construction from resolve-time
/// constants — the hot loop performs no heap allocation in any mode.
struct PixelBuf {
    /// APC product gather, lane-major (`words` adjacent words per kept
    /// product, arrival order preserved).
    prod_pos: Vec<u64>,
    prod_neg: Vec<u64>,
    /// Grouped accumulators (`groups·words`), Pbw/Pbhw (and multiword Or).
    acc_pos: Vec<u64>,
    acc_neg: Vec<u64>,
    /// MACs folded since the last telemetry flush. Local (non-atomic) so
    /// the hot loop pays one integer add per pixel; flushed to the
    /// layer's shared counter once per output row.
    macs: u64,
}

impl PixelBuf {
    fn new(groups: usize, words: usize, max_row_lanes: usize) -> Self {
        PixelBuf {
            prod_pos: vec![0u64; max_row_lanes * words],
            prod_neg: vec![0u64; max_row_lanes * words],
            acc_pos: vec![0u64; groups * words],
            acc_neg: vec![0u64; groups * words],
            macs: 0,
        }
    }
}

/// Per-worker scratch for the compacted kernels, allocated once per
/// worker (`for_each_init`). Split into activation and pixel halves so
/// the pixel kernels can read the gathered activations while mutating
/// their accumulators.
struct Scratch {
    act: ActBuf,
    pix: PixelBuf,
}

impl Scratch {
    fn new(
        groups: usize,
        words: usize,
        max_row_lanes: usize,
        gather_units: usize,
        gather_cols: usize,
    ) -> Self {
        Scratch {
            act: ActBuf::new(gather_units, words, gather_cols),
            pix: PixelBuf::new(groups, words, max_row_lanes),
        }
    }

    /// Debug-build invariant: no scratch buffer reallocated after
    /// construction — the sizing contract of the compacted kernels.
    #[inline]
    fn debug_check(&self) {
        debug_assert_eq!(
            self.act.acts.len(),
            self.act.nz.len() * self.words_per_unit()
        );
        debug_assert_eq!(self.pix.prod_pos.len(), self.pix.prod_neg.len());
    }

    #[inline]
    fn words_per_unit(&self) -> usize {
        if self.act.nz.is_empty() {
            1
        } else {
            self.act.acts.len() / self.act.nz.len()
        }
    }
}

/// A pool of per-worker [`Scratch`] buffers owned by a prepared layer, so
/// repeated requests through one `PreparedModel` reuse the same
/// allocations instead of paying a fresh `Scratch::new` per worker per
/// forward. Sizing is fixed at prepare time (it depends only on layer
/// geometry), and returning workers debug-assert their buffers kept those
/// sizes — the cross-request analogue of [`Scratch::debug_check`].
struct ScratchPool {
    groups: usize,
    words: usize,
    max_row_lanes: usize,
    gather_units: usize,
    gather_cols: usize,
    pool: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    fn new(
        groups: usize,
        words: usize,
        max_row_lanes: usize,
        gather_units: usize,
        gather_cols: usize,
    ) -> Self {
        ScratchPool {
            groups,
            words,
            max_row_lanes,
            gather_units,
            gather_cols,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Pops a pooled scratch, or allocates one to the layer's fixed
    /// dimensions if every buffer is checked out. The guard returns it on
    /// drop.
    fn take(&self) -> PooledScratch<'_> {
        let reused = self.lock().pop();
        let scratch = reused.unwrap_or_else(|| {
            Scratch::new(
                self.groups,
                self.words,
                self.max_row_lanes,
                self.gather_units,
                self.gather_cols,
            )
        });
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Scratch>> {
        // A panicking worker cannot leave a Scratch half-valid: buffers
        // are plain overwrite-before-read arrays, so recover the poison.
        self.pool.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// RAII guard over a pooled [`Scratch`]: derefs to the buffer and returns
/// it to the pool on drop, debug-asserting it was not reallocated while
/// checked out (the non-reallocation contract of the serve path).
struct PooledScratch<'a> {
    pool: &'a ScratchPool,
    scratch: Option<Scratch>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            debug_assert_eq!(s.act.acts.len(), self.pool.gather_units * self.pool.words);
            debug_assert_eq!(s.act.nz.len(), self.pool.gather_units);
            debug_assert_eq!(s.act.zeros.len(), self.pool.gather_cols);
            debug_assert_eq!(s.pix.acc_pos.len(), self.pool.groups * self.pool.words);
            debug_assert_eq!(
                s.pix.prod_pos.len(),
                self.pool.max_row_lanes * self.pool.words
            );
            self.pool.lock().push(s);
        }
    }
}

/// Row-level monomorphized accumulation kernels (DESIGN.md §14): the row
/// loop dispatches on the layer's accumulation mode once, and each mode's
/// pixel body is a straight-line SWAR reduction over the gathered
/// activation words — 4 lanes per inner-loop iteration, popcounts
/// combined by pairwise adds — with no per-MAC mode or liveness branch.
trait ModeKernel {
    /// The signed accumulated count of one pixel: lane `i` reads its
    /// activation words at `act.acts[(aoff[i] + ox)·words ..]`.
    fn pixel(pix: &mut PixelBuf, view: &RowView, act: &ActBuf, ox: usize, words: usize) -> i64;
}

/// 4-wide OR/AND reduction of one single-word pixel across all lanes:
/// the OR accumulation of a whole pixel collapses into four independent
/// register accumulators folded by a pairwise tree. OR is associative and
/// commutative, so any reduction shape is bit-identical to the reference
/// kernels' sequential fold.
#[inline]
fn or_fold(aoff: &[u32], ox: usize, acts: &[u64], wp: &[u64], wn: &[u64]) -> (u64, u64) {
    let (mut p0, mut p1, mut p2, mut p3) = (0u64, 0u64, 0u64, 0u64);
    let (mut q0, mut q1, mut q2, mut q3) = (0u64, 0u64, 0u64, 0u64);
    let mut o4 = aoff.chunks_exact(4);
    let mut p4 = wp.chunks_exact(4);
    let mut n4 = wn.chunks_exact(4);
    for ((o, p), q) in (&mut o4).zip(&mut p4).zip(&mut n4) {
        let a0 = acts[o[0] as usize + ox];
        let a1 = acts[o[1] as usize + ox];
        let a2 = acts[o[2] as usize + ox];
        let a3 = acts[o[3] as usize + ox];
        p0 |= a0 & p[0];
        p1 |= a1 & p[1];
        p2 |= a2 & p[2];
        p3 |= a3 & p[3];
        q0 |= a0 & q[0];
        q1 |= a1 & q[1];
        q2 |= a2 & q[2];
        q3 |= a3 & q[3];
    }
    for ((&o, &p), &q) in o4
        .remainder()
        .iter()
        .zip(p4.remainder())
        .zip(n4.remainder())
    {
        let a = acts[o as usize + ox];
        p0 |= a & p;
        q0 |= a & q;
    }
    ((p0 | p1) | (p2 | p3), (q0 | q1) | (q2 | q3))
}

/// OR accumulation (`groups == 1`): register accumulators, no memory
/// traffic at all in the single-word case.
struct OrKernel;

impl ModeKernel for OrKernel {
    #[inline]
    fn pixel(_pix: &mut PixelBuf, view: &RowView, act: &ActBuf, ox: usize, words: usize) -> i64 {
        let n = view.n;
        if words == 1 {
            let (p, q) = or_fold(&view.aoff[..n], ox, &act.acts, &view.wp[..n], &view.wn[..n]);
            return i64::from(p.count_ones()) - i64::from(q.count_ones());
        }
        let mut pos = 0i64;
        let mut neg = 0i64;
        for j in 0..words {
            let (mut p, mut q) = (0u64, 0u64);
            for i in 0..n {
                let a = act.acts[(view.aoff[i] as usize + ox) * words + j];
                p |= a & view.wp[j * n + i];
                q |= a & view.wn[j * n + i];
            }
            pos += i64::from(p.count_ones());
            neg += i64::from(q.count_ones());
        }
        pos - neg
    }
}

/// Partial-binary accumulation (Pbw/Pbhw): per-lane group-indexed OR
/// accumulators, 4 lanes per iteration.
struct GroupedKernel;

impl ModeKernel for GroupedKernel {
    #[inline]
    fn pixel(pix: &mut PixelBuf, view: &RowView, act: &ActBuf, ox: usize, words: usize) -> i64 {
        let n = view.n;
        let PixelBuf {
            acc_pos, acc_neg, ..
        } = pix;
        acc_pos.fill(0);
        acc_neg.fill(0);
        if words == 1 {
            let acts = &act.acts;
            let wp = &view.wp[..n];
            let wn = &view.wn[..n];
            let gr = &view.group[..n];
            let mut o4 = view.aoff[..n].chunks_exact(4);
            let mut p4 = wp.chunks_exact(4);
            let mut n4 = wn.chunks_exact(4);
            let mut g4 = gr.chunks_exact(4);
            for (((o, p), q), g) in (&mut o4).zip(&mut p4).zip(&mut n4).zip(&mut g4) {
                let a0 = acts[o[0] as usize + ox];
                let a1 = acts[o[1] as usize + ox];
                let a2 = acts[o[2] as usize + ox];
                let a3 = acts[o[3] as usize + ox];
                acc_pos[g[0] as usize] |= a0 & p[0];
                acc_neg[g[0] as usize] |= a0 & q[0];
                acc_pos[g[1] as usize] |= a1 & p[1];
                acc_neg[g[1] as usize] |= a1 & q[1];
                acc_pos[g[2] as usize] |= a2 & p[2];
                acc_neg[g[2] as usize] |= a2 & q[2];
                acc_pos[g[3] as usize] |= a3 & p[3];
                acc_neg[g[3] as usize] |= a3 & q[3];
            }
            for (((&o, &p), &q), &g) in o4
                .remainder()
                .iter()
                .zip(p4.remainder())
                .zip(n4.remainder())
                .zip(g4.remainder())
            {
                let a = acts[o as usize + ox];
                acc_pos[g as usize] |= a & p;
                acc_neg[g as usize] |= a & q;
            }
        } else {
            for j in 0..words {
                let wpj = &view.wp[j * n..(j + 1) * n];
                let wnj = &view.wn[j * n..(j + 1) * n];
                for i in 0..n {
                    let a = act.acts[(view.aoff[i] as usize + ox) * words + j];
                    let g = view.group[i] as usize * words + j;
                    acc_pos[g] |= a & wpj[i];
                    acc_neg[g] |= a & wnj[i];
                }
            }
        }
        let pos: i64 = acc_pos.iter().map(|w| i64::from(w.count_ones())).sum();
        let neg: i64 = acc_neg.iter().map(|w| i64::from(w.count_ones())).sum();
        pos - neg
    }
}

/// 4-wide signed popcount reduction of one stream-word position: four
/// independent counters, combined by pairwise adds. Exact integer
/// arithmetic, so any association is bit-identical to the reference
/// fold's `pos − neg`.
#[inline]
fn fxp_fold(aoff: &[u32], ox: usize, acts: &[u64], wp: &[u64], wn: &[u64]) -> i64 {
    let (mut c0, mut c1, mut c2, mut c3) = (0i64, 0i64, 0i64, 0i64);
    let mut o4 = aoff.chunks_exact(4);
    let mut p4 = wp.chunks_exact(4);
    let mut n4 = wn.chunks_exact(4);
    for ((o, p), q) in (&mut o4).zip(&mut p4).zip(&mut n4) {
        let a0 = acts[o[0] as usize + ox];
        let a1 = acts[o[1] as usize + ox];
        let a2 = acts[o[2] as usize + ox];
        let a3 = acts[o[3] as usize + ox];
        c0 += i64::from((a0 & p[0]).count_ones()) - i64::from((a0 & q[0]).count_ones());
        c1 += i64::from((a1 & p[1]).count_ones()) - i64::from((a1 & q[1]).count_ones());
        c2 += i64::from((a2 & p[2]).count_ones()) - i64::from((a2 & q[2]).count_ones());
        c3 += i64::from((a3 & p[3]).count_ones()) - i64::from((a3 & q[3]).count_ones());
    }
    for ((&o, &p), &q) in o4
        .remainder()
        .iter()
        .zip(p4.remainder())
        .zip(n4.remainder())
    {
        let a = acts[o as usize + ox];
        c0 += i64::from((a & p).count_ones()) - i64::from((a & q).count_ones());
    }
    (c0 + c1) + (c2 + c3)
}

/// Exact fixed-point accumulation: SWAR popcount tree per stream-word
/// position.
struct FxpKernel;

impl ModeKernel for FxpKernel {
    #[inline]
    fn pixel(_pix: &mut PixelBuf, view: &RowView, act: &ActBuf, ox: usize, words: usize) -> i64 {
        let n = view.n;
        if words == 1 {
            return fxp_fold(&view.aoff[..n], ox, &act.acts, &view.wp[..n], &view.wn[..n]);
        }
        let mut total = 0i64;
        for j in 0..words {
            for i in 0..n {
                let a = act.acts[(view.aoff[i] as usize + ox) * words + j];
                total += i64::from((a & view.wp[j * n + i]).count_ones())
                    - i64::from((a & view.wn[j * n + i]).count_ones());
            }
        }
        total
    }
}

/// The one-level APC count of a statically-paired product run: every
/// listed lane is known live, so pair `t` is list entries `2t, 2t+1` and
/// the reference reduction's `Σ_pairs (2·ones(a∧b) + ones(a∨b)) +
/// ones(tail)` collapses — by the inclusion–exclusion identity
/// `ones(a∨b) = ones(a) + ones(b) − ones(a∧b)` — to
/// `Σ ones(product) + Σ_pairs ones(a∧b)`, computed here with no product
/// staging and full ILP. Integer-exact, so bit-identical to
/// [`geo_sc::apc::apc_reduce`] by construction.
#[inline]
fn apc_static(aoff: &[u32], w: &[u64], ox: usize, acts: &[u64]) -> i64 {
    let mut sum = 0i64;
    let mut o2 = aoff.chunks_exact(2);
    let mut w2 = w.chunks_exact(2);
    for (o, ww) in (&mut o2).zip(&mut w2) {
        let a = acts[o[0] as usize + ox] & ww[0];
        let b = acts[o[1] as usize + ox] & ww[1];
        sum += i64::from(a.count_ones()) + i64::from(b.count_ones());
        sum += i64::from((a & b).count_ones());
    }
    if let (Some(&o), Some(&ww)) = (o2.remainder().first(), w2.remainder().first()) {
        sum += i64::from((acts[o as usize + ox] & ww).count_ones());
    }
    sum
}

/// One-level APC accumulation over the per-polarity static lane lists
/// (most lanes carry one live half, so the two list walks touch ~half
/// the words of a both-halves-per-lane loop). Columns with no zero
/// activation anywhere (`ActBuf::zeros`) — the overwhelming majority on
/// interior pixels — take [`apc_static`]; columns with level-0 or
/// padding units compact each polarity's live products into scratch
/// (write always, advance by the unit's nonzero flag — branchless, and
/// the cursor never outruns the entry index) preserving the reference
/// kernels' push order exactly, then reduce with the 4-wide input stage
/// [`geo_sc::apc::apc_reduce`].
struct ApcKernel;

impl ModeKernel for ApcKernel {
    #[inline]
    fn pixel(pix: &mut PixelBuf, view: &RowView, act: &ActBuf, ox: usize, words: usize) -> i64 {
        let n = view.n;
        let PixelBuf {
            prod_pos, prod_neg, ..
        } = pix;
        let mut np = 0usize;
        let mut nn = 0usize;
        if words == 1 {
            if act.zeros[ox] == 0 {
                return apc_static(view.pos_aoff, view.pos_w, ox, &act.acts)
                    - apc_static(view.neg_aoff, view.neg_w, ox, &act.acts);
            }
            for (&o, &w) in view.pos_aoff.iter().zip(view.pos_w) {
                let u = o as usize + ox;
                prod_pos[np] = act.acts[u] & w;
                np += usize::from(act.nz[u]);
            }
            for (&o, &w) in view.neg_aoff.iter().zip(view.neg_w) {
                let u = o as usize + ox;
                prod_neg[nn] = act.acts[u] & w;
                nn += usize::from(act.nz[u]);
            }
            return geo_sc::apc::apc_reduce(&prod_pos[..np], 1)
                - geo_sc::apc::apc_reduce(&prod_neg[..nn], 1);
        }
        for i in 0..n {
            let u = view.aoff[i] as usize + ox;
            let live = view.flags[i] * act.nz[u];
            for j in 0..words {
                let a = act.acts[u * words + j];
                prod_pos[np * words + j] = a & view.wp[j * n + i];
                prod_neg[nn * words + j] = a & view.wn[j * n + i];
            }
            np += usize::from(live & 1);
            nn += usize::from((live >> 1) & 1);
        }
        geo_sc::apc::apc_reduce(&prod_pos[..np * words], words)
            - geo_sc::apc::apc_reduce(&prod_neg[..nn * words], words)
    }
}

/// Stores the first error any worker produced (later ones are dropped —
/// one failure already fails the whole layer).
fn record_error(slot: &Mutex<Option<GeoError>>, err: GeoError) {
    let mut guard = match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if guard.is_none() {
        *guard = Some(err);
    }
}

impl PreparedConv {
    /// Quantizes one request's activations into compute-ready levels,
    /// validating the batch's shape against the prepared geometry and its
    /// maximum level against the lane tables (keeping compute-phase
    /// lookups infallible). Pure per-element work — safe to run
    /// concurrently from any number of requests.
    fn quantize_acts(&self, input: &Tensor) -> Result<ActBatch, GeoError> {
        let s = input.shape();
        if s.len() != 4 || s[1] != self.cin {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {}, H, W)", self.cin),
                actual: s.to_vec(),
            }));
        }
        if s[2] != self.h || s[3] != self.w {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {}, {}, {})", self.cin, self.h, self.w),
                actual: s.to_vec(),
            }));
        }
        let levels: Vec<u32> = input
            .data()
            .iter()
            .map(|&x| act_level(self.progressive, x, self.width))
            .collect();
        validate_act_levels(&self.act_tables, &levels)?;
        Ok(ActBatch { n: s[0], levels })
    }

    /// Accepts either activation form: an f32 tensor is quantized as
    /// always; chained levels (produced upstream with this layer's width
    /// and generation mode) skip quantization and only re-validate shape
    /// and range, so `act_level` runs once per pixel across the chain.
    fn accept(&self, flow: Flow) -> Result<ActBatch, GeoError> {
        let lt = match flow {
            Flow::Float(t) => return self.quantize_acts(&t),
            Flow::Levels(lt) => lt,
        };
        let s = &lt.shape;
        if s.len() != 4 || s[1] != self.cin {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {}, H, W)", self.cin),
                actual: s.clone(),
            }));
        }
        if s[2] != self.h || s[3] != self.w {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {}, {}, {})", self.cin, self.h, self.w),
                actual: s.clone(),
            }));
        }
        validate_act_levels(&self.act_tables, &lt.levels)?;
        Ok(ActBatch {
            n: lt.shape[0],
            levels: lt.levels,
        })
    }

    /// Phase 2: computes the whole output tensor, parallelizing over
    /// spatial rows `(b, oy)` so one activation gather is shared by every
    /// output channel (DESIGN.md §14). Workers write a `[n, oh, cout, ow]`
    /// staging buffer that a serial pass transposes to the `[n, cout, oh,
    /// ow]` output layout. Bit-identical at every thread count: each
    /// staging row is written by exactly one worker from shared immutable
    /// state, and each pixel is a pure function of its indices.
    /// Infallible — every lookup the compacted kernels perform was
    /// validated at prepare/quantize time.
    fn compute(&self, batch: &ActBatch, tel: &LayerCounters) -> Tensor {
        let tmp = self.compute_rows(batch, tel);
        self.transpose_stage(&tmp, batch.n, self.oh, self.ow)
    }

    /// [`PreparedConv::compute`], emitting the downstream SC layer's
    /// quantized levels instead of an f32 tensor: `act_level` runs inside
    /// the serial transpose, so the chained consumer skips its whole
    /// quantization pass. Values quantized are bit-identical to the f32
    /// tensor [`PreparedConv::compute`] would have produced.
    fn compute_levels(
        &self,
        batch: &ActBatch,
        tel: &LayerCounters,
        progressive: bool,
        width: u8,
    ) -> LevelTensor {
        let tmp = self.compute_rows(batch, tel);
        self.transpose_stage_levels(&tmp, batch.n, self.oh, self.ow, progressive, width)
    }

    /// The parallel half of [`PreparedConv::compute`]: fills the
    /// `[n, oh, cout, ow]` staging buffer, one spatial row per chunk.
    fn compute_rows(&self, batch: &ActBatch, tel: &LayerCounters) -> Vec<f32> {
        let row_elems = self.cout * self.ow;
        let mut tmp = vec![0f32; batch.n * self.oh * row_elems];
        tmp.par_chunks_mut(row_elems.max(1))
            .enumerate()
            .for_each_init(
                || self.scratch.take(),
                |scratch, (row, chunk)| match self.mode {
                    Accumulation::Or => {
                        self.compute_spatial::<OrKernel>(row, chunk, batch, scratch, tel)
                    }
                    Accumulation::Pbw | Accumulation::Pbhw => {
                        self.compute_spatial::<GroupedKernel>(row, chunk, batch, scratch, tel)
                    }
                    Accumulation::Fxp => {
                        self.compute_spatial::<FxpKernel>(row, chunk, batch, scratch, tel)
                    }
                    Accumulation::Apc => {
                        self.compute_spatial::<ApcKernel>(row, chunk, batch, scratch, tel)
                    }
                },
            );
        tmp
    }

    /// Fused conv→avg-pool compute (§III-A computation skipping): workers
    /// produce both full-resolution rows of one *pooled* row, apply the
    /// absorbed batch-norm affine and ReLU clamp per full-res pixel in
    /// the exact unfused op order, and combine each 2×2 window once —
    /// the full-resolution tensor is never materialized and the serial
    /// transpose shrinks 4×. Returns the `[n, oh/2, cout, ow/2]` staging
    /// buffer. Bit-identical to the unfused
    /// compute → BnAffine::apply → clamp → `avg_pool2x2` pipeline: every
    /// float op runs in the same order on the same values, and the mode
    /// kernels (border masking, APC polarity paths included) are the
    /// unfused ones via the shared [`PreparedConv::gather_row`].
    fn compute_pooled(
        &self,
        batch: &ActBatch,
        bn: Option<&BnAffine>,
        relu: bool,
        tel: &LayerCounters,
    ) -> Vec<f32> {
        let (poh, pow2) = (self.oh / 2, self.ow / 2);
        let row_elems = self.cout * pow2;
        let epi = FusedEpilogue { bn, relu };
        let mut tmp = vec![0f32; batch.n * poh * row_elems];
        tmp.par_chunks_mut(row_elems.max(1))
            .enumerate()
            .for_each_init(
                || PoolWorker {
                    scratch: self.scratch.take(),
                    stage: vec![0f32; 2 * self.cout * self.ow],
                },
                |worker, (prow, chunk)| match self.mode {
                    Accumulation::Or => self
                        .compute_spatial_pooled::<OrKernel>(prow, chunk, batch, worker, epi, tel),
                    Accumulation::Pbw | Accumulation::Pbhw => self
                        .compute_spatial_pooled::<GroupedKernel>(
                            prow, chunk, batch, worker, epi, tel,
                        ),
                    Accumulation::Fxp => self
                        .compute_spatial_pooled::<FxpKernel>(prow, chunk, batch, worker, epi, tel),
                    Accumulation::Apc => self
                        .compute_spatial_pooled::<ApcKernel>(prow, chunk, batch, worker, epi, tel),
                },
            );
        tmp
    }

    /// Serial transpose of a `[n, r, cout, c]` staging buffer into the
    /// `[n, cout, r, c]` output tensor (`r`/`c` are full-resolution or
    /// pooled dims).
    fn transpose_stage(&self, tmp: &[f32], n: usize, r: usize, c: usize) -> Tensor {
        let row_elems = self.cout * c;
        let mut out = Tensor::zeros(&[n, self.cout, r, c]);
        let data = out.data_mut();
        for b in 0..n {
            for y in 0..r {
                let src = &tmp[(b * r + y) * row_elems..][..row_elems];
                for co in 0..self.cout {
                    let dst = ((b * self.cout + co) * r + y) * c;
                    data[dst..dst + c].copy_from_slice(&src[co * c..][..c]);
                }
            }
        }
        out
    }

    /// [`PreparedConv::transpose_stage`] fused with the chained
    /// consumer's [`act_level`] quantization.
    fn transpose_stage_levels(
        &self,
        tmp: &[f32],
        n: usize,
        r: usize,
        c: usize,
        progressive: bool,
        width: u8,
    ) -> LevelTensor {
        let row_elems = self.cout * c;
        let mut levels = vec![0u32; n * self.cout * r * c];
        for b in 0..n {
            for y in 0..r {
                let src = &tmp[(b * r + y) * row_elems..][..row_elems];
                for co in 0..self.cout {
                    let dst = ((b * self.cout + co) * r + y) * c;
                    for (d, &v) in levels[dst..dst + c].iter_mut().zip(&src[co * c..][..c]) {
                        *d = act_level(progressive, v, width);
                    }
                }
            }
        }
        LevelTensor {
            shape: vec![n, self.cout, r, c],
            levels,
        }
    }

    /// Gathers the activation words of every (kernel position, output
    /// column) unit of spatial row `(b, oy)` into `act`, zeroing
    /// out-of-bounds and level-0 units with a branchless mask and
    /// recording per-unit nonzero flags. Zero activation words are
    /// accumulation identities in every mode (OR, popcount, and the
    /// flags·nz-gated APC push), so dropped lanes need no repacking —
    /// and masking, rather than skipping the level-0 table read, matches
    /// the reference kernels' skip semantics exactly even when fault
    /// injection corrupts a table's level-0 stream.
    fn gather_row(&self, b: usize, oy: usize, levels: &[u32], act: &mut ActBuf) {
        let words = self.words;
        let ActBuf { acts, nz, zeros } = act;
        zeros.fill(0);
        for l in 0..self.volume {
            let dst_a = &mut acts[l * self.ow * words..][..self.ow * words];
            let dst_n = &mut nz[l * self.ow..][..self.ow];
            let iy = (oy * self.stride + self.pos_ky[l] as usize) as isize - self.pad as isize;
            if iy < 0 || iy >= self.h as isize {
                dst_a.fill(0);
                dst_n.fill(0);
                for z in zeros.iter_mut() {
                    *z += 1;
                }
                continue;
            }
            let rbase = ((b * self.cin + self.pos_ci[l] as usize) * self.h + iy as usize) * self.w;
            let ao = self.pos_ao[l] as usize;
            let kx = self.pos_kx[l] as isize - self.pad as isize;
            if words == 1 {
                for (ox, ((a, z), zc)) in dst_a
                    .iter_mut()
                    .zip(dst_n.iter_mut())
                    .zip(zeros.iter_mut())
                    .enumerate()
                {
                    let ix = (ox * self.stride) as isize + kx;
                    let lv = if ix >= 0 && ix < self.w as isize {
                        levels[rbase + ix as usize] as usize
                    } else {
                        0
                    };
                    let keep = u64::from(lv != 0);
                    *a = self.act_flat[ao + lv] & keep.wrapping_neg();
                    *z = keep as u8;
                    *zc += 1 - keep as u32;
                }
            } else {
                for ox in 0..self.ow {
                    let ix = (ox * self.stride) as isize + kx;
                    let lv = if ix >= 0 && ix < self.w as isize {
                        levels[rbase + ix as usize] as usize
                    } else {
                        0
                    };
                    let keep = u64::from(lv != 0);
                    let mask = keep.wrapping_neg();
                    let src = ao + lv * words;
                    for j in 0..words {
                        dst_a[ox * words + j] = self.act_flat[src + j] & mask;
                    }
                    dst_n[ox] = keep as u8;
                    zeros[ox] += 1 - keep as u32;
                }
            }
        }
    }

    /// Computes one spatial output row (`b`, `oy` fixed; all `co`, `ox`),
    /// monomorphized over the accumulation-mode kernel: one shared
    /// activation gather, then each output channel's pixels read the
    /// kernel's static SoA arrays — no per-row repacking at all.
    fn compute_spatial<M: ModeKernel>(
        &self,
        row: usize,
        chunk: &mut [f32],
        batch: &ActBatch,
        scratch: &mut Scratch,
        tel: &LayerCounters,
    ) {
        let oy = row % self.oh.max(1);
        let b = row / self.oh.max(1);
        self.compute_row_into::<M>(b, oy, chunk, batch, scratch);
        if telemetry::enabled() {
            tel.macs.add(scratch.pix.macs);
            scratch.pix.macs = 0;
        }
        scratch.debug_check();
    }

    /// Computes full-resolution spatial row `(b, oy)` into `out`
    /// (`cout·ow`, channel-major): one shared activation gather, then each
    /// output channel's pixels read the kernel's static SoA arrays. MACs
    /// accumulate into `scratch.pix.macs`; the caller flushes them.
    fn compute_row_into<M: ModeKernel>(
        &self,
        b: usize,
        oy: usize,
        out: &mut [f32],
        batch: &ActBatch,
        scratch: &mut Scratch,
    ) {
        let ck = &self.compact;
        let Scratch { act, pix } = scratch;
        self.gather_row(b, oy, &batch.levels, act);
        for (co, out_row) in out.chunks_mut(self.ow.max(1)).enumerate() {
            let range = ck.row_range(co);
            let (pos_aoff, pos_w) = ck.row_pos_list(co);
            let (neg_aoff, neg_w) = ck.row_neg_list(co);
            let view = RowView {
                n: range.len(),
                aoff: &ck.aoff[range.clone()],
                group: &ck.group[range.clone()],
                flags: &ck.flags[range],
                wp: ck.row_pos(co),
                wn: ck.row_neg(co),
                pos_aoff,
                pos_w,
                neg_aoff,
                neg_w,
            };
            for (ox, out_v) in out_row.iter_mut().enumerate() {
                *out_v = M::pixel(pix, &view, act, ox, self.words) as f32 / self.len as f32;
                if telemetry::enabled() {
                    pix.macs += view
                        .aoff
                        .iter()
                        .map(|&o| u64::from(act.nz[o as usize + ox]))
                        .sum::<u64>();
                }
            }
        }
    }

    /// Computes one *pooled* output row `(b, poy)`: both full-resolution
    /// rows land in the worker's staging buffer, the absorbed batch-norm
    /// affine and ReLU clamp run per full-res pixel (same elementwise ops,
    /// same order as the unfused steps), and each 2×2 window is combined
    /// once in `avg_pool2x2`'s tap order.
    fn compute_spatial_pooled<M: ModeKernel>(
        &self,
        prow: usize,
        chunk: &mut [f32],
        batch: &ActBatch,
        worker: &mut PoolWorker<'_>,
        epi: FusedEpilogue<'_>,
        tel: &LayerCounters,
    ) {
        let poh = (self.oh / 2).max(1);
        let pow2 = (self.ow / 2).max(1);
        let poy = prow % poh;
        let b = prow / poh;
        let half_elems = self.cout * self.ow;
        for half in 0..2 {
            let stage_row = &mut worker.stage[half * half_elems..][..half_elems];
            self.compute_row_into::<M>(b, 2 * poy + half, stage_row, batch, &mut worker.scratch);
            for co in 0..self.cout {
                let row = &mut stage_row[co * self.ow..][..self.ow];
                if let Some(bn) = epi.bn {
                    let (sc, sh) = (bn.scales[co], bn.shifts[co]);
                    for v in row.iter_mut() {
                        *v = sc * *v + sh;
                    }
                }
                if epi.relu {
                    for v in row.iter_mut() {
                        *v = v.clamp(0.0, 1.0);
                    }
                }
            }
        }
        let (s0, s1) = worker.stage.split_at(half_elems);
        for (co, out_row) in chunk.chunks_mut(pow2).enumerate() {
            let r0 = &s0[co * self.ow..][..self.ow];
            let r1 = &s1[co * self.ow..][..self.ow];
            for (pox, out_v) in out_row.iter_mut().enumerate() {
                let sum = r0[2 * pox] + r0[2 * pox + 1] + r1[2 * pox] + r1[2 * pox + 1];
                *out_v = sum / 4.0;
            }
        }
        if telemetry::enabled() {
            tel.macs.add(worker.scratch.pix.macs);
            worker.scratch.pix.macs = 0;
        }
        worker.scratch.debug_check();
    }
}

/// Per-worker state of the fused pooled compute: the pooled scratch plus
/// the two-full-res-row staging buffer the 2×2 combine reads.
struct PoolWorker<'a> {
    scratch: PooledScratch<'a>,
    stage: Vec<f32>,
}

/// The near-memory steps a fused conv→pool step absorbed, applied per
/// full-resolution pixel before the pooled combine.
#[derive(Clone, Copy)]
struct FusedEpilogue<'a> {
    bn: Option<&'a BnAffine>,
    relu: bool,
}

impl PreparedLinear {
    /// Quantizes one request's activations (see
    /// [`PreparedConv::quantize_acts`]).
    fn quantize_acts(&self, input: &Tensor) -> Result<ActBatch, GeoError> {
        let s = input.shape();
        if s.len() != 2 || s[1] != self.features {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {})", self.features),
                actual: s.to_vec(),
            }));
        }
        let n = s[0];
        let levels: Vec<u32> = (0..n)
            .flat_map(|b| (0..self.features).map(move |i| (b, i)))
            .map(|(b, i)| act_level(self.progressive, input.at2(b, i), self.width))
            .collect();
        validate_act_levels(&self.act_tables, &levels)?;
        Ok(ActBatch { n, levels })
    }

    /// Accepts either activation form (see [`PreparedConv::accept`]).
    fn accept(&self, flow: Flow) -> Result<ActBatch, GeoError> {
        let lt = match flow {
            Flow::Float(t) => return self.quantize_acts(&t),
            Flow::Levels(lt) => lt,
        };
        if lt.shape.len() != 2 || lt.shape[1] != self.features {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {})", self.features),
                actual: lt.shape.clone(),
            }));
        }
        validate_act_levels(&self.act_tables, &lt.levels)?;
        Ok(ActBatch {
            n: lt.shape[0],
            levels: lt.levels,
        })
    }

    /// Phase 2: computes the whole output tensor. Output neurons
    /// `(b, o)` are split into one contiguous run per worker (rather
    /// than scheduling each neuron as its own chunk), so per-chunk
    /// dispatch overhead is paid once per worker. Chunk geometry cannot
    /// affect the numerics — each neuron is a pure function of its row
    /// index — so this stays bit-identical at every thread count.
    fn compute(&self, batch: &ActBatch, tel: &LayerCounters) -> Tensor {
        let mut out = Tensor::zeros(&[batch.n, self.outf]);
        let total = batch.n * self.outf;
        let chunk_rows = total.div_ceil(rayon::current_num_threads().max(1)).max(1);
        out.data_mut()
            .par_chunks_mut(chunk_rows)
            .enumerate()
            .for_each_init(
                || self.scratch.take(),
                |scratch, (ci, chunk)| {
                    let start = ci * chunk_rows;
                    match self.mode {
                        Accumulation::Or => {
                            self.compute_chunk::<OrKernel>(start, chunk, batch, scratch)
                        }
                        Accumulation::Pbw | Accumulation::Pbhw => {
                            self.compute_chunk::<GroupedKernel>(start, chunk, batch, scratch)
                        }
                        Accumulation::Fxp => {
                            self.compute_chunk::<FxpKernel>(start, chunk, batch, scratch)
                        }
                        Accumulation::Apc => {
                            self.compute_chunk::<ApcKernel>(start, chunk, batch, scratch)
                        }
                    }
                    if telemetry::enabled() {
                        tel.macs.add(scratch.pix.macs);
                        scratch.pix.macs = 0;
                    }
                    scratch.debug_check();
                },
            );
        out
    }

    /// [`PreparedLinear::compute`], emitting the downstream SC layer's
    /// quantized levels (a serial map over the small `[n, outf]` output;
    /// see [`PreparedConv::compute_levels`]).
    fn compute_levels(
        &self,
        batch: &ActBatch,
        tel: &LayerCounters,
        progressive: bool,
        width: u8,
    ) -> LevelTensor {
        let out = self.compute(batch, tel);
        LevelTensor {
            shape: vec![batch.n, self.outf],
            levels: out
                .data()
                .iter()
                .map(|&v| act_level(progressive, v, width))
                .collect(),
        }
    }

    /// Gathers batch element `b`'s activation words — one unit per input
    /// feature — into `act`, zeroing level-0 units with a branchless
    /// mask (identical semantics to [`PreparedConv::gather_row`]).
    fn gather_batch(&self, b: usize, levels: &[u32], act: &mut ActBuf) {
        let words = self.words;
        let base = b * self.features;
        let mut zero_units = 0u32;
        for f in 0..self.features {
            let lv = levels[base + f] as usize;
            let keep = u64::from(lv != 0);
            let mask = keep.wrapping_neg();
            let src = self.pos_ao[f] as usize + lv * words;
            for j in 0..words {
                act.acts[f * words + j] = self.act_flat[src + j] & mask;
            }
            act.nz[f] = keep as u8;
            zero_units += 1 - keep as u32;
        }
        act.zeros[0] = zero_units;
    }

    /// Computes one worker's run of output neurons (`row = b·outf + o`),
    /// monomorphized over the accumulation-mode kernel. A worker's run is
    /// contiguous in `(b, o)` order, so the batch element's activation
    /// gather is performed once per `b` and shared by its `outf` neurons;
    /// a neuron's [`RowView`] borrows the kernel SoA arrays directly.
    fn compute_chunk<M: ModeKernel>(
        &self,
        start: usize,
        chunk: &mut [f32],
        batch: &ActBatch,
        scratch: &mut Scratch,
    ) {
        let ck = &self.compact;
        let Scratch { act, pix } = scratch;
        let mut cur_b = usize::MAX;
        for (j, out_v) in chunk.iter_mut().enumerate() {
            let row = start + j;
            let o = row % self.outf;
            let b = row / self.outf;
            if b != cur_b {
                self.gather_batch(b, &batch.levels, act);
                cur_b = b;
            }
            let range = ck.row_range(o);
            let (pos_aoff, pos_w) = ck.row_pos_list(o);
            let (neg_aoff, neg_w) = ck.row_neg_list(o);
            let view = RowView {
                n: range.len(),
                aoff: &ck.aoff[range.clone()],
                group: &ck.group[range.clone()],
                flags: &ck.flags[range],
                wp: ck.row_pos(o),
                wn: ck.row_neg(o),
                pos_aoff,
                pos_w,
                neg_aoff,
                neg_w,
            };
            *out_v = M::pixel(pix, &view, act, 0, self.words) as f32 / self.len as f32;
            if telemetry::enabled() {
                pix.macs += view
                    .aoff
                    .iter()
                    .map(|&of| u64::from(act.nz[of as usize]))
                    .sum::<u64>();
            }
        }
    }
}

/// The stochastic inference engine.
///
/// # Examples
///
/// ```
/// use geo_core::{GeoConfig, ScEngine};
/// use geo_nn::{models, Tensor};
///
/// # fn main() -> Result<(), geo_core::GeoError> {
/// let mut engine = ScEngine::new(GeoConfig::geo(32, 64))?;
/// let mut model = models::lenet5(1, 8, 10, 0);
/// let logits = engine.forward(&mut model, &Tensor::full(&[1, 1, 8, 8], 0.5), false)?;
/// assert_eq!(logits.shape(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
pub struct ScEngine {
    config: GeoConfig,
    cache: TableCache,
    resilience: ResilienceReport,
    telemetry: EngineTelemetry,
    /// When set, compute phases run the pre-compaction reference kernels
    /// instead of the compacted ones (see [`ScEngine::forward_reference`]).
    reference_kernels: bool,
}

impl ScEngine {
    /// Creates an engine for a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] for unrealizable configurations.
    pub fn new(config: GeoConfig) -> Result<Self, GeoError> {
        Self::with_faults(config, FaultModel::none())
    }

    /// Creates an engine whose datapath injects the given fault model
    /// (see [`geo_sc::fault`]).
    ///
    /// [`FaultModel::none`] is guaranteed to take the exact fault-free code
    /// path, so its outputs are bit-for-bit identical to
    /// [`ScEngine::new`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] for unrealizable configurations
    /// and [`GeoError::Sc`] for fault rates outside `[0, 1]`.
    pub fn with_faults(config: GeoConfig, faults: FaultModel) -> Result<Self, GeoError> {
        config.validate()?;
        faults.validate().map_err(GeoError::Sc)?;
        let mut cache = TableCache::new();
        if !faults.is_none() {
            cache.set_faults(Some(FaultInjector::new(faults).map_err(GeoError::Sc)?));
        }
        Ok(ScEngine {
            config,
            cache,
            resilience: ResilienceReport::default(),
            telemetry: EngineTelemetry::default(),
            reference_kernels: false,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GeoConfig {
        &self.config
    }

    /// The fault model injected into this engine's datapath, if any.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.cache.fault_model()
    }

    /// Per-layer fault counts accumulated since creation (or the last
    /// [`ScEngine::reset_resilience_report`]). Empty for fault-free
    /// engines.
    pub fn resilience_report(&self) -> &ResilienceReport {
        &self.resilience
    }

    /// Clears the accumulated resilience report.
    pub fn reset_resilience_report(&mut self) {
        self.resilience = ResilienceReport::default();
    }

    /// Snapshot of the per-layer telemetry counters and phase times
    /// accumulated since creation (or the last
    /// [`ScEngine::reset_telemetry`]).
    ///
    /// All-zero unless the crate is built with the `telemetry` feature
    /// (see [`crate::telemetry::enabled`]). Counters cover both the
    /// compacted and reference compute paths, which execute the identical
    /// MAC set by construction.
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.telemetry.report("sc-engine")
    }

    /// Clears the accumulated telemetry counters and phase times.
    pub fn reset_telemetry(&mut self) {
        self.telemetry.reset();
    }

    /// Stream length assigned to each parametrized (conv/linear) layer:
    /// `sp` if the layer feeds a pooling stage, the output length for the
    /// last layer, `s` otherwise. Indexed by position in `model.layers()`.
    pub fn stream_plan(&self, model: &Sequential) -> Vec<Option<usize>> {
        let layers = model.layers();
        let param_idx: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
            .map(|(i, _)| i)
            .collect();
        let mut plan = vec![None; layers.len()];
        for (k, &i) in param_idx.iter().enumerate() {
            let next = param_idx.get(k + 1).copied().unwrap_or(layers.len());
            let pooled = layers[i..next]
                .iter()
                .any(|l| matches!(l, Layer::AvgPool2d(_) | Layer::MaxPool2d(_)));
            let len = if k + 1 == param_idx.len() {
                self.config.output_stream_len
            } else if pooled {
                self.config.stream_len_pooled
            } else {
                self.config.stream_len
            };
            plan[i] = Some(len);
        }
        plan
    }

    /// Runs the network with the SC datapath.
    ///
    /// With `training = true`, float layers run forward first (caching
    /// inputs for backward) and SC outputs replace their results; batch
    /// norm uses batch statistics. With `training = false`, only the SC
    /// path runs and batch norm applies its quantized folded affine.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors and shape mismatches.
    pub fn forward(
        &mut self,
        model: &mut Sequential,
        input: &Tensor,
        training: bool,
    ) -> Result<Tensor, GeoError> {
        self.forward_with_lens(model, input, training, |_, len| Ok(len))
    }

    /// Runs the network through the *pre-compaction reference kernels*:
    /// the per-pixel loops that test padding bounds and `WeightRef`
    /// zeroness on every lane and materialize APC products as heap
    /// bitstreams.
    ///
    /// The reference path is retained for two jobs: it is the oracle the
    /// compacted kernels are proven bit-identical against
    /// (`crates/core/tests/compaction_equivalence.rs`), and it is the
    /// "before" side of the `bench_forward` perf trajectory. Outputs are
    /// bit-for-bit equal to [`ScEngine::forward`] at every thread count.
    ///
    /// Reference passes stay on the *unfused* pipeline by construction:
    /// conv→pool fusion and level chaining are gated on
    /// `!reference_kernels` in `prepare_with_lens`, so an oracle
    /// comparison can never silently take the fast path it is supposed
    /// to check.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors and shape mismatches, exactly as
    /// [`ScEngine::forward`] does.
    pub fn forward_reference(
        &mut self,
        model: &mut Sequential,
        input: &Tensor,
        training: bool,
    ) -> Result<Tensor, GeoError> {
        self.reference_kernels = true;
        let out = self.forward_with_lens(model, input, training, |_, len| Ok(len));
        self.reference_kernels = false;
        out
    }

    /// The forward loop, parameterized over the per-layer stream-length
    /// source: `len_for(param_layer, planned_len)` returns the length each
    /// parametrized layer runs at. [`ScEngine::forward`] passes the stream
    /// plan through unchanged; [`crate::exec::ProgramExecutor`] supplies
    /// lengths decoded from a compiled ISA program (cross-checked against
    /// the plan), so both paths share one datapath and stay bit-identical
    /// by construction.
    ///
    /// Inference runs as prepare-then-compute through a one-shot
    /// [`PreparedModel`] — the same code the serve path reuses across
    /// requests, which is what pins that path bit-identical to every
    /// historical `forward` output. Training keeps the interleaved
    /// per-layer loop because float layers must run `&mut` forwards to
    /// cache inputs for backward.
    pub(crate) fn forward_with_lens<F>(
        &mut self,
        model: &mut Sequential,
        input: &Tensor,
        training: bool,
        mut len_for: F,
    ) -> Result<Tensor, GeoError>
    where
        F: FnMut(u32, usize) -> Result<usize, GeoError>,
    {
        if !training {
            model.set_training(false);
            let prepared = self.prepare_with_lens(model, input.shape(), &mut len_for)?;
            let out = prepared.forward(input);
            // Fold the pass's locally accumulated counters back into the
            // engine's reports, exactly as the interleaved loop recorded
            // them in place.
            self.telemetry.absorb(&prepared.telemetry);
            self.resilience.absorb(&prepared.resilience);
            return out;
        }
        self.cache.begin_pass();
        self.telemetry.passes.incr();
        if self.fault_model().is_some() {
            self.resilience.passes += 1;
        }
        model.set_training(true);
        let plan = self.stream_plan(model);
        let mut x = input.clone();
        let mut param_layer = 0u32;
        for (i, layer) in model.layers_mut().iter_mut().enumerate() {
            match layer {
                Layer::Conv2d(conv) => {
                    let len = len_for(param_layer, planned_len(&plan, i)?)?;
                    let _ = conv.forward(&x)?; // cache input for backward
                    let before = self.cache.fault_counters();
                    x = self.sc_conv(conv, &x, len, param_layer)?;
                    self.record_layer_faults(param_layer, before);
                    param_layer += 1;
                }
                Layer::Linear(lin) => {
                    let len = len_for(param_layer, planned_len(&plan, i)?)?;
                    let _ = lin.forward(&x)?;
                    let before = self.cache.fault_counters();
                    x = self.sc_linear(lin, &x, len, param_layer)?;
                    self.record_layer_faults(param_layer, before);
                    param_layer += 1;
                }
                Layer::BatchNorm2d(bn) => {
                    x = bn.forward(&x)?;
                }
                Layer::Relu(r) => {
                    // ReLU, then saturate at 1.0: unipolar streams cannot
                    // carry more (the straight-through clamp SC training
                    // learns around).
                    x = r.forward(&x).map(|v| v.min(1.0));
                }
                other => {
                    let sw = Stopwatch::start();
                    x = other.forward(&x)?;
                    if telemetry::enabled() {
                        self.telemetry
                            .layer(param_layer.saturating_sub(1) as usize)
                            .add_phase_ns(Phase::NearMem, sw.elapsed_ns());
                    }
                }
            }
        }
        Ok(x)
    }

    /// Compiles `model` for inputs of `input_shape` (the batch dimension
    /// is free — any `N` may be served) into an immutable, `Send + Sync`,
    /// `Arc`-shareable [`PreparedModel`]: one serial pass over the network
    /// builds every lane table, weight stream, compacted kernel, and
    /// near-memory affine exactly as a direct [`ScEngine::forward`] would,
    /// after which any number of requests can run
    /// [`PreparedModel::forward`] concurrently against the shared state.
    ///
    /// Table and fault-draw order matches the interleaved loop (compute
    /// never touches the cache or RNG), so prepared outputs are
    /// bit-identical to direct forwards. One prepare consumes one cache
    /// pass: TRNG tables and transient faults are drawn here and then
    /// *frozen* for every request served from this `PreparedModel` (see
    /// [`TableCache::begin_pass`]).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors and shape mismatches, exactly as
    /// [`ScEngine::forward`] does.
    pub fn prepare(
        &mut self,
        model: &Sequential,
        input_shape: &[usize],
    ) -> Result<PreparedModel, GeoError> {
        self.prepare_with_lens(model, input_shape, &mut |_, len| Ok(len))
    }

    /// The prepare loop behind [`ScEngine::prepare`] and the inference arm
    /// of [`ScEngine::forward_with_lens`]: traces shapes through the
    /// network (replicating the forward loop's shape errors) and hoists
    /// every input-independent step into a [`PreparedStep`] sequence.
    pub(crate) fn prepare_with_lens<F>(
        &mut self,
        model: &Sequential,
        input_shape: &[usize],
        len_for: &mut F,
    ) -> Result<PreparedModel, GeoError>
    where
        F: FnMut(u32, usize) -> Result<usize, GeoError>,
    {
        self.cache.begin_pass();
        let plan = self.stream_plan(model);
        let mut telemetry = EngineTelemetry::default();
        let mut resilience = ResilienceReport::default();
        if self.fault_model().is_some() {
            resilience.passes = 1;
        }
        // Conv→pool fusion and level chaining are config-gated and never
        // applied to reference prepares, which must stay on the unfused
        // oracle path by construction.
        let fuse = self.config.fuse_pooling && !self.reference_kernels;
        let layers = model.layers();
        let mut steps = Vec::with_capacity(layers.len());
        let mut shape: Vec<usize> = input_shape.to_vec();
        let mut param_layer = 0u32;
        let mut i = 0;
        while i < layers.len() {
            // Near-memory steps are attributed to the parametrized layer
            // whose outputs they transform, as in the interleaved loop.
            let tel_layer = param_layer.saturating_sub(1) as usize;
            match &layers[i] {
                Layer::Conv2d(conv) => {
                    let len = len_for(param_layer, planned_len(&plan, i)?)?;
                    if shape.len() != 4 || shape[1] != conv.cin() {
                        return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                            expected: format!("(N, {}, H, W)", conv.cin()),
                            actual: shape.clone(),
                        }));
                    }
                    let before = self.cache.fault_counters();
                    let (prep, stats) =
                        self.prepare_conv(conv, (shape[2], shape[3]), len, param_layer)?;
                    stats.apply(telemetry.layer(param_layer as usize));
                    record_prepare_faults(
                        &self.cache,
                        param_layer,
                        before,
                        &mut telemetry,
                        &mut resilience,
                    );
                    shape = vec![shape[0], prep.cout, prep.oh, prep.ow];
                    // Fusion detection (§III-A): a `Conv → [BatchNorm] →
                    // [ReLU] → AvgPool2d` run with even output dims fuses
                    // into one step. Odd dims fall through — the unfused
                    // AvgPool arm then raises the identical shape error.
                    // Resolve order is unchanged: `prepare_conv` above drew
                    // this layer's tables/faults, and `BnAffine::prepare`
                    // touches neither the cache nor the RNG.
                    if let Some((bn, relu, next)) = fuse
                        .then(|| fusible_pool_run(layers, i + 1))
                        .flatten()
                        .filter(|_| prep.oh.is_multiple_of(2) && prep.ow.is_multiple_of(2))
                    {
                        let bn = bn
                            .map(|b| {
                                let affine = BnAffine::prepare(b, self.config.bn_bits)?;
                                if shape[1] != affine.scales.len() {
                                    return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                                        expected: format!("(N, {}, H, W)", affine.scales.len()),
                                        actual: shape.clone(),
                                    }));
                                }
                                Ok(affine)
                            })
                            .transpose()?;
                        shape = vec![shape[0], prep.cout, prep.oh / 2, prep.ow / 2];
                        steps.push(PreparedStep::ConvPooled {
                            layer: prep,
                            param_layer,
                            bn,
                            relu,
                            emit: Emit::Float,
                        });
                        param_layer += 1;
                        i = next;
                        continue;
                    }
                    steps.push(PreparedStep::Conv {
                        layer: prep,
                        param_layer,
                        emit: Emit::Float,
                    });
                    param_layer += 1;
                }
                Layer::Linear(lin) => {
                    let len = len_for(param_layer, planned_len(&plan, i)?)?;
                    if shape.len() != 2 || shape[1] != lin.input_features() {
                        return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                            expected: format!("(N, {})", lin.input_features()),
                            actual: shape.clone(),
                        }));
                    }
                    let before = self.cache.fault_counters();
                    let (prep, stats) = self.prepare_linear(lin, len, param_layer)?;
                    stats.apply(telemetry.layer(param_layer as usize));
                    record_prepare_faults(
                        &self.cache,
                        param_layer,
                        before,
                        &mut telemetry,
                        &mut resilience,
                    );
                    shape = vec![shape[0], prep.outf];
                    steps.push(PreparedStep::Linear {
                        layer: prep,
                        param_layer,
                        emit: Emit::Float,
                    });
                    param_layer += 1;
                }
                Layer::BatchNorm2d(bn) => {
                    let affine = BnAffine::prepare(bn, self.config.bn_bits)?;
                    if shape.len() != 4 || shape[1] != affine.scales.len() {
                        return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                            expected: format!("(N, {}, H, W)", affine.scales.len()),
                            actual: shape.clone(),
                        }));
                    }
                    steps.push(PreparedStep::BatchNorm { affine, tel_layer });
                }
                Layer::Relu(_) => steps.push(PreparedStep::Relu),
                Layer::AvgPool2d(_) | Layer::MaxPool2d(_) => {
                    let (n, c, h, w) = pool_shape(&shape)?;
                    shape = vec![n, c, h / 2, w / 2];
                    steps.push(if matches!(&layers[i], Layer::AvgPool2d(_)) {
                        PreparedStep::AvgPool { tel_layer }
                    } else {
                        PreparedStep::MaxPool { tel_layer }
                    });
                }
                Layer::Flatten(_) => {
                    if shape.len() < 2 {
                        return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                            expected: "at least 2-d".into(),
                            actual: shape.clone(),
                        }));
                    }
                    let rest: usize = shape[1..].iter().product();
                    shape = vec![shape[0], rest];
                    steps.push(PreparedStep::Flatten { tel_layer });
                }
            }
            i += 1;
        }
        if fuse {
            assign_level_chaining(&mut steps);
        }
        // Pre-size the per-layer counters: `PreparedModel::forward` only
        // holds `&self`, so it cannot grow the vector on first use. Near-
        // memory steps attribute to `tel_layer`, which can reach index 0
        // even in a network with no parametrized layers.
        telemetry.ensure_layers(param_layer as usize);
        if telemetry::enabled() {
            let near_mem = steps
                .iter()
                .filter_map(|s| match s {
                    PreparedStep::BatchNorm { tel_layer, .. }
                    | PreparedStep::AvgPool { tel_layer }
                    | PreparedStep::MaxPool { tel_layer }
                    | PreparedStep::Flatten { tel_layer } => Some(*tel_layer + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            telemetry.ensure_layers(near_mem);
        }
        Ok(PreparedModel {
            config: self.config,
            input_shape: input_shape.to_vec(),
            steps,
            telemetry,
            resilience,
            reference: self.reference_kernels,
        })
    }

    /// Runs the SC datapath of the single parametrized layer at
    /// `layer_index` on the given activations — the building block of
    /// per-layer error analysis ([`crate::analyze`]).
    ///
    /// Uses the same stream plan, seeds, and tables as a full forward, so
    /// the result is bit-identical to that layer's contribution in
    /// [`ScEngine::forward`]. Single-layer runs are *unfused by
    /// construction* — they call the conv/linear datapath directly and
    /// never build a `PreparedStep` sequence, so conv→pool fusion and
    /// level chaining cannot apply and per-layer oracle comparisons see
    /// the layer's raw full-resolution output.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] if `layer_index` is not a
    /// conv/linear layer; propagates substrate errors.
    pub fn forward_single_layer(
        &mut self,
        model: &Sequential,
        layer_index: usize,
        input: &Tensor,
    ) -> Result<Tensor, GeoError> {
        self.cache.begin_pass();
        let plan = self.stream_plan(model);
        let len = plan.get(layer_index).copied().flatten().ok_or_else(|| {
            GeoError::InvalidConfig(format!(
                "layer {layer_index} is not a parametrized (conv/linear) layer"
            ))
        })?;
        let param_layer = model.layers()[..layer_index]
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
            .count() as u32;
        let before = self.cache.fault_counters();
        // Layers are borrowed, not cloned: the resolve phase only reads
        // weights, so nothing here needs `&mut` access to the model.
        let out = match &model.layers()[layer_index] {
            Layer::Conv2d(conv) => self.sc_conv(conv, input, len, param_layer),
            Layer::Linear(lin) => self.sc_linear(lin, input, len, param_layer),
            other => {
                return Err(GeoError::Internal(format!(
                    "stream plan assigned a length to non-parametrized layer {}",
                    other.kind()
                )))
            }
        };
        self.record_layer_faults(param_layer, before);
        out
    }

    /// Attributes faults injected since the `before` snapshot to
    /// `param_layer`.
    fn record_layer_faults(&mut self, param_layer: u32, before: FaultCounters) {
        record_prepare_faults(
            &self.cache,
            param_layer,
            before,
            &mut self.telemetry,
            &mut self.resilience,
        );
    }

    fn layer_seed(&self, param_layer: u32) -> u32 {
        self.config
            .base_seed
            .wrapping_add(param_layer.wrapping_mul(LAYER_SEED_STRIDE))
    }

    fn lane_table(
        &mut self,
        width: u8,
        len: usize,
        spec: geo_sc::RngSpec,
    ) -> Result<LaneTable, GeoError> {
        Ok(if self.config.progressive {
            LaneTable::Progressive(self.cache.progressive(self.config.rng, width, len, spec)?)
        } else {
            LaneTable::Normal(self.cache.regular(self.config.rng, width, len, spec)?)
        })
    }

    /// Quantized split-weight levels for table lookup (same truncation and
    /// full-scale semantics as [`act_level`], so `|w| = 1.0` keeps
    /// the all-ones stream in normal mode).
    fn weight_levels(&self, w: f32, width: u8) -> (u32, u32) {
        let w = w.clamp(-1.0, 1.0);
        let pos = quantize_unipolar(w.max(0.0), 8);
        let neg = quantize_unipolar((-w).max(0.0), 8);
        if self.config.progressive {
            (pos.min(255), neg.min(255))
        } else {
            let shift = 8 - width.min(8);
            (pos >> shift, neg >> shift)
        }
    }

    /// Stochastic convolution of one layer: serial resolve, then
    /// per-request quantize + parallel compute (the prepared pipeline run
    /// end to end for a single call).
    fn sc_conv(
        &mut self,
        conv: &Conv2d,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<Tensor, GeoError> {
        let resolved = self.resolve_conv(conv, input, len, param_layer)?;
        let reference = self.reference_kernels;
        let tel = self.telemetry.layer(param_layer as usize);
        let sw = Stopwatch::start();
        let batch = resolved.quantize_acts(input)?;
        if telemetry::enabled() {
            tel.add_phase_ns(Phase::Convert, sw.elapsed_ns());
        }
        let sw = Stopwatch::start();
        let out = if reference {
            resolved.compute_reference(&batch, tel)
        } else {
            Ok(resolved.compute(&batch, tel))
        };
        if telemetry::enabled() {
            tel.add_phase_ns(Phase::Compute, sw.elapsed_ns());
        }
        out
    }

    /// Single-call form of [`Self::prepare_conv`]: checks the input's
    /// shape, prepares the layer, and folds the resolve counters into the
    /// engine's own telemetry.
    fn resolve_conv(
        &mut self,
        conv: &Conv2d,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<PreparedConv, GeoError> {
        let s = input.shape();
        if s.len() != 4 || s[1] != conv.cin() {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {}, H, W)", conv.cin()),
                actual: s.to_vec(),
            }));
        }
        let (prepared, stats) = self.prepare_conv(conv, (s[2], s[3]), len, param_layer)?;
        stats.apply(self.telemetry.layer(param_layer as usize));
        Ok(prepared)
    }

    /// Phase 1 for a convolution: builds/fetches every lane table through
    /// the serial [`TableCache`] (in a fixed order, so fault injection is
    /// deterministic) and quantizes every *weight* operand. Nothing here
    /// reads the activations — the produced [`PreparedConv`] is reusable
    /// across requests at the traced `(h, w)` geometry.
    fn prepare_conv(
        &mut self,
        conv: &Conv2d,
        (h, w): (usize, usize),
        len: usize,
        param_layer: u32,
    ) -> Result<(PreparedConv, ResolveStats), GeoError> {
        let sw_resolve = Stopwatch::start();
        let (hits0, misses0) = self.cache.lookup_counts();
        let cin = conv.cin();
        let (cout, k) = (conv.cout(), conv.kernel());
        let (stride, pad) = (conv.stride(), conv.padding());
        let (oh, ow) = conv.output_size(h, w);
        let width = GeoConfig::width_for(len);
        let dims = KernelDims::new(cout, cin, k, k);
        let plan = SeedPlan::new(
            self.config.sharing,
            width,
            self.layer_seed(param_layer),
            dims,
        );
        let volume = dims.kernel_volume();
        let mode = self.config.accumulation;

        // Activation lane tables: one generator per kernel position,
        // broadcast across all rows (kernels).
        let act_tables: Vec<LaneTable> = (0..volume)
            .map(|lane| {
                let spec = plan.activation_spec(lane);
                self.lane_table(width, len, spec)
            })
            .collect::<Result<_, _>>()?;

        // Weight references: per (kernel, position), with the accumulator
        // group each lane feeds precomputed from its kernel coordinates.
        // The tables are retained (cheap `Arc` clones) so the compacted
        // build can read stream words without the per-lane heap copies
        // the reference resolve makes.
        let copy_words = self.reference_kernels;
        let mut wrefs = Vec::with_capacity(cout * volume);
        let mut wtables = Vec::with_capacity(cout * volume);
        for co in 0..cout {
            for ci in 0..cin {
                for ky in 0..k {
                    for kx in 0..k {
                        let spec = plan.weight_spec(co, ci, ky, kx);
                        let table = self.lane_table(width, len, spec)?;
                        let levels =
                            self.weight_levels(conv.weight.value.at4(co, ci, ky, kx), width);
                        let group = match mode {
                            Accumulation::Pbw => kx,
                            Accumulation::Pbhw => ky * k + kx,
                            Accumulation::Or | Accumulation::Fxp | Accumulation::Apc => 0,
                        };
                        wrefs.push(WeightRef::resolve(&table, levels, group, copy_words)?);
                        wtables.push(table);
                    }
                }
            }
        }
        let (hits, misses) = self.cache.lookup_counts();

        let groups = match mode {
            Accumulation::Or => 1,
            Accumulation::Pbw => k,
            Accumulation::Pbhw => k * k,
            Accumulation::Fxp | Accumulation::Apc => 1, // handled separately
        };
        let words = len.div_ceil(64);
        // The flat activation slab only serves the compacted gather; the
        // reference path keeps its per-MAC table lookups (and their cost).
        let (act_flat, act_off) = if self.reference_kernels {
            (Vec::new(), vec![0u32; act_tables.len()])
        } else {
            flatten_act_tables(&act_tables, words)?
        };
        // The per-lane gather offsets (`lane · ow`) are stored as u32.
        if u32::try_from(volume.saturating_mul(ow.max(1))).is_err() {
            return Err(GeoError::Internal(format!(
                "conv gather index space {volume}·{ow} exceeds u32"
            )));
        }
        let compact = CompactKernel::build(&wrefs, &wtables, cout, volume, words, ow);
        drop(wtables);
        let mut pos_ci = Vec::with_capacity(volume);
        let mut pos_ky = Vec::with_capacity(volume);
        let mut pos_kx = Vec::with_capacity(volume);
        for lane in 0..volume {
            let rem = lane % (k * k);
            pos_ci.push((lane / (k * k)) as u32);
            pos_ky.push((rem / k) as u32);
            pos_kx.push((rem % k) as u32);
        }
        let stats = ResolveStats {
            resolve_ns: sw_resolve.elapsed_ns(),
            table_hits: hits - hits0,
            table_misses: misses - misses0,
            compacted_lanes: compact.lane.len() as u64,
            skipped_zero_lanes: (wrefs.len() - compact.lane.len()) as u64,
        };
        let scratch = ScratchPool::new(groups, words, compact.max_row_lanes(), volume * ow, ow);
        Ok((
            PreparedConv {
                mode,
                len,
                words,
                groups,
                width,
                progressive: self.config.progressive,
                cin,
                h,
                w,
                cout,
                k,
                stride,
                pad,
                oh,
                ow,
                volume,
                act_tables,
                wrefs,
                act_flat,
                compact,
                pos_ci,
                pos_ky,
                pos_kx,
                pos_ao: act_off,
                scratch,
            },
            stats,
        ))
    }

    /// Stochastic fully-connected layer: features map onto a pseudo-kernel
    /// of width [`FC_BINARY_WIDTH`], so the accumulation split applies.
    /// Serial resolve, parallel compute.
    fn sc_linear(
        &mut self,
        lin: &Linear,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<Tensor, GeoError> {
        let resolved = self.resolve_linear(lin, input, len, param_layer)?;
        let reference = self.reference_kernels;
        let tel = self.telemetry.layer(param_layer as usize);
        let sw = Stopwatch::start();
        let batch = resolved.quantize_acts(input)?;
        if telemetry::enabled() {
            tel.add_phase_ns(Phase::Convert, sw.elapsed_ns());
        }
        let sw = Stopwatch::start();
        let out = if reference {
            resolved.compute_reference(&batch, tel)
        } else {
            Ok(resolved.compute(&batch, tel))
        };
        if telemetry::enabled() {
            tel.add_phase_ns(Phase::Compute, sw.elapsed_ns());
        }
        out
    }

    /// Single-call form of [`Self::prepare_linear`] (see
    /// [`Self::resolve_conv`]).
    fn resolve_linear(
        &mut self,
        lin: &Linear,
        input: &Tensor,
        len: usize,
        param_layer: u32,
    ) -> Result<PreparedLinear, GeoError> {
        let s = input.shape();
        if s.len() != 2 || s[1] != lin.input_features() {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {})", lin.input_features()),
                actual: s.to_vec(),
            }));
        }
        let (prepared, stats) = self.prepare_linear(lin, len, param_layer)?;
        stats.apply(self.telemetry.layer(param_layer as usize));
        Ok(prepared)
    }

    /// Phase 1 for a fully-connected layer (see [`Self::prepare_conv`]).
    fn prepare_linear(
        &mut self,
        lin: &Linear,
        len: usize,
        param_layer: u32,
    ) -> Result<(PreparedLinear, ResolveStats), GeoError> {
        let sw_resolve = Stopwatch::start();
        let (hits0, misses0) = self.cache.lookup_counts();
        let features = lin.input_features();
        let outf = lin.output_features();
        let width = GeoConfig::width_for(len);
        let wdim = FC_BINARY_WIDTH.min(features);
        let cdim = features.div_ceil(wdim);
        let dims = KernelDims::new(outf, cdim, 1, wdim);
        let plan = SeedPlan::new(
            self.config.sharing,
            width,
            self.layer_seed(param_layer),
            dims,
        );
        let mode = self.config.accumulation;

        let act_tables: Vec<LaneTable> = (0..features)
            .map(|lane| {
                let spec = plan.activation_spec(lane);
                self.lane_table(width, len, spec)
            })
            .collect::<Result<_, _>>()?;
        let copy_words = self.reference_kernels;
        let mut wrefs = Vec::with_capacity(outf * features);
        let mut wtables = Vec::with_capacity(outf * features);
        for o in 0..outf {
            for i in 0..features {
                let spec = plan.weight_spec(o, i / wdim, 0, i % wdim);
                let table = self.lane_table(width, len, spec)?;
                let levels = self.weight_levels(lin.weight.value.at2(o, i), width);
                let group = match mode {
                    Accumulation::Pbw | Accumulation::Pbhw => i % wdim,
                    Accumulation::Or | Accumulation::Fxp | Accumulation::Apc => 0,
                };
                wrefs.push(WeightRef::resolve(&table, levels, group, copy_words)?);
                wtables.push(table);
            }
        }
        let (hits, misses) = self.cache.lookup_counts();

        let groups = match mode {
            Accumulation::Or => 1,
            Accumulation::Pbw | Accumulation::Pbhw => wdim,
            Accumulation::Fxp | Accumulation::Apc => 1,
        };
        let words = len.div_ceil(64);
        let (act_flat, act_off) = if self.reference_kernels {
            (Vec::new(), vec![0u32; act_tables.len()])
        } else {
            flatten_act_tables(&act_tables, words)?
        };
        // The per-lane gather offsets (`lane · 1`) are stored as u32.
        if u32::try_from(features).is_err() {
            return Err(GeoError::Internal(format!(
                "linear gather index space {features} exceeds u32"
            )));
        }
        let compact = CompactKernel::build(&wrefs, &wtables, outf, features, words, 1);
        drop(wtables);
        let stats = ResolveStats {
            resolve_ns: sw_resolve.elapsed_ns(),
            table_hits: hits - hits0,
            table_misses: misses - misses0,
            compacted_lanes: compact.lane.len() as u64,
            skipped_zero_lanes: (wrefs.len() - compact.lane.len()) as u64,
        };
        let scratch = ScratchPool::new(groups, words, compact.max_row_lanes(), features, 1);
        Ok((
            PreparedLinear {
                mode,
                len,
                words,
                groups,
                width,
                progressive: self.config.progressive,
                features,
                outf,
                act_tables,
                wrefs,
                act_flat,
                compact,
                pos_ao: act_off,
                scratch,
            },
            stats,
        ))
    }
}

/// Stream length planned for layer `i`, which the forward loop only asks
/// for at conv/linear layers — a `None` there is an engine bug.
fn planned_len(plan: &[Option<usize>], i: usize) -> Result<usize, GeoError> {
    plan.get(i).copied().flatten().ok_or_else(|| {
        GeoError::Internal(format!(
            "parametrized layer {i} missing from the stream plan"
        ))
    })
}

/// The pre-compaction compute kernels, preserved verbatim.
///
/// Two consumers keep this module alive: the compaction equivalence
/// proptests use it as the bit-identity oracle for the compacted kernels,
/// and `bench_forward` times it as the "before" side of the repo's perf
/// trajectory (`BENCH_forward.json`). It deliberately keeps every cost the
/// compacted path removed — per-pixel padding and zero-weight tests, the
/// fallible table lookup, per-chunk FC scheduling, and the per-MAC heap
/// allocations feeding [`geo_sc::apc::apc_count`].
mod reference {
    use super::*;

    /// Per-worker accumulator state of the pre-compaction engine; the APC
    /// buffers grow with each product stream, exactly as they used to.
    pub(super) struct RefScratch {
        acc_pos: Vec<u64>,
        acc_neg: Vec<u64>,
        fxp_pos: i64,
        fxp_neg: i64,
        apc_pos: Vec<Bitstream>,
        apc_neg: Vec<Bitstream>,
        /// MACs accumulated since the last telemetry flush; *not* cleared
        /// by the per-pixel [`RefScratch::reset`]. One accumulate call per
        /// surviving lane, the same MAC definition the compacted path
        /// counts — the two paths skip the identical lane set, so their
        /// totals are provably equal.
        macs: u64,
    }

    impl RefScratch {
        fn new(groups: usize, words: usize) -> Self {
            RefScratch {
                acc_pos: vec![0u64; groups * words],
                acc_neg: vec![0u64; groups * words],
                fxp_pos: 0,
                fxp_neg: 0,
                apc_pos: Vec::new(),
                apc_neg: Vec::new(),
                macs: 0,
            }
        }

        fn reset(&mut self) {
            self.acc_pos.fill(0);
            self.acc_neg.fill(0);
            self.fxp_pos = 0;
            self.fxp_neg = 0;
            self.apc_pos.clear();
            self.apc_neg.clear();
        }

        /// Converts the accumulated state into the output value.
        fn finish(&self, mode: Accumulation, len: usize) -> Result<f32, GeoError> {
            let signed = match mode {
                Accumulation::Or | Accumulation::Pbw | Accumulation::Pbhw => {
                    let pos: i64 = self.acc_pos.iter().map(|w| w.count_ones() as i64).sum();
                    let neg: i64 = self.acc_neg.iter().map(|w| w.count_ones() as i64).sum();
                    pos - neg
                }
                Accumulation::Fxp => self.fxp_pos - self.fxp_neg,
                Accumulation::Apc => {
                    // One approximate compressor layer, then exact counting
                    // — the single-level limit the paper describes for APCs.
                    let pos = geo_sc::apc::apc_count(&self.apc_pos, 1)? as i64;
                    let neg = geo_sc::apc::apc_count(&self.apc_neg, 1)? as i64;
                    pos - neg
                }
            };
            Ok(signed as f32 / len as f32)
        }
    }

    /// Folds one multiply-accumulate into the mode-specific accumulator
    /// state (pre-compaction form, including the per-MAC APC allocations).
    fn accumulate(
        mode: Accumulation,
        act_words: &[u64],
        wref: &WeightRef,
        words: usize,
        len: usize,
        scratch: &mut RefScratch,
    ) {
        if telemetry::enabled() {
            scratch.macs += 1;
        }
        let g = wref.group;
        match mode {
            Accumulation::Or | Accumulation::Pbw | Accumulation::Pbhw => {
                if words == 1 {
                    if wref.pos > 0 {
                        scratch.acc_pos[g] |= act_words[0] & wref.pos_words[0];
                    }
                    if wref.neg > 0 {
                        scratch.acc_neg[g] |= act_words[0] & wref.neg_words[0];
                    }
                    return;
                }
                if wref.pos > 0 {
                    for (j, &a) in act_words.iter().enumerate().take(words) {
                        scratch.acc_pos[g * words + j] |= a & wref.pos_words[j];
                    }
                }
                if wref.neg > 0 {
                    for (j, &a) in act_words.iter().enumerate().take(words) {
                        scratch.acc_neg[g * words + j] |= a & wref.neg_words[j];
                    }
                }
            }
            Accumulation::Fxp => {
                if wref.pos > 0 {
                    scratch.fxp_pos += (0..words)
                        .map(|j| (act_words[j] & wref.pos_words[j]).count_ones() as i64)
                        .sum::<i64>();
                }
                if wref.neg > 0 {
                    scratch.fxp_neg += (0..words)
                        .map(|j| (act_words[j] & wref.neg_words[j]).count_ones() as i64)
                        .sum::<i64>();
                }
            }
            Accumulation::Apc => {
                if wref.pos > 0 {
                    let product: Vec<u64> = (0..words)
                        .map(|j| act_words[j] & wref.pos_words[j])
                        .collect();
                    scratch.apc_pos.push(Bitstream::from_words(product, len));
                }
                if wref.neg > 0 {
                    let product: Vec<u64> = (0..words)
                        .map(|j| act_words[j] & wref.neg_words[j])
                        .collect();
                    scratch.apc_neg.push(Bitstream::from_words(product, len));
                }
            }
        }
    }

    impl PreparedConv {
        /// Pre-compaction phase 2: the per-pixel `cin·k·k` loop with
        /// padding, zero-activation, and zero-weight tests inline.
        pub(super) fn compute_reference(
            &self,
            batch: &ActBatch,
            tel: &LayerCounters,
        ) -> Result<Tensor, GeoError> {
            let mut out = Tensor::zeros(&[batch.n, self.cout, self.oh, self.ow]);
            let first_err: Mutex<Option<GeoError>> = Mutex::new(None);
            out.data_mut()
                .par_chunks_mut(self.ow.max(1))
                .enumerate()
                .for_each_init(
                    || RefScratch::new(self.groups, self.words),
                    |scratch, (row, chunk)| {
                        if let Err(err) =
                            self.compute_row_reference(row, chunk, &batch.levels, scratch)
                        {
                            record_error(&first_err, err);
                        }
                        if telemetry::enabled() {
                            tel.macs.add(scratch.macs);
                            scratch.macs = 0;
                        }
                    },
                );
            if let Some(err) = first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
                return Err(err);
            }
            Ok(out)
        }

        fn compute_row_reference(
            &self,
            row: usize,
            chunk: &mut [f32],
            levels: &[u32],
            scratch: &mut RefScratch,
        ) -> Result<(), GeoError> {
            let oy = row % self.oh;
            let bc = row / self.oh;
            let co = bc % self.cout;
            let b = bc / self.cout;
            let idx_in =
                |c: usize, y: usize, x: usize| ((b * self.cin + c) * self.h + y) * self.w + x;
            for (ox, out_v) in chunk.iter_mut().enumerate() {
                scratch.reset();
                let mut lane = 0usize;
                for ci in 0..self.cin {
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            let cur = lane;
                            lane += 1;
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if iy < 0 || iy >= self.h as isize || ix < 0 || ix >= self.w as isize {
                                continue;
                            }
                            let alevel = levels[idx_in(ci, iy as usize, ix as usize)];
                            if alevel == 0 {
                                continue;
                            }
                            let wref = &self.wrefs[co * self.volume + cur];
                            if wref.is_zero() {
                                continue;
                            }
                            let astream = self.act_tables[cur].stream(alevel)?;
                            accumulate(
                                self.mode,
                                astream.as_words(),
                                wref,
                                self.words,
                                self.len,
                                scratch,
                            );
                        }
                    }
                }
                *out_v = scratch.finish(self.mode, self.len)?;
            }
            Ok(())
        }
    }

    impl PreparedLinear {
        /// Pre-compaction phase 2: each output neuron scheduled as its
        /// own single-element chunk (`par_chunks_mut(1)`).
        pub(super) fn compute_reference(
            &self,
            batch: &ActBatch,
            tel: &LayerCounters,
        ) -> Result<Tensor, GeoError> {
            let mut out = Tensor::zeros(&[batch.n, self.outf]);
            let first_err: Mutex<Option<GeoError>> = Mutex::new(None);
            out.data_mut().par_chunks_mut(1).enumerate().for_each_init(
                || RefScratch::new(self.groups, self.words),
                |scratch, (row, chunk)| {
                    if let Err(err) =
                        self.compute_neuron_reference(row, chunk, &batch.levels, scratch)
                    {
                        record_error(&first_err, err);
                    }
                    if telemetry::enabled() {
                        tel.macs.add(scratch.macs);
                        scratch.macs = 0;
                    }
                },
            );
            if let Some(err) = first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
                return Err(err);
            }
            Ok(out)
        }

        fn compute_neuron_reference(
            &self,
            row: usize,
            chunk: &mut [f32],
            levels: &[u32],
            scratch: &mut RefScratch,
        ) -> Result<(), GeoError> {
            let o = row % self.outf;
            let b = row / self.outf;
            scratch.reset();
            for i in 0..self.features {
                let alevel = levels[b * self.features + i];
                if alevel == 0 {
                    continue;
                }
                let wref = &self.wrefs[o * self.features + i];
                if wref.is_zero() {
                    continue;
                }
                let astream = self.act_tables[i].stream(alevel)?;
                accumulate(
                    self.mode,
                    astream.as_words(),
                    wref,
                    self.words,
                    self.len,
                    scratch,
                );
            }
            chunk[0] = scratch.finish(self.mode, self.len)?;
            Ok(())
        }
    }
}

/// Plain counters produced by the serial prepare phase. Returned by value
/// (rather than written into `self.telemetry` in place) so the caller can
/// fold them into whichever telemetry block owns the layer: the engine's
/// for direct forwards, a [`PreparedModel`]'s for prepare-once serving.
#[derive(Default)]
struct ResolveStats {
    resolve_ns: u64,
    table_hits: u64,
    table_misses: u64,
    compacted_lanes: u64,
    skipped_zero_lanes: u64,
}

impl ResolveStats {
    fn apply(&self, tel: &LayerCounters) {
        if !telemetry::enabled() {
            return;
        }
        tel.add_phase_ns(Phase::Resolve, self.resolve_ns);
        tel.table_hits.add(self.table_hits);
        tel.table_misses.add(self.table_misses);
        tel.compacted_lanes.add(self.compacted_lanes);
        tel.skipped_zero_lanes.add(self.skipped_zero_lanes);
    }
}

/// Attributes faults injected since the `before` snapshot to
/// `param_layer`, into caller-supplied reports (the prepare loop
/// accumulates locally and absorbs into the engine afterwards).
fn record_prepare_faults(
    cache: &TableCache,
    param_layer: u32,
    before: FaultCounters,
    telemetry_block: &mut EngineTelemetry,
    resilience: &mut ResilienceReport,
) {
    if cache.fault_model().is_none() {
        return;
    }
    let delta = cache.fault_counters().delta_since(&before);
    if telemetry::enabled() {
        telemetry_block
            .layer(param_layer as usize)
            .fault_events
            .add(delta.total());
    }
    resilience.record(param_layer, delta);
}

/// Inference-time batch normalization, prepared once: the folded
/// per-channel affine quantized to `bits` (GEO's near-memory 8-bit BN),
/// or exact when `bits` is `None`.
struct BnAffine {
    scales: Vec<f32>,
    shifts: Vec<f32>,
}

impl BnAffine {
    fn prepare(bn: &geo_nn::BatchNorm2d, bits: Option<u8>) -> Result<BnAffine, GeoError> {
        let affine = bn.folded_affine();
        let (scales, shifts): (Vec<f32>, Vec<f32>) = affine.into_iter().unzip();
        let (scales, shifts) = match bits {
            Some(b) => {
                let st = geo_nn::quant::fake_quantize(
                    &Tensor::from_vec(vec![scales.len()], scales).map_err(GeoError::Nn)?,
                    b,
                );
                let sh = geo_nn::quant::fake_quantize(
                    &Tensor::from_vec(vec![shifts.len()], shifts).map_err(GeoError::Nn)?,
                    b,
                );
                (st.into_data(), sh.into_data())
            }
            None => (scales, shifts),
        };
        Ok(BnAffine { scales, shifts })
    }

    fn apply(&self, x: &Tensor) -> Result<Tensor, GeoError> {
        let s = x.shape();
        if s.len() != 4 || s[1] != self.scales.len() {
            return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                expected: format!("(N, {}, H, W)", self.scales.len()),
                actual: s.to_vec(),
            }));
        }
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let mut out = Tensor::zeros(s);
        for b in 0..n {
            for ci in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        out.set4(
                            b,
                            ci,
                            y,
                            xx,
                            self.scales[ci] * x.at4(b, ci, y, xx) + self.shifts[ci],
                        );
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Shape contract shared by both 2×2 pools — `geo_nn::pool2x2_shape`
/// with the error lifted into [`GeoError`], so the prepared path raises
/// exactly `geo_nn::AvgPool2d::forward`'s error.
fn pool_shape(s: &[usize]) -> Result<(usize, usize, usize, usize), GeoError> {
    geo_nn::pool2x2_shape(s).map_err(GeoError::Nn)
}

/// 2×2 average pool: the single shared `geo_nn::avg_pool2x2` kernel (the
/// fused conv→pool path's oracle), borrowing the input immutably — the
/// prepared path cannot run `&mut` layer forwards.
fn avg_pool_eval(x: &Tensor) -> Result<Tensor, GeoError> {
    geo_nn::avg_pool2x2(x).map_err(GeoError::Nn)
}

/// 2×2 max pool: the shared `geo_nn::max_pool2x2` kernel.
fn max_pool_eval(x: &Tensor) -> Result<Tensor, GeoError> {
    geo_nn::max_pool2x2(x).map_err(GeoError::Nn)
}

/// Flatten to `(N, rest)`, replicating `geo_nn::Flatten::forward`.
fn flatten_eval(x: &Tensor) -> Result<Tensor, GeoError> {
    let s = x.shape();
    if s.len() < 2 {
        return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
            expected: "at least 2-d".into(),
            actual: s.to_vec(),
        }));
    }
    let n = s[0];
    let rest: usize = s[1..].iter().product();
    x.clone().reshape(vec![n, rest]).map_err(GeoError::Nn)
}

/// Scans a fusible `[BatchNorm2d] → [ReLU] → AvgPool2d` run starting at
/// `layers[from]` (each prefix step optional, the average pool required):
/// returns the optional batch-norm layer, the ReLU flag, and the index
/// one past the consumed pool. `None` when the run does not end in an
/// adjacent average pool — max pools and non-adjacent pools stay unfused.
fn fusible_pool_run(
    layers: &[Layer],
    from: usize,
) -> Option<(Option<&geo_nn::BatchNorm2d>, bool, usize)> {
    let mut j = from;
    let mut bn = None;
    if let Some(Layer::BatchNorm2d(b)) = layers.get(j) {
        bn = Some(b);
        j += 1;
    }
    let mut relu = false;
    if let Some(Layer::Relu(_)) = layers.get(j) {
        relu = true;
        j += 1;
    }
    match layers.get(j) {
        Some(Layer::AvgPool2d(_)) => Some((bn, relu, j + 1)),
        _ => None,
    }
}

/// Prepare-time level-chaining pass (DESIGN.md §16): for each SC producer
/// whose downstream steps up to the next SC consumer are all
/// level-transparent — ReLU, because `act_level(clamp(v)) ==
/// act_level(v)`; Flatten, because levels carry their logical shape —
/// switch its [`Emit`] to the consumer's quantized levels, keeping
/// activations resident in the integer domain across the chain.
fn assign_level_chaining(steps: &mut [PreparedStep]) {
    for idx in 0..steps.len() {
        let mut j = idx + 1;
        let target = loop {
            match steps.get(j) {
                Some(PreparedStep::Relu | PreparedStep::Flatten { .. }) => j += 1,
                Some(PreparedStep::Conv { layer, .. } | PreparedStep::ConvPooled { layer, .. }) => {
                    break Some(Emit::Levels {
                        progressive: layer.progressive,
                        width: layer.width,
                    })
                }
                Some(PreparedStep::Linear { layer, .. }) => {
                    break Some(Emit::Levels {
                        progressive: layer.progressive,
                        width: layer.width,
                    })
                }
                _ => break None,
            }
        };
        let Some(levels) = target else { continue };
        match &mut steps[idx] {
            PreparedStep::Conv { emit, .. }
            | PreparedStep::ConvPooled { emit, .. }
            | PreparedStep::Linear { emit, .. } => *emit = levels,
            _ => {}
        }
    }
}

/// One step of a compiled network: either a prepared parametrized layer
/// or a pure near-memory evaluation. Exhaustive over every
/// `geo_nn::Layer` variant, so adding a layer kind fails compilation here
/// rather than silently falling through.
enum PreparedStep {
    Conv {
        layer: PreparedConv,
        param_layer: u32,
        emit: Emit,
    },
    /// A `Conv → [BatchNorm] → [ReLU] → AvgPool2d` chain fused at prepare
    /// time (§III-A computation skipping): the mode kernels produce
    /// full-resolution counts per worker, the absorbed near-memory steps
    /// run per pixel, and each 2×2 window converts once. Absorbed steps
    /// need no `tel_layer` — they attributed to this conv's `param_layer`
    /// unfused too.
    ConvPooled {
        layer: PreparedConv,
        param_layer: u32,
        /// Absorbed batch-norm affine, applied per full-res pixel.
        bn: Option<BnAffine>,
        /// Absorbed ReLU clamp, applied per full-res pixel.
        relu: bool,
        emit: Emit,
    },
    Linear {
        layer: PreparedLinear,
        param_layer: u32,
        emit: Emit,
    },
    BatchNorm {
        affine: BnAffine,
        /// Telemetry layer this near-memory step's time is attributed to.
        tel_layer: usize,
    },
    Relu,
    AvgPool {
        tel_layer: usize,
    },
    MaxPool {
        tel_layer: usize,
    },
    Flatten {
        tel_layer: usize,
    },
}

/// A network compiled once for serving: every input-independent resolve
/// product of every layer, immutable and `Arc`-shareable across threads
/// and requests.
///
/// Built by [`ScEngine::prepare`] (or
/// [`crate::ProgramExecutor::prepare`] for ISA-programmed lengths).
/// [`PreparedModel::forward`] borrows `&self`, so any number of requests
/// may run concurrently; telemetry counters are atomics folded in place
/// ([`crate::telemetry`]), keeping totals exact under concurrency.
///
/// Outputs are bit-identical to [`ScEngine::forward`] on the same engine
/// state: prepare performs the exact table/fault draws of a direct
/// forward, in the same order, and the compute phase never touches shared
/// mutable state. One caveat follows from compiling *once*: TRNG tables
/// and transient fault draws are frozen at prepare time, so every served
/// request sees the one pass drawn here, where repeated direct forwards
/// would redraw per call.
///
/// # Examples
///
/// ```
/// use geo_core::{GeoConfig, ScEngine};
/// use geo_nn::{models, Tensor};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), geo_core::GeoError> {
/// let mut engine = ScEngine::new(GeoConfig::geo(32, 64))?;
/// let mut model = models::lenet5(1, 8, 10, 0);
/// model.set_training(false);
/// let prepared = Arc::new(engine.prepare(&model, &[1, 1, 8, 8])?);
/// let logits = prepared.forward(&Tensor::full(&[1, 1, 8, 8], 0.5))?;
/// assert_eq!(logits.shape(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
pub struct PreparedModel {
    config: GeoConfig,
    input_shape: Vec<usize>,
    steps: Vec<PreparedStep>,
    telemetry: EngineTelemetry,
    resilience: ResilienceReport,
    /// Run the pre-compaction reference kernels (set when prepared by a
    /// [`ScEngine::forward_reference`] pass).
    reference: bool,
}

impl PreparedModel {
    /// The configuration the model was prepared under.
    pub fn config(&self) -> &GeoConfig {
        &self.config
    }

    /// The input shape the model was prepared for. The batch dimension
    /// (`shape[0]`) is free: requests of any `N` with matching trailing
    /// dimensions are accepted.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Fault counts drawn during the prepare pass (frozen thereafter).
    pub fn resilience_report(&self) -> &ResilienceReport {
        &self.resilience
    }

    /// Snapshot of the telemetry accumulated by the prepare pass and
    /// every forward served since. All-zero unless the crate is built
    /// with the `telemetry` feature.
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.telemetry.report("prepared-model")
    }

    /// Number of `Conv → [BatchNorm] → [ReLU] → AvgPool2d` chains the
    /// prepare pass collapsed into fused steps (§III-A pooled-conversion
    /// skipping, DESIGN.md §16). Zero when fusion is disabled or no
    /// avg-pool sits directly behind a conv block — max pools never
    /// fuse. Lets callers assert fusion actually engaged on a workload
    /// instead of inferring it from timing.
    pub fn fused_conv_pool_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PreparedStep::ConvPooled { .. }))
            .count()
    }

    /// Runs one request through the compiled network — pure compute
    /// against immutable prepared state, callable concurrently from any
    /// number of threads (`&self`).
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches (including a spatial-geometry check
    /// against the prepared shape) and substrate errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, GeoError> {
        self.telemetry.passes.incr();
        let mut flow = Flow::Float(input.clone());
        for step in &self.steps {
            match step {
                PreparedStep::Conv {
                    layer,
                    param_layer,
                    emit,
                } => {
                    let tel = self.telemetry.layer_shared(*param_layer as usize);
                    let sw = Stopwatch::start();
                    let batch = layer.accept(flow)?;
                    if telemetry::enabled() {
                        tel.add_phase_ns(Phase::Convert, sw.elapsed_ns());
                    }
                    let sw = Stopwatch::start();
                    flow = if self.reference {
                        // Reference models never level-chain (the chaining
                        // pass is gated off), so `emit` is always `Float`.
                        debug_assert_eq!(*emit, Emit::Float);
                        Flow::Float(layer.compute_reference(&batch, tel)?)
                    } else {
                        match *emit {
                            Emit::Float => Flow::Float(layer.compute(&batch, tel)),
                            Emit::Levels { progressive, width } => {
                                Flow::Levels(layer.compute_levels(&batch, tel, progressive, width))
                            }
                        }
                    };
                    if telemetry::enabled() {
                        tel.add_phase_ns(Phase::Compute, sw.elapsed_ns());
                    }
                }
                PreparedStep::ConvPooled {
                    layer,
                    param_layer,
                    bn,
                    relu,
                    emit,
                } => {
                    // Fusion is gated off for reference prepares
                    // (`ScEngine::forward_reference`), so the oracle always
                    // takes the unfused `Conv` + near-memory steps.
                    debug_assert!(!self.reference, "reference models never fuse");
                    let tel = self.telemetry.layer_shared(*param_layer as usize);
                    let sw = Stopwatch::start();
                    let batch = layer.accept(flow)?;
                    if telemetry::enabled() {
                        tel.add_phase_ns(Phase::Convert, sw.elapsed_ns());
                    }
                    let sw = Stopwatch::start();
                    let (poh, pow2) = (layer.oh / 2, layer.ow / 2);
                    let tmp = layer.compute_pooled(&batch, bn.as_ref(), *relu, tel);
                    if telemetry::enabled() {
                        // §III-A skipped conversions, counted serially (one
                        // add per pass) so the total is thread-invariant:
                        // every full-res pixel beyond the pooled outputs.
                        let skipped = batch.n * layer.cout * (layer.oh * layer.ow - poh * pow2);
                        tel.conversions_skipped.add(skipped as u64);
                    }
                    flow = match *emit {
                        Emit::Float => Flow::Float(layer.transpose_stage(&tmp, batch.n, poh, pow2)),
                        Emit::Levels { progressive, width } => {
                            Flow::Levels(layer.transpose_stage_levels(
                                &tmp,
                                batch.n,
                                poh,
                                pow2,
                                progressive,
                                width,
                            ))
                        }
                    };
                    if telemetry::enabled() {
                        tel.add_phase_ns(Phase::Compute, sw.elapsed_ns());
                    }
                }
                PreparedStep::Linear {
                    layer,
                    param_layer,
                    emit,
                } => {
                    let tel = self.telemetry.layer_shared(*param_layer as usize);
                    let sw = Stopwatch::start();
                    let batch = layer.accept(flow)?;
                    if telemetry::enabled() {
                        tel.add_phase_ns(Phase::Convert, sw.elapsed_ns());
                    }
                    let sw = Stopwatch::start();
                    flow = if self.reference {
                        debug_assert_eq!(*emit, Emit::Float);
                        Flow::Float(layer.compute_reference(&batch, tel)?)
                    } else {
                        match *emit {
                            Emit::Float => Flow::Float(layer.compute(&batch, tel)),
                            Emit::Levels { progressive, width } => {
                                Flow::Levels(layer.compute_levels(&batch, tel, progressive, width))
                            }
                        }
                    };
                    if telemetry::enabled() {
                        tel.add_phase_ns(Phase::Compute, sw.elapsed_ns());
                    }
                }
                PreparedStep::BatchNorm { affine, tel_layer } => {
                    let sw = Stopwatch::start();
                    flow = Flow::Float(affine.apply(&flow.into_float("batch norm")?)?);
                    self.flush_near_mem(*tel_layer, sw);
                }
                PreparedStep::Relu => {
                    // ReLU, then saturate at 1.0: unipolar streams cannot
                    // carry more (the straight-through clamp SC training
                    // learns around). On a chained level flow this is a
                    // no-op: `act_level` already clamps to [0, 1], so
                    // `act_level(clamp(v)) == act_level(v)`.
                    if let Flow::Float(x) = flow {
                        flow = Flow::Float(x.map(|v| v.clamp(0.0, 1.0)));
                    }
                }
                PreparedStep::AvgPool { tel_layer } => {
                    let sw = Stopwatch::start();
                    flow = Flow::Float(avg_pool_eval(&flow.into_float("average pool")?)?);
                    self.flush_near_mem(*tel_layer, sw);
                }
                PreparedStep::MaxPool { tel_layer } => {
                    let sw = Stopwatch::start();
                    flow = Flow::Float(max_pool_eval(&flow.into_float("max pool")?)?);
                    self.flush_near_mem(*tel_layer, sw);
                }
                PreparedStep::Flatten { tel_layer } => {
                    let sw = Stopwatch::start();
                    flow = match flow {
                        Flow::Float(x) => Flow::Float(flatten_eval(&x)?),
                        // Levels carry their logical shape: flattening is
                        // a metadata reshape, no data pass at all.
                        Flow::Levels(mut lt) => {
                            if lt.shape.len() < 2 {
                                return Err(GeoError::Nn(geo_nn::NnError::ShapeMismatch {
                                    expected: "at least 2-d".into(),
                                    actual: lt.shape.clone(),
                                }));
                            }
                            let rest: usize = lt.shape[1..].iter().product();
                            lt.shape = vec![lt.shape[0], rest];
                            Flow::Levels(lt)
                        }
                    };
                    self.flush_near_mem(*tel_layer, sw);
                }
            }
        }
        // The chaining pass only assigns `Levels` when a downstream SC
        // consumer exists, so the network output is always a float tensor.
        flow.into_float("network output")
    }

    fn flush_near_mem(&self, tel_layer: usize, sw: Stopwatch) {
        if telemetry::enabled() {
            self.telemetry
                .layer_shared(tel_layer)
                .add_phase_ns(Phase::NearMem, sw.elapsed_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_nn::models;
    use geo_sc::{RngKind, SharingLevel};

    fn engine(cfg: GeoConfig) -> ScEngine {
        ScEngine::new(cfg).unwrap()
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = GeoConfig::geo(32, 64);
        cfg.stream_len = 99;
        assert!(ScEngine::new(cfg).is_err());
    }

    #[test]
    fn stream_plan_assigns_sp_s_and_output_lengths() {
        let eng = engine(GeoConfig::geo(32, 64));
        let model = models::cnn4(3, 8, 10, 0);
        let plan = eng.stream_plan(&model);
        let lens: Vec<usize> = plan.iter().flatten().copied().collect();
        // conv1 (pooled) = 32, conv2 (pooled) = 32, conv3 = 64, fc = 128.
        assert_eq!(lens, vec![32, 32, 64, 128]);
    }

    #[test]
    fn forward_produces_logits_of_right_shape() {
        let mut eng = engine(GeoConfig::geo(32, 64));
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let y = eng.forward(&mut model, &x, false).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lfsr_inference_is_deterministic_trng_is_not() {
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.6);
        let mut eng = engine(GeoConfig::geo(32, 64));
        let a = eng.forward(&mut model, &x, false).unwrap();
        let b = eng.forward(&mut model, &x, false).unwrap();
        assert_eq!(a.data(), b.data(), "LFSR streams are repeatable");

        let mut eng = engine(GeoConfig::geo(32, 64).with_rng(RngKind::Trng));
        let a = eng.forward(&mut model, &x, false).unwrap();
        let b = eng.forward(&mut model, &x, false).unwrap();
        assert_ne!(a.data(), b.data(), "TRNG streams differ every pass");
    }

    #[test]
    fn fxp_accumulation_tracks_float_convolution() {
        // With exact fixed-point accumulation and long streams, the SC conv
        // should approximate the float conv closely.
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = geo_nn::Conv2d::new(2, 3, 3, 1, 1, false, &mut rng);
        let x = Tensor::kaiming(&[1, 2, 6, 6], 4, &mut rng).map(|v| v.abs().min(1.0));
        let float_out = conv.forward(&x).unwrap();
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let cfg = GeoConfig {
            accumulation: Accumulation::Fxp,
            progressive: false,
            output_stream_len: 256,
            ..GeoConfig::geo(256, 256)
        };
        let mut eng = engine(cfg);
        let sc_out = eng.forward(&mut model, &x, false).unwrap();
        let mut max_err = 0.0f32;
        for (a, b) in sc_out.data().iter().zip(float_out.data()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err < 0.25, "max error {max_err}");
    }

    #[test]
    fn or_accumulation_compresses_relative_to_fxp() {
        // OR loses overlapping ones, so its outputs are biased toward zero
        // relative to exact accumulation on an all-positive layer.
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = geo_nn::Conv2d::new(3, 2, 3, 1, 0, false, &mut rng);
        for v in conv.weight.value.data_mut() {
            *v = v.abs().max(0.2); // all positive
        }
        let x = Tensor::full(&[1, 3, 5, 5], 0.5);
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let base = GeoConfig::geo(128, 128).with_progressive(false);
        let mut eng_or = engine(base.with_accumulation(Accumulation::Or));
        let mut eng_fxp = engine(base.with_accumulation(Accumulation::Fxp));
        let or_out = eng_or.forward(&mut model, &x, false).unwrap();
        let fxp_out = eng_fxp.forward(&mut model, &x, false).unwrap();
        let or_mean: f32 = or_out.data().iter().sum::<f32>() / or_out.len() as f32;
        let fxp_mean: f32 = fxp_out.data().iter().sum::<f32>() / fxp_out.len() as f32;
        assert!(
            or_mean < fxp_mean * 0.8,
            "OR should compress: or {or_mean}, fxp {fxp_mean}"
        );
        // And OR outputs are bounded by the stream value range.
        assert!(or_out.data().iter().all(|&v| v <= 1.0 + 1e-6));
    }

    #[test]
    fn pbw_sits_between_or_and_fxp() {
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = geo_nn::Conv2d::new(2, 2, 3, 1, 0, false, &mut rng);
        for v in conv.weight.value.data_mut() {
            *v = v.abs().max(0.15);
        }
        let x = Tensor::full(&[1, 2, 5, 5], 0.6);
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let base = GeoConfig::geo(128, 128).with_progressive(false);
        let mean = |mode: Accumulation, model: &mut Sequential| {
            let mut eng = engine(base.with_accumulation(mode));
            let out = eng.forward(model, &x, false).unwrap();
            out.data().iter().sum::<f32>() / out.len() as f32
        };
        let or_m = mean(Accumulation::Or, &mut model);
        let pbw_m = mean(Accumulation::Pbw, &mut model);
        let pbhw_m = mean(Accumulation::Pbhw, &mut model);
        let fxp_m = mean(Accumulation::Fxp, &mut model);
        assert!(or_m <= pbw_m + 1e-6, "or {or_m} ≤ pbw {pbw_m}");
        assert!(pbw_m <= pbhw_m + 1e-6, "pbw {pbw_m} ≤ pbhw {pbhw_m}");
        assert!(pbhw_m <= fxp_m + 1e-6, "pbhw {pbhw_m} ≤ fxp {fxp_m}");
    }

    #[test]
    fn apc_overcounts_relative_to_fxp() {
        use geo_nn::Layer;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = geo_nn::Conv2d::new(2, 1, 3, 1, 0, false, &mut rng);
        for v in conv.weight.value.data_mut() {
            *v = v.abs().max(0.3);
        }
        let x = Tensor::full(&[1, 2, 4, 4], 0.7);
        let mut model = Sequential::new(vec![Layer::Conv2d(conv)]);
        let base = GeoConfig::geo(128, 128).with_progressive(false);
        let mut eng_apc = engine(base.with_accumulation(Accumulation::Apc));
        let mut eng_fxp = engine(base.with_accumulation(Accumulation::Fxp));
        let apc_out = eng_apc.forward(&mut model, &x, false).unwrap();
        let fxp_out = eng_fxp.forward(&mut model, &x, false).unwrap();
        for (a, f) in apc_out.data().iter().zip(fxp_out.data()) {
            assert!(*a >= *f - 1e-6, "APC never undercounts: {a} vs {f}");
        }
    }

    #[test]
    fn progressive_mode_changes_little() {
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut eng_n = engine(GeoConfig::geo(64, 64).with_progressive(false));
        let mut eng_p = engine(GeoConfig::geo(64, 64).with_progressive(true));
        let yn = eng_n.forward(&mut model, &x, false).unwrap();
        let yp = eng_p.forward(&mut model, &x, false).unwrap();
        let mut diff = 0.0f32;
        for (a, b) in yn.data().iter().zip(yp.data()) {
            diff = diff.max((a - b).abs());
        }
        assert!(diff < 1.2, "progressive deviation {diff} stays bounded");
    }

    #[test]
    fn extreme_sharing_correlates_outputs() {
        // Under extreme sharing, kernels see heavily correlated streams;
        // the forward pass still runs and stays finite.
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut eng = engine(GeoConfig::geo(32, 64).with_sharing(SharingLevel::Extreme));
        let y = eng.forward(&mut model, &x, false).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_mode_caches_for_backward() {
        let mut eng = engine(GeoConfig::geo(32, 64));
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let y = eng.forward(&mut model, &x, true).unwrap();
        // Backward must succeed because float layers cached their inputs.
        let grad = Tensor::full(y.shape(), 1.0);
        model.backward(&grad).unwrap();
        let grads_nonzero = model.params_mut().iter().any(|p| p.grad.max_abs() > 0.0);
        assert!(grads_nonzero);
    }

    #[test]
    fn gather_offsets_address_the_hoisted_row_buffer() {
        // A compacted lane's `aoff` must point at its kernel position's
        // run in the shared per-(b, oy) gather buffer — `lane · ow` for
        // conv, `lane` for linear — and the position metadata must invert
        // the lane index exactly.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let conv = geo_nn::Conv2d::new(2, 3, 3, 1, 1, false, &mut rng);
        let x = Tensor::full(&[1, 2, 5, 5], 0.5);
        let mut eng = engine(GeoConfig::geo(32, 32));
        let rc = eng.resolve_conv(&conv, &x, 32, 0).unwrap();
        let k = conv.kernel();
        for (p, &lane) in rc.compact.lane.iter().enumerate() {
            assert_eq!(rc.compact.aoff[p] as usize, lane * rc.ow);
        }
        for lane in 0..rc.volume {
            assert_eq!(rc.pos_ci[lane] as usize, lane / (k * k));
            assert_eq!(rc.pos_ky[lane] as usize, (lane % (k * k)) / k);
            assert_eq!(rc.pos_kx[lane] as usize, lane % k);
        }
        let lin = geo_nn::Linear::new(12, 4, &mut rng);
        let xl = Tensor::full(&[2, 12], 0.5);
        let rl = eng.resolve_linear(&lin, &xl, 32, 0).unwrap();
        assert_eq!(rl.pos_ao.len(), rl.features);
        for (p, &lane) in rl.compact.lane.iter().enumerate() {
            assert_eq!(rl.compact.aoff[p] as usize, lane);
        }
    }

    #[test]
    fn apc_gather_preserves_push_order() {
        // The branchless APC product gather must feed `apc_reduce` the
        // products in resolve order with zero-activation and absent-half
        // lanes excluded — the pairing contract `apc_reduce`'s own tests
        // pin on the geo-sc side. Exercised here end to end through a
        // model whose weights include exact zeros.
        let mut model = models::lenet5(1, 8, 10, 3);
        let x = Tensor::full(&[1, 1, 8, 8], 0.43);
        let cfg = GeoConfig::geo(32, 32).with_accumulation(Accumulation::Apc);
        let a = engine(cfg).forward(&mut model, &x, false).unwrap();
        let b = engine(cfg)
            .forward_reference(&mut model, &x, false)
            .unwrap();
        assert_eq!(
            a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn compacted_forward_matches_reference_for_every_mode() {
        // Smoke-level pin of the compaction contract (the proptests in
        // tests/compaction_equivalence.rs sweep the full space).
        let mut model = models::lenet5(1, 8, 10, 3);
        let x = Tensor::full(&[2, 1, 8, 8], 0.37);
        for mode in Accumulation::ALL {
            for progressive in [false, true] {
                let cfg = GeoConfig::geo(32, 32)
                    .with_accumulation(mode)
                    .with_progressive(progressive);
                let a = engine(cfg).forward(&mut model, &x, false).unwrap();
                let b = engine(cfg)
                    .forward_reference(&mut model, &x, false)
                    .unwrap();
                assert_eq!(
                    a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{mode:?} progressive={progressive}"
                );
            }
        }
    }

    #[test]
    fn compact_kernel_drops_only_zero_lanes() {
        // Every nonzero WeightRef appears in the compacted list, in
        // resolve order, and every zero lane is gone.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let conv = geo_nn::Conv2d::new(2, 3, 3, 1, 1, false, &mut rng);
        let x = Tensor::full(&[1, 2, 5, 5], 0.5);
        let mut eng = engine(GeoConfig::geo(32, 32));
        // Reference resolve keeps per-lane word copies in the WeightRefs,
        // giving this test an independent source of truth for the packed
        // position-major layout.
        eng.reference_kernels = true;
        let resolved = eng.resolve_conv(&conv, &x, 32, 0).unwrap();
        let ck = &resolved.compact;
        let words = resolved.words;
        let nonzero: usize = resolved.wrefs.iter().filter(|w| !w.is_zero()).count();
        assert_eq!(ck.lane.len(), nonzero);
        assert_eq!(ck.offsets.len(), conv.cout() + 1);
        for co in 0..conv.cout() {
            let range = ck.row_range(co);
            let n = range.len();
            // Lane indices strictly ascend within a row (resolve order).
            for pair in ck.lane[range.clone()].windows(2) {
                assert!(pair[0] < pair[1]);
            }
            let (wp, wn) = (ck.row_pos(co), ck.row_neg(co));
            for (i, p) in range.clone().enumerate() {
                let wref = &resolved.wrefs[co * resolved.volume + ck.lane[p]];
                assert!(!wref.is_zero());
                assert_eq!(ck.flags[p] & 1 != 0, wref.pos > 0);
                assert_eq!(ck.flags[p] & 2 != 0, wref.neg > 0);
                // Words are position-major: word j of every lane in the
                // row is contiguous, absent halves stored as zeros.
                for j in 0..words {
                    let want_pos = if wref.pos > 0 { wref.pos_words[j] } else { 0 };
                    let want_neg = if wref.neg > 0 { wref.neg_words[j] } else { 0 };
                    assert_eq!(wp[j * n + i], want_pos, "co={co} lane {i} word {j}");
                    assert_eq!(wn[j * n + i], want_neg, "co={co} lane {i} word {j}");
                }
            }
        }
    }

    #[test]
    fn telemetry_counts_match_between_compacted_and_reference() {
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut compacted = engine(GeoConfig::geo(32, 32));
        let mut reference = engine(GeoConfig::geo(32, 32));
        compacted.forward(&mut model, &x, false).unwrap();
        reference.forward_reference(&mut model, &x, false).unwrap();
        let rc = compacted.telemetry_report();
        let rr = reference.telemetry_report();
        if crate::telemetry::enabled() {
            assert_eq!(rc.passes, 1);
            assert!(rc.total().macs > 0);
            assert_eq!(rc.total().macs, rr.total().macs);
            assert_eq!(rc.total().compacted_lanes, rr.total().compacted_lanes);
            assert_eq!(
                rc.layers.iter().map(|l| l.macs).collect::<Vec<_>>(),
                rr.layers.iter().map(|l| l.macs).collect::<Vec<_>>()
            );
        } else {
            assert_eq!(rc.total(), crate::telemetry::LayerTelemetry::default());
        }
        compacted.reset_telemetry();
        assert!(compacted.telemetry_report().layers.is_empty());
    }

    #[test]
    fn eval_mode_skips_float_caching() {
        let mut eng = engine(GeoConfig::geo(32, 64));
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[1, 1, 8, 8], 0.4);
        let _ = eng.forward(&mut model, &x, false).unwrap();
        // No cached inputs → backward fails.
        assert!(model.backward(&Tensor::full(&[1, 10], 1.0)).is_err());
    }

    #[test]
    fn prepared_model_matches_forward_and_shares_across_threads() {
        let mut model = models::lenet5(1, 8, 10, 0);
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let direct = engine(GeoConfig::geo(32, 64))
            .forward(&mut model, &x, false)
            .unwrap();
        model.set_training(false);
        let prepared = std::sync::Arc::new(
            engine(GeoConfig::geo(32, 64))
                .prepare(&model, x.shape())
                .unwrap(),
        );
        assert_eq!(prepared.input_shape(), x.shape());
        let served = prepared.forward(&x).unwrap();
        assert_eq!(
            direct
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            served
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        // Same prepared state, second request from another thread — the
        // Arc-shared serve pattern — stays bit-identical too.
        let (p2, x2) = (prepared.clone(), x.clone());
        let threaded = std::thread::spawn(move || p2.forward(&x2).unwrap())
            .join()
            .unwrap();
        assert_eq!(
            served
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            threaded
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        if crate::telemetry::enabled() {
            assert_eq!(prepared.telemetry_report().passes, 2);
        }
        // A batch with the wrong spatial geometry is rejected up front.
        assert!(prepared.forward(&Tensor::full(&[1, 1, 6, 6], 0.4)).is_err());
    }
}
