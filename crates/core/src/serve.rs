//! Batched request serving against a shared [`PreparedModel`].
//!
//! The serve loop is the "serve-many" half of the compile-once,
//! serve-many lifecycle (DESIGN.md §15): [`ScEngine::prepare`] is run
//! once per model × config × fault-model to produce an immutable
//! [`PreparedModel`], and an [`ScServer`] then multiplexes concurrent
//! inference requests against it from a single dispatcher thread.
//!
//! The dispatcher applies *adaptive batching*: it blocks until at least
//! one request is queued, then drains whatever else is already waiting —
//! up to [`ServeConfig::max_batch`] requests — and fuses shape-compatible
//! neighbours into one forward pass. Under light load a request runs
//! alone at the lowest possible latency; under heavy load requests
//! amortize the per-pass overhead across the batch. The submission queue
//! is bounded by [`ServeConfig::queue_depth`]; a full queue rejects new
//! work with [`GeoError::ServeOverflow`] instead of growing without
//! bound.
//!
//! The dispatcher is agnostic to conv→pool fusion (DESIGN.md §16): a
//! `PreparedModel` prepared with `fuse_pooling` on simply carries
//! `ConvPooled`/level-chained steps, and every batched or unbatched
//! request takes the fused path with bit-identical outputs — no serve
//! code dispatches on it.
//!
//! [`ScEngine::prepare`]: crate::ScEngine::prepare
//!
//! # Examples
//!
//! ```
//! use geo_core::{GeoConfig, ScEngine, ScServer, ServeConfig};
//! use geo_nn::{models, Tensor};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), geo_core::GeoError> {
//! let mut engine = ScEngine::new(GeoConfig::geo(32, 64))?;
//! let mut model = models::lenet5(1, 8, 10, 0);
//! let prepared = Arc::new(engine.prepare(&mut model, &[1, 1, 8, 8])?);
//! let server = ScServer::spawn(prepared, ServeConfig::default())?;
//! let response = server.infer(Tensor::full(&[1, 1, 8, 8], 0.5))?;
//! assert_eq!(response.output.shape(), &[1, 10]);
//! server.shutdown()?;
//! # Ok(())
//! # }
//! ```

use crate::engine::PreparedModel;
use crate::error::GeoError;
use crate::ServeConfig;
use geo_nn::Tensor;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A queued inference request: the input, when it entered the queue, and
/// the channel the dispatcher answers on.
struct Request {
    input: Tensor,
    enqueued: Instant,
    reply: mpsc::Sender<Result<ServeResponse, GeoError>>,
}

/// A completed inference returned by the serve loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The model output for this request's input (first dimension matches
    /// the request's own batch dimension).
    pub output: Tensor,
    /// Queue-to-completion latency: time from submission until the
    /// dispatcher finished this request's forward pass.
    pub latency: Duration,
    /// Number of requests fused into the forward pass that produced this
    /// response (1 when the request ran alone).
    pub batch: usize,
}

/// A handle to one in-flight request, returned by [`ScServer::submit`].
///
/// Dropping a `Pending` abandons the request; the dispatcher still runs
/// it but the result is discarded.
#[must_use = "a Pending must be waited on to observe the response"]
pub struct Pending {
    reply: mpsc::Receiver<Result<ServeResponse, GeoError>>,
}

impl Pending {
    /// Blocks until the dispatcher answers this request.
    ///
    /// # Errors
    ///
    /// Returns the forward pass's own error if inference failed, or
    /// [`GeoError::ServeShutdown`] if the server terminated before
    /// answering.
    pub fn wait(self) -> Result<ServeResponse, GeoError> {
        self.reply.recv().map_err(|_| GeoError::ServeShutdown)?
    }
}

/// A serving loop over an immutable, `Arc`-shared [`PreparedModel`].
///
/// The server owns one dispatcher thread. Any number of client threads
/// may hold a `&ScServer` (or clone the underlying `Arc<PreparedModel>`)
/// and call [`submit`](ScServer::submit) / [`infer`](ScServer::infer)
/// concurrently. See the [module docs](crate::serve) for the batching
/// policy.
pub struct ScServer {
    tx: Option<SyncSender<Request>>,
    handle: Option<JoinHandle<()>>,
    prepared: Arc<PreparedModel>,
    capacity: usize,
}

impl ScServer {
    /// Starts the dispatcher thread for `prepared` with the given
    /// batching configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] if `config` fails
    /// [`ServeConfig::validate`], or [`GeoError::Internal`] if the OS
    /// refuses to spawn the dispatcher thread.
    pub fn spawn(prepared: Arc<PreparedModel>, config: ServeConfig) -> Result<Self, GeoError> {
        config.validate()?;
        let (tx, rx) = mpsc::sync_channel::<Request>(config.queue_depth);
        let worker = Arc::clone(&prepared);
        let handle = std::thread::Builder::new()
            .name("geo-serve".into())
            .spawn(move || dispatch(&worker, &rx, config.max_batch))
            .map_err(|e| GeoError::Internal(format!("failed to spawn serve thread: {e}")))?;
        Ok(ScServer {
            tx: Some(tx),
            handle: Some(handle),
            prepared,
            capacity: config.queue_depth,
        })
    }

    /// The prepared model this server executes.
    pub fn prepared(&self) -> &Arc<PreparedModel> {
        &self.prepared
    }

    /// Enqueues one inference request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::ServeOverflow`] when the submission queue is
    /// full (back-pressure: retry or shed load), or
    /// [`GeoError::ServeShutdown`] if the server has shut down.
    pub fn submit(&self, input: Tensor) -> Result<Pending, GeoError> {
        let tx = self.tx.as_ref().ok_or(GeoError::ServeShutdown)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Request {
            input,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        match tx.try_send(request) {
            Ok(()) => Ok(Pending { reply: reply_rx }),
            Err(TrySendError::Full(_)) => Err(GeoError::ServeOverflow {
                capacity: self.capacity,
            }),
            Err(TrySendError::Disconnected(_)) => Err(GeoError::ServeShutdown),
        }
    }

    /// Submits one request and blocks until its response.
    ///
    /// # Errors
    ///
    /// Propagates [`submit`](ScServer::submit) and
    /// [`Pending::wait`] errors.
    pub fn infer(&self, input: Tensor) -> Result<ServeResponse, GeoError> {
        self.submit(input)?.wait()
    }

    /// Stops accepting requests, drains the queue, and joins the
    /// dispatcher thread.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::Internal`] if the dispatcher thread panicked.
    pub fn shutdown(mut self) -> Result<(), GeoError> {
        self.tx = None; // closing the channel ends the dispatch loop
        match self.handle.take() {
            Some(handle) => handle
                .join()
                .map_err(|_| GeoError::Internal("serve dispatcher panicked".into())),
            None => Ok(()),
        }
    }
}

impl Drop for ScServer {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            // A panic in the dispatcher already answered ServeShutdown to
            // every waiter (their reply senders were dropped); nothing
            // more to surface from Drop.
            let _ = handle.join();
        }
    }
}

/// The dispatcher loop: block for one request, drain up to `max_batch`,
/// fuse shape-compatible neighbours, answer everyone.
fn dispatch(prepared: &PreparedModel, rx: &Receiver<Request>, max_batch: usize) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        // Fuse maximal runs of requests whose non-batch dimensions agree;
        // a shape change ends the run so request order is preserved.
        let mut start = 0;
        while start < batch.len() {
            let tail = batch[start].input.shape().get(1..).map(<[usize]>::to_vec);
            let mut end = start + 1;
            while end < batch.len()
                && batch[end].input.shape().get(1..).map(<[usize]>::to_vec) == tail
            {
                end += 1;
            }
            run_group(prepared, &batch[start..end]);
            start = end;
        }
    }
}

/// Runs one shape-compatible group as a single forward pass and replies
/// to every member. Group errors fan out to all members.
fn run_group(prepared: &PreparedModel, group: &[Request]) {
    let result = if group.len() == 1 {
        prepared.forward(&group[0].input).map(|out| vec![out])
    } else {
        forward_fused(prepared, group)
    };
    match result {
        Ok(outputs) => {
            for (req, output) in group.iter().zip(outputs) {
                let response = ServeResponse {
                    output,
                    latency: req.enqueued.elapsed(),
                    batch: group.len(),
                };
                let _ = req.reply.send(Ok(response));
            }
        }
        Err(e) => {
            for req in group {
                let _ = req.reply.send(Err(e.clone()));
            }
        }
    }
}

/// Concatenates a group along the batch dimension, runs one forward, and
/// splits the output back per request.
fn forward_fused(prepared: &PreparedModel, group: &[Request]) -> Result<Vec<Tensor>, GeoError> {
    let first_shape = group[0].input.shape();
    let mut fused_shape = first_shape.to_vec();
    let rows: Vec<usize> = group
        .iter()
        .map(|r| *r.input.shape().first().unwrap_or(&0))
        .collect();
    fused_shape[0] = rows.iter().sum();
    let mut data = Vec::with_capacity(fused_shape.iter().product());
    for req in group {
        data.extend_from_slice(req.input.data());
    }
    let fused = Tensor::from_vec(fused_shape, data).map_err(GeoError::Nn)?;
    let out = prepared.forward(&fused)?;
    split_rows(&out, &rows)
}

/// Splits `out` back into per-request tensors of `rows[i]` leading rows
/// each.
fn split_rows(out: &Tensor, rows: &[usize]) -> Result<Vec<Tensor>, GeoError> {
    let total: usize = rows.iter().sum();
    let out_shape = out.shape();
    if out_shape.first() != Some(&total) {
        return Err(GeoError::Internal(format!(
            "fused forward returned {out_shape:?} for {total} batched rows"
        )));
    }
    let item = out.data().len() / total.max(1);
    let mut pieces = Vec::with_capacity(rows.len());
    let mut offset = 0;
    for &n in rows {
        let mut shape = out_shape.to_vec();
        shape[0] = n;
        let piece = out.data()[offset..offset + n * item].to_vec();
        pieces.push(Tensor::from_vec(shape, piece).map_err(GeoError::Nn)?);
        offset += n * item;
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeoConfig;
    use crate::ScEngine;
    use geo_nn::models;

    fn prepared_lenet() -> Arc<PreparedModel> {
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64)).expect("config");
        let model = models::lenet5(1, 8, 10, 0);
        Arc::new(engine.prepare(&model, &[1, 1, 8, 8]).expect("prepare"))
    }

    #[test]
    fn serve_matches_direct_forward_and_reports_batch() {
        let prepared = prepared_lenet();
        let input = Tensor::full(&[1, 1, 8, 8], 0.4);
        let direct = prepared.forward(&input).expect("direct");
        let server = ScServer::spawn(Arc::clone(&prepared), ServeConfig::default()).expect("spawn");
        let response = server.infer(input).expect("infer");
        assert_eq!(response.output.data(), direct.data());
        assert!(response.batch >= 1);
        assert!(response.latency > Duration::ZERO);
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn fused_group_outputs_split_back_per_request() {
        let prepared = prepared_lenet();
        let server = ScServer::spawn(
            Arc::clone(&prepared),
            ServeConfig::default().with_max_batch(4),
        )
        .expect("spawn");
        let inputs: Vec<Tensor> = (0..4)
            .map(|i| Tensor::full(&[1, 1, 8, 8], 0.2 + 0.1 * i as f32))
            .collect();
        let pending: Vec<Pending> = inputs
            .iter()
            .map(|t| server.submit(t.clone()).expect("submit"))
            .collect();
        for (input, p) in inputs.iter().zip(pending) {
            let response = p.wait().expect("wait");
            let direct = prepared.forward(input).expect("direct");
            assert_eq!(response.output.shape(), direct.shape());
            assert_eq!(response.output.data(), direct.data());
        }
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let prepared = prepared_lenet();
        let server = ScServer::spawn(Arc::clone(&prepared), ServeConfig::default()).expect("spawn");
        server.shutdown().expect("shutdown");
        let server = ScServer::spawn(prepared, ServeConfig::default()).expect("respawn");
        drop(server); // Drop also joins cleanly
    }

    #[test]
    fn overflow_reports_queue_capacity() {
        let err = GeoError::ServeOverflow { capacity: 2 };
        assert!(err.to_string().contains("2 requests"));
    }

    #[test]
    fn split_rows_rejects_row_mismatch() {
        let out = Tensor::full(&[3, 2], 1.0);
        assert!(split_rows(&out, &[2, 2]).is_err());
        let pieces = split_rows(&out, &[1, 2]).expect("split");
        assert_eq!(pieces[0].shape(), &[1, 2]);
        assert_eq!(pieces[1].shape(), &[2, 2]);
    }
}
