//! Error type for the GEO engine.

use geo_arch::ArtifactError;
use geo_nn::NnError;
use geo_sc::ScError;
use std::fmt;

/// Errors produced by the SC inference engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeoError {
    /// An error from the stochastic-computing substrate.
    Sc(ScError),
    /// An error from the neural-network substrate.
    Nn(NnError),
    /// A program artifact that failed to load or validate.
    Artifact(ArtifactError),
    /// A configuration the engine cannot realize.
    InvalidConfig(String),
    /// An engine invariant that should be unreachable was violated —
    /// indicates a bug in the engine itself, not in caller input.
    Internal(String),
    /// A serve request was submitted to (or was in flight on) a server
    /// that has shut down.
    ServeShutdown,
    /// The serve submission queue was full; the request was rejected to
    /// bound memory, and the caller should retry or shed load.
    ServeOverflow {
        /// The queue bound that was hit ([`crate::ServeConfig::queue_depth`]).
        capacity: usize,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::Sc(e) => write!(f, "stochastic substrate: {e}"),
            GeoError::Nn(e) => write!(f, "network substrate: {e}"),
            GeoError::Artifact(e) => write!(f, "program artifact: {e}"),
            GeoError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GeoError::Internal(msg) => write!(f, "engine invariant violated (bug): {msg}"),
            GeoError::ServeShutdown => write!(f, "serve: server has shut down"),
            GeoError::ServeOverflow { capacity } => write!(
                f,
                "serve: submission queue full ({capacity} requests); retry or shed load"
            ),
        }
    }
}

impl std::error::Error for GeoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GeoError::Sc(e) => Some(e),
            GeoError::Nn(e) => Some(e),
            GeoError::Artifact(e) => Some(e),
            GeoError::InvalidConfig(_)
            | GeoError::Internal(_)
            | GeoError::ServeShutdown
            | GeoError::ServeOverflow { .. } => None,
        }
    }
}

#[doc(hidden)]
impl From<ScError> for GeoError {
    fn from(e: ScError) -> Self {
        GeoError::Sc(e)
    }
}

#[doc(hidden)]
impl From<NnError> for GeoError {
    fn from(e: NnError) -> Self {
        GeoError::Nn(e)
    }
}

#[doc(hidden)]
impl From<ArtifactError> for GeoError {
    fn from(e: ArtifactError) -> Self {
        GeoError::Artifact(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e: GeoError = ScError::EmptyInput.into();
        assert!(e.to_string().contains("stochastic"));
        assert!(e.source().is_some());
        let e: GeoError = NnError::MissingForward.into();
        assert!(e.to_string().contains("network"));
        let e = GeoError::InvalidConfig("stream length must be a power of two".into());
        assert!(e.to_string().contains("power of two"));
        assert!(e.source().is_none());
        let e: GeoError = ArtifactError::BadMagic { found: [0; 4] }.into();
        assert!(e.to_string().contains("program artifact"));
        assert!(e.source().is_some());
        let e = GeoError::ServeShutdown;
        assert!(e.to_string().contains("shut down"));
        assert!(e.source().is_none());
        let e = GeoError::ServeOverflow { capacity: 64 };
        assert!(e.to_string().contains("64"));
        assert!(e.source().is_none());
    }
}
