//! Layer-wise SC error analysis.
//!
//! Diagnostic tooling for the question every SC deployment asks first:
//! *where* does stochastic error enter my network? [`layer_errors`] runs
//! the float and SC datapaths side by side on the same input and reports
//! per-layer divergence — the compressing effect of OR accumulation, the
//! dynamic-range recovery of partial binary accumulation, and quantization
//! effects all become visible per layer.

use crate::engine::ScEngine;
use crate::error::GeoError;
use geo_nn::{Layer, Sequential, Tensor};

/// Divergence between the SC and float outputs of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerError {
    /// Index in `model.layers()`.
    pub layer_index: usize,
    /// Layer kind (`"conv2d"`, `"linear"`, …).
    pub kind: &'static str,
    /// Root-mean-square difference between SC and float outputs.
    pub rms: f64,
    /// Maximum absolute difference.
    pub max_abs: f64,
    /// Mean signed difference (negative = SC compresses, the OR signature).
    pub mean_signed: f64,
    /// Stream length the engine assigned (parametrized layers only).
    pub stream_len: Option<usize>,
}

/// Runs `input` through both datapaths, feeding each layer the **float**
/// activations so errors are attributed per layer rather than compounded.
///
/// Returns one record per parametrized (conv/linear) layer.
///
/// # Errors
///
/// Propagates engine and layer errors.
///
/// # Examples
///
/// ```
/// use geo_core::{analyze::layer_errors, GeoConfig, ScEngine};
/// use geo_nn::{models, Tensor};
///
/// # fn main() -> Result<(), geo_core::GeoError> {
/// let mut model = models::lenet5(1, 8, 10, 0);
/// let mut engine = ScEngine::new(GeoConfig::geo(32, 64))?;
/// let errors = layer_errors(&mut engine, &mut model, &Tensor::full(&[1, 1, 8, 8], 0.5))?;
/// assert_eq!(errors.len(), 4); // 2 conv + 2 fc
/// assert!(errors.iter().all(|e| e.rms.is_finite()));
/// # Ok(())
/// # }
/// ```
pub fn layer_errors(
    engine: &mut ScEngine,
    model: &mut Sequential,
    input: &Tensor,
) -> Result<Vec<LayerError>, GeoError> {
    let plan = engine.stream_plan(model);
    model.set_training(false);
    let mut errors = Vec::new();
    let mut x = input.clone();
    for (i, stream_len) in plan.iter().enumerate() {
        // Float forward of this layer on the float activations.
        let kind = model.layers()[i].kind();
        let is_param = matches!(model.layers()[i], Layer::Conv2d(_) | Layer::Linear(_));
        let float_out = model.layers_mut()[i].forward(&x)?;
        if is_param {
            // SC forward of the *single* layer on the same activations:
            // wrap it in a one-layer model view via the engine.
            let sc_out = engine.forward_single_layer(model, i, &x)?;
            let n = float_out.len().max(1) as f64;
            let mut sum_sq = 0.0f64;
            let mut max_abs = 0.0f64;
            let mut mean = 0.0f64;
            for (s, f) in sc_out.data().iter().zip(float_out.data()) {
                let d = f64::from(s - f);
                sum_sq += d * d;
                max_abs = max_abs.max(d.abs());
                mean += d;
            }
            errors.push(LayerError {
                layer_index: i,
                kind,
                rms: (sum_sq / n).sqrt(),
                max_abs,
                mean_signed: mean / n,
                stream_len: *stream_len,
            });
        }
        x = float_out;
    }
    Ok(errors)
}

/// Formats the analysis as an aligned table.
pub fn format_errors(errors: &[LayerError]) -> String {
    let mut out = format!(
        "{:<6} {:<10} {:>8} {:>10} {:>10} {:>12}\n",
        "layer", "kind", "stream", "rms", "max", "mean(signed)"
    );
    for e in errors {
        out.push_str(&format!(
            "{:<6} {:<10} {:>8} {:>10.4} {:>10.4} {:>+12.4}\n",
            e.layer_index,
            e.kind,
            e.stream_len.map_or("—".into(), |l| l.to_string()),
            e.rms,
            e.max_abs,
            e.mean_signed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Accumulation, GeoConfig};
    use geo_nn::models;

    fn setup() -> (Sequential, Tensor) {
        (
            models::lenet5(1, 8, 10, 0),
            Tensor::full(&[1, 1, 8, 8], 0.5),
        )
    }

    #[test]
    fn reports_one_record_per_parametrized_layer() {
        let (mut model, x) = setup();
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64)).unwrap();
        let errors = layer_errors(&mut engine, &mut model, &x).unwrap();
        assert_eq!(errors.len(), 4);
        assert_eq!(errors[0].kind, "conv2d");
        assert_eq!(errors[3].kind, "linear");
        assert_eq!(errors[0].stream_len, Some(32));
        assert_eq!(errors[3].stream_len, Some(128));
    }

    #[test]
    fn or_accumulation_shows_compression_bias() {
        // With all-positive weights, OR accumulation compresses sums, so
        // the mean signed error must be negative for the conv layers.
        use geo_nn::Layer;
        let (mut model, x) = setup();
        for l in model.layers_mut() {
            if let Layer::Conv2d(c) = l {
                for v in c.weight.value.data_mut() {
                    *v = v.abs().max(0.3);
                }
            }
        }
        let mut engine = ScEngine::new(
            GeoConfig::geo(64, 64)
                .with_accumulation(Accumulation::Or)
                .with_progressive(false),
        )
        .unwrap();
        let errors = layer_errors(&mut engine, &mut model, &x).unwrap();
        assert!(
            errors[0].mean_signed < 0.0,
            "OR compresses: {:+.4}",
            errors[0].mean_signed
        );
    }

    #[test]
    fn fxp_error_is_smaller_than_or_error() {
        let (mut model, x) = setup();
        let base = GeoConfig::geo(128, 128).with_progressive(false);
        let mut eng_or = ScEngine::new(base.with_accumulation(Accumulation::Or)).unwrap();
        let mut eng_fxp = ScEngine::new(base.with_accumulation(Accumulation::Fxp)).unwrap();
        let or_err = layer_errors(&mut eng_or, &mut model, &x).unwrap();
        let fxp_err = layer_errors(&mut eng_fxp, &mut model, &x).unwrap();
        // Total rms across parametrized layers.
        let sum = |v: &[LayerError]| v.iter().map(|e| e.rms).sum::<f64>();
        assert!(
            sum(&fxp_err) <= sum(&or_err) + 1e-9,
            "FXP {:.4} ≤ OR {:.4}",
            sum(&fxp_err),
            sum(&or_err)
        );
    }

    #[test]
    fn format_is_tabular() {
        let (mut model, x) = setup();
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64)).unwrap();
        let errors = layer_errors(&mut engine, &mut model, &x).unwrap();
        let table = format_errors(&errors);
        assert_eq!(table.lines().count(), 5); // header + 4 layers
        assert!(table.contains("conv2d"));
        assert!(table.contains("128"));
    }
}
