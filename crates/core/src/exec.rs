//! Program-driven execution: walking a compiled GEO ISA program through
//! the functional SC datapath.
//!
//! The accelerator model (`geo-arch`) compiles a network into a
//! [`Program`] — the instruction stream its cycle/energy simulator
//! consumes. [`ProgramExecutor`] closes the loop on the functional side:
//! it validates a compiled program against the network it claims to
//! implement (tile coverage, layer correspondence, stream lengths) and
//! then *executes* it, deriving every parametrized layer's stream length
//! from the program's `GEN` instructions instead of re-planning them.
//!
//! Execution dispatches into the same resolve/compute split as
//! [`ScEngine::forward`] (via the shared length-parameterized forward
//! loop), so program-driven inference is **bit-identical to the direct
//! engine path at every thread count** — the contract
//! `crates/core/tests/program_equivalence.rs` enforces across all
//! accumulation and generation modes. Accuracy numbers (Table I) and
//! cycle/energy numbers (Tables II–III) therefore come from one compiled
//! program stream, not two independently maintained descriptions.
//!
//! ```text
//!  ModelSpec ──build──▶ Sequential ─┐
//!      │                            ├─▶ ProgramExecutor::forward ──▶ logits
//!      └─lower─▶ NetworkDesc ─compile─▶ Program ──▶ perfsim::simulate ──▶ cycles/energy
//! ```

use crate::config::GeoConfig;
use crate::engine::ScEngine;
use crate::error::GeoError;
use geo_arch::compiler;
use geo_arch::{AccelConfig, Instr, NetworkDesc, Program, ProgramArtifact};
use geo_nn::datasets::Dataset;
use geo_nn::loss::argmax_rows;
use geo_nn::{Layer, Sequential, Tensor};

/// Executes a compiled GEO [`Program`] on the functional SC datapath.
///
/// # Examples
///
/// ```
/// use geo_arch::AccelConfig;
/// use geo_core::{GeoConfig, ProgramExecutor};
/// use geo_nn::{models, Tensor};
///
/// # fn main() -> Result<(), geo_core::GeoError> {
/// let mut model = models::lenet5(1, 8, 10, 0);
/// let mut exec = ProgramExecutor::compile(
///     GeoConfig::geo(32, 64),
///     &AccelConfig::ulp_geo(32, 64),
///     &model,
///     (1, 8, 8),
///     "lenet5-thumb",
/// )?;
/// let logits = exec.forward(&mut model, &Tensor::full(&[1, 1, 8, 8], 0.5), false)?;
/// assert_eq!(logits.shape(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
pub struct ProgramExecutor {
    engine: ScEngine,
    program: Program,
    /// The network the program was validated against; `forward` re-traces
    /// the live model against it so a program cannot silently run a
    /// different network of coincidentally equal stream lengths.
    net: NetworkDesc,
    /// Stream length of each program layer, decoded from its `GEN`
    /// instructions (`cycles / 2` — split-unipolar runs both halves).
    lens: Vec<usize>,
}

impl ProgramExecutor {
    /// Validates `program` against the network it was compiled from and
    /// pairs it with an engine for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] if the engine configuration is
    /// unrealizable, if the program's layer structure does not match
    /// `net`, if any layer's `GEN` tiles fail to cover its output volume
    /// exactly (out of bounds, overlapping, or incomplete), or if stream
    /// lengths are inconsistent within a layer.
    pub fn new(config: GeoConfig, net: &NetworkDesc, program: Program) -> Result<Self, GeoError> {
        Self::with_engine(ScEngine::new(config)?, net, program)
    }

    /// As [`ProgramExecutor::new`], but adopts an existing engine — e.g.
    /// one that just ran SC-in-the-loop training, so its per-pass state
    /// (TRNG reseeding counters, resilience tallies) carries over into
    /// program-driven evaluation.
    ///
    /// # Errors
    ///
    /// As [`ProgramExecutor::new`], minus the engine-construction cases.
    pub fn with_engine(
        engine: ScEngine,
        net: &NetworkDesc,
        program: Program,
    ) -> Result<Self, GeoError> {
        let lens = validate_program(&program, net)?;
        Ok(ProgramExecutor {
            engine,
            program,
            net: net.clone(),
            lens,
        })
    }

    /// Compiles `model` (with input shape `input = (C, H, W)`) for
    /// `accel` and wraps the result: the one-stop
    /// model → descriptor → program → executor pipeline.
    ///
    /// # Errors
    ///
    /// As [`ProgramExecutor::new`]; a mismatch here means the compiler and
    /// executor disagree about the schedule, which is a bug worth failing
    /// loudly on.
    pub fn compile(
        config: GeoConfig,
        accel: &AccelConfig,
        model: &Sequential,
        input: (usize, usize, usize),
        name: &str,
    ) -> Result<Self, GeoError> {
        let net = NetworkDesc::from_model(name, model, input);
        let program = compiler::compile(&net, accel);
        Self::new(config, &net, program)
    }

    /// Loads a durable program artifact (see [`geo_arch::artifact`]) and
    /// validates it against `net` **before any compute**: container
    /// integrity (magic, version, per-section checksums), strict operand
    /// decoding, the network fingerprint, and the full semantic
    /// validation of [`ProgramExecutor::new`] (operand ranges, exact tile
    /// coverage) all run at the load boundary.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::Artifact`] for any container-level failure —
    /// truncation, bad magic, version or checksum mismatch, malformed
    /// instruction words, or a fingerprint that does not match `net` —
    /// and [`GeoError::InvalidConfig`] for the semantic cases of
    /// [`ProgramExecutor::new`]. Never panics, whatever `bytes` holds.
    pub fn from_artifact(
        config: GeoConfig,
        net: &NetworkDesc,
        bytes: &[u8],
    ) -> Result<Self, GeoError> {
        let artifact = ProgramArtifact::from_bytes(bytes)?;
        artifact.verify_for(net)?;
        Self::new(config, net, artifact.into_program())
    }

    /// Serializes the executor's validated program as a durable artifact
    /// bound to its network (the inverse of
    /// [`ProgramExecutor::from_artifact`]).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::Artifact`] if the program cannot be encoded —
    /// unreachable for programs that passed construction-time validation.
    pub fn to_artifact(&self) -> Result<Vec<u8>, GeoError> {
        Ok(ProgramArtifact::new(self.program.clone(), &self.net).to_bytes()?)
    }

    /// The compiled program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The underlying functional engine.
    pub fn engine(&self) -> &ScEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine (e.g. to reset its
    /// resilience report).
    pub fn engine_mut(&mut self) -> &mut ScEngine {
        &mut self.engine
    }

    /// Per-layer stream lengths decoded from the program's `GEN`
    /// instructions, in layer order.
    pub fn stream_lens(&self) -> &[usize] {
        &self.lens
    }

    /// Telemetry snapshot of program-driven execution: the engine's
    /// per-layer runtime counters (see [`ScEngine::telemetry_report`])
    /// merged with the compiled program's per-layer ping-pong traffic
    /// from [`geo_arch::perfsim::memory_traffic`]. Program layers and
    /// the engine's parametrized layers are index-aligned (validated at
    /// construction), so the merge is positional.
    ///
    /// The byte counts are static program properties scaled by the pass
    /// count, so they are populated even without the `telemetry` feature
    /// (where the runtime counters read zero and the traffic reflects a
    /// single inference).
    pub fn telemetry_report(&self) -> crate::telemetry::TelemetryReport {
        let mut report = self.engine.telemetry_report();
        report.source = format!("program:{}", self.program.name);
        let traffic = geo_arch::perfsim::memory_traffic(&self.program);
        if report.layers.len() < traffic.len() {
            report
                .layers
                .resize(traffic.len(), crate::telemetry::LayerTelemetry::default());
        }
        let passes = report.passes.max(1);
        for (layer, t) in report.layers.iter_mut().zip(&traffic) {
            layer.pingpong_bytes = t.pingpong_bytes().saturating_mul(passes);
        }
        report
    }

    /// Runs `model` under program control: each parametrized layer's
    /// stream length comes from the program's `GEN` cycles and is
    /// cross-checked against the engine's own stream plan, then the layer
    /// dispatches into the shared resolve/compute datapath.
    ///
    /// Bit-identical to [`ScEngine::forward`] with the same `config` at
    /// every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidConfig`] if `model`'s parametrized
    /// layer count differs from the program's, or if a program stream
    /// length disagrees with the engine plan (the program was compiled
    /// for different `{sp, s}` lengths); propagates datapath errors.
    pub fn forward(
        &mut self,
        model: &mut Sequential,
        input: &Tensor,
        training: bool,
    ) -> Result<Tensor, GeoError> {
        let params = model
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
            .count();
        if params != self.lens.len() {
            return Err(GeoError::InvalidConfig(format!(
                "model has {params} parametrized layers but program '{}' encodes {}",
                self.program.name,
                self.lens.len()
            )));
        }
        // Re-trace the live model's compute shapes and hold them against
        // the network the program was validated for: equal stream lengths
        // are not enough to prove the program addresses *this* model.
        if let [_, c, h, w] = *input.shape() {
            let traced = NetworkDesc::from_model(&self.net.name, model, (c, h, w));
            if traced.layers != self.net.layers {
                return Err(GeoError::InvalidConfig(format!(
                    "model shapes do not match network '{}' the program was compiled for",
                    self.net.name
                )));
            }
        }
        let lens = &self.lens;
        let name = &self.program.name;
        self.engine
            .forward_with_lens(model, input, training, |pl, planned| {
                let len = lens.get(pl as usize).copied().ok_or_else(|| {
                    GeoError::Internal(format!(
                        "program '{name}' has no layer {pl} despite matching layer counts"
                    ))
                })?;
                if len != planned {
                    return Err(GeoError::InvalidConfig(format!(
                        "program '{name}' runs layer {pl} at stream length {len}, \
                         engine plan says {planned} — program compiled for different \
                         {{sp, s}} lengths"
                    )));
                }
                Ok(len)
            })
    }

    /// Resolves `model` once under program control into an immutable
    /// [`PreparedModel`](crate::PreparedModel) — the program-path
    /// analogue of [`ScEngine::prepare`]. Every parametrized layer's
    /// stream length is decoded from the program's `GEN` instructions and
    /// cross-checked against the engine plan exactly as
    /// [`ProgramExecutor::forward`] does, so serving from the prepared
    /// model stays bit-identical to program-driven forwards.
    ///
    /// Conv→pool fusion and level chaining (DESIGN.md §16) are inherited
    /// from the shared prepare loop: the compiled ISA is untouched (the
    /// compiler already models pooled layers via shorter `sp` streams
    /// and quartered writeback), and the tile-coverage/stream-length
    /// validation above runs on the *program*, before fusion rewrites
    /// the step sequence — so it is unchanged by the fused path.
    ///
    /// # Errors
    ///
    /// As [`ProgramExecutor::forward`]: layer-count mismatch, shape
    /// re-trace mismatch, or stream-length disagreement between the
    /// program and the engine plan; propagates resolve errors.
    pub fn prepare(
        &mut self,
        model: &mut Sequential,
        input_shape: &[usize],
    ) -> Result<crate::PreparedModel, GeoError> {
        let params = model
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_) | Layer::Linear(_)))
            .count();
        if params != self.lens.len() {
            return Err(GeoError::InvalidConfig(format!(
                "model has {params} parametrized layers but program '{}' encodes {}",
                self.program.name,
                self.lens.len()
            )));
        }
        if let [_, c, h, w] = *input_shape {
            let traced = NetworkDesc::from_model(&self.net.name, model, (c, h, w));
            if traced.layers != self.net.layers {
                return Err(GeoError::InvalidConfig(format!(
                    "model shapes do not match network '{}' the program was compiled for",
                    self.net.name
                )));
            }
        }
        model.set_training(false);
        let lens = &self.lens;
        let name = &self.program.name;
        self.engine
            .prepare_with_lens(model, input_shape, &mut |pl, planned| {
                let len = lens.get(pl as usize).copied().ok_or_else(|| {
                    GeoError::Internal(format!(
                        "program '{name}' has no layer {pl} despite matching layer counts"
                    ))
                })?;
                if len != planned {
                    return Err(GeoError::InvalidConfig(format!(
                        "program '{name}' runs layer {pl} at stream length {len}, \
                         engine plan says {planned} — program compiled for different \
                         {{sp, s}} lengths"
                    )));
                }
                Ok(len)
            })
    }

    /// Top-1 accuracy of program-driven inference on `dataset` — the
    /// program-path analogue of [`crate::evaluate_sc`].
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramExecutor::forward`] errors.
    pub fn evaluate(&mut self, model: &mut Sequential, dataset: &Dataset) -> Result<f32, GeoError> {
        let mut correct = 0usize;
        let batch = 32usize;
        let mut i = 0;
        while i < dataset.len() {
            let n = batch.min(dataset.len() - i);
            let (x, labels) = dataset.batch(i, n);
            let logits = self.forward(model, &x, false)?;
            for (pred, label) in argmax_rows(&logits).into_iter().zip(&labels) {
                if pred == *label {
                    correct += 1;
                }
            }
            i += n;
        }
        Ok(correct as f32 / dataset.len().max(1) as f32)
    }
}

/// Checks `program` implements `net` layer for layer and returns the
/// per-layer stream lengths its `GEN` instructions encode.
fn validate_program(program: &Program, net: &NetworkDesc) -> Result<Vec<usize>, GeoError> {
    if program.layer_count() != net.layers.len() {
        return Err(GeoError::InvalidConfig(format!(
            "program '{}' has {} layers, network '{}' has {}",
            program.name,
            program.layer_count(),
            net.name,
            net.layers.len()
        )));
    }
    let mut lens = Vec::with_capacity(net.layers.len());
    for (li, layer) in net.layers.iter().enumerate() {
        let instrs = program
            .layer_instrs(li)
            .ok_or_else(|| GeoError::Internal(format!("layer {li} start index out of bounds")))?;
        lens.push(validate_layer(program, li, layer, instrs, &net.name)?);
    }
    Ok(lens)
}

/// Validates one layer's instruction slice and returns its stream length.
fn validate_layer(
    program: &Program,
    li: usize,
    layer: &geo_arch::LayerShape,
    instrs: &[Instr],
    net_name: &str,
) -> Result<usize, GeoError> {
    let bad = |msg: String| GeoError::InvalidConfig(format!("program '{}': {msg}", program.name));
    let gens: Vec<_> = instrs
        .iter()
        .filter_map(|i| match i {
            Instr::Generate { cycles, tile, .. } => Some((*cycles, tile)),
            _ => None,
        })
        .collect();
    let Some(&(cycles, first_tile)) = gens.first() else {
        return Err(bad(format!("layer {li} has no GEN instructions")));
    };
    if cycles == 0 || cycles % 2 != 0 {
        return Err(bad(format!(
            "layer {li} GEN cycles {cycles} is not an even split-unipolar count"
        )));
    }
    if let Some(&(other, _)) = gens.iter().find(|(c, _)| *c != cycles) {
        return Err(bad(format!(
            "layer {li} mixes GEN stream cycles {cycles} and {other}"
        )));
    }

    // Tile coverage: every (col_pass, cout, pos) cell of the layer's
    // output volume exactly once — in bounds, no overlap, nothing missing.
    let cout = layer.output_channels();
    let (oh, ow) = layer.output_hw();
    let outputs = (oh * ow).max(1);
    let col_passes = first_tile.col_passes as usize;
    if col_passes == 0 {
        return Err(bad(format!("layer {li} tile declares zero column passes")));
    }
    let mut covered = vec![false; col_passes * cout * outputs];
    for (_, t) in &gens {
        if t.layer as usize != li {
            return Err(bad(format!(
                "layer {li} contains a GEN addressed to layer {}",
                t.layer
            )));
        }
        if t.col_passes as usize != col_passes || t.col_pass >= t.col_passes {
            return Err(bad(format!(
                "layer {li} tile col pass {}/{} inconsistent with {col_passes}",
                t.col_pass, t.col_passes
            )));
        }
        if t.cout_begin >= t.cout_end || t.cout_end as usize > cout {
            return Err(bad(format!(
                "layer {li} tile channels {}..{} outside 0..{cout}",
                t.cout_begin, t.cout_end
            )));
        }
        if t.pos_begin >= t.pos_end || t.pos_end as usize > outputs {
            return Err(bad(format!(
                "layer {li} tile positions {}..{} outside 0..{outputs}",
                t.pos_begin, t.pos_end
            )));
        }
        for c in t.cout_begin..t.cout_end {
            for p in t.pos_begin..t.pos_end {
                let cell = (t.col_pass as usize * cout + c as usize) * outputs + p as usize;
                if std::mem::replace(&mut covered[cell], true) {
                    return Err(bad(format!(
                        "layer {li} output cell (channel {c}, position {p}) \
                         generated twice in column pass {}",
                        t.col_pass
                    )));
                }
            }
        }
    }
    if let Some(missing) = covered.iter().position(|&b| !b) {
        let cp = missing / (cout * outputs);
        let c = (missing / outputs) % cout;
        let p = missing % outputs;
        return Err(bad(format!(
            "network '{net_name}' layer {li}: output cell (channel {c}, position {p}) \
             never generated in column pass {cp}"
        )));
    }
    Ok((cycles / 2) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_nn::models;

    fn thumb_exec() -> (Sequential, ProgramExecutor) {
        let model = models::lenet5(1, 8, 10, 0);
        let exec = ProgramExecutor::compile(
            GeoConfig::geo(32, 64),
            &AccelConfig::ulp_geo(32, 64),
            &model,
            (1, 8, 8),
            "lenet5-thumb",
        )
        .unwrap();
        (model, exec)
    }

    #[test]
    fn compiles_and_decodes_stream_lengths() {
        let (_, exec) = thumb_exec();
        // conv1 (pooled) 32, conv2 (pooled) 32, fc1 64, fc2 (output) 128.
        assert_eq!(exec.stream_lens(), &[32, 32, 64, 128]);
    }

    #[test]
    fn forward_matches_direct_engine() {
        let (mut model, mut exec) = thumb_exec();
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let via_program = exec.forward(&mut model, &x, false).unwrap();
        let mut engine = ScEngine::new(GeoConfig::geo(32, 64)).unwrap();
        let direct = engine.forward(&mut model, &x, false).unwrap();
        assert_eq!(via_program.data(), direct.data());
    }

    #[test]
    fn rejects_programs_compiled_for_other_stream_lengths() {
        let model = models::lenet5(1, 8, 10, 0);
        let net = NetworkDesc::from_model("lenet5-thumb", &model, (1, 8, 8));
        // Program compiled at {16, 32}; engine configured for {32, 64}.
        let program = compiler::compile(&net, &AccelConfig::ulp_geo(16, 32));
        let mut exec = ProgramExecutor::new(GeoConfig::geo(32, 64), &net, program).unwrap();
        let mut model = model;
        let err = exec
            .forward(&mut model, &Tensor::full(&[1, 1, 8, 8], 0.5), false)
            .unwrap_err();
        assert!(matches!(err, GeoError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn rejects_layer_count_mismatch() {
        let model = models::lenet5(1, 8, 10, 0);
        let net = NetworkDesc::from_model("lenet5-thumb", &model, (1, 8, 8));
        let mut program = compiler::compile(&net, &AccelConfig::ulp_geo(32, 64));
        program.layer_starts.pop();
        let err = ProgramExecutor::new(GeoConfig::geo(32, 64), &net, program)
            .err()
            .unwrap();
        assert!(matches!(err, GeoError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn rejects_incomplete_tile_coverage() {
        let model = models::lenet5(1, 8, 10, 0);
        let net = NetworkDesc::from_model("lenet5-thumb", &model, (1, 8, 8));
        let mut program = compiler::compile(&net, &AccelConfig::ulp_geo(32, 64));
        // Drop one GEN (and its paired loads keep the slice non-empty).
        let gen_at = program
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Generate { .. }))
            .unwrap();
        program.instrs.remove(gen_at);
        for s in &mut program.layer_starts {
            if *s > gen_at {
                *s -= 1;
            }
        }
        let err = ProgramExecutor::new(GeoConfig::geo(32, 64), &net, program)
            .err()
            .unwrap();
        assert!(
            err.to_string().contains("never generated"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn rejects_model_with_different_layer_count() {
        let (_, mut exec) = thumb_exec();
        // 15 parametrized layers vs. the program's 4.
        let mut other = models::vgg16_small(3, 16, 10, 0);
        let err = exec
            .forward(&mut other, &Tensor::full(&[1, 3, 16, 16], 0.5), false)
            .unwrap_err();
        assert!(matches!(err, GeoError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn rejects_model_with_same_plan_but_different_shapes() {
        let (_, mut exec) = thumb_exec();
        // The CNN-4 thumbnail coincidentally has the same parametrized-layer
        // count AND the same stream plan [32, 32, 64, 128] as the LeNet-5
        // thumbnail; only the shape re-trace can tell them apart.
        let mut other = models::cnn4(3, 8, 10, 0);
        let err = exec
            .forward(&mut other, &Tensor::full(&[1, 3, 8, 8], 0.5), false)
            .unwrap_err();
        assert!(
            err.to_string().contains("do not match network"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn prepared_program_matches_program_forward() {
        let (mut model, mut exec) = thumb_exec();
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let via_program = exec.forward(&mut model, &x, false).unwrap();
        let (mut model2, mut exec2) = thumb_exec();
        let prepared = exec2.prepare(&mut model2, x.shape()).unwrap();
        let served = prepared.forward(&x).unwrap();
        assert_eq!(via_program.data(), served.data());
        // A program at other stream lengths must refuse to prepare.
        let net = NetworkDesc::from_model("lenet5-thumb", &model, (1, 8, 8));
        let program = compiler::compile(&net, &AccelConfig::ulp_geo(16, 32));
        let mut wrong = ProgramExecutor::new(GeoConfig::geo(32, 64), &net, program).unwrap();
        let err = wrong.prepare(&mut model, &[1, 1, 8, 8]).err().unwrap();
        assert!(matches!(err, GeoError::InvalidConfig(_)), "{err}");
        // A different network of equal lengths must fail the re-trace.
        let mut other = models::cnn4(3, 8, 10, 0);
        let err = exec.prepare(&mut other, &[1, 3, 8, 8]).err().unwrap();
        assert!(
            err.to_string().contains("do not match network"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn telemetry_report_merges_pingpong_traffic() {
        let (mut model, mut exec) = thumb_exec();
        exec.forward(&mut model, &Tensor::full(&[1, 1, 8, 8], 0.5), false)
            .unwrap();
        let report = exec.telemetry_report();
        assert_eq!(report.source, "program:lenet5-thumb");
        assert_eq!(report.layers.len(), exec.stream_lens().len());
        assert!(report.layers.iter().any(|l| l.pingpong_bytes > 0));
        if crate::telemetry::enabled() {
            assert_eq!(report.passes, 1);
            assert!(report.total().macs > 0);
        } else {
            assert_eq!(report.total().macs, 0);
        }
    }

    #[test]
    fn artifact_round_trip_is_bit_identical() {
        let (mut model, exec) = thumb_exec();
        let bytes = exec.to_artifact().unwrap();
        let net = NetworkDesc::from_model("lenet5-thumb", &model, (1, 8, 8));
        let mut reloaded = ProgramExecutor::from_artifact(GeoConfig::geo(32, 64), &net, &bytes)
            .expect("valid artifact must load");
        assert_eq!(reloaded.program(), exec.program());
        // Bit-identical forward outputs: a fresh in-memory executor and
        // the reloaded one see the same engine state and program.
        let x = Tensor::full(&[2, 1, 8, 8], 0.4);
        let mut fresh = thumb_exec().1;
        let direct = fresh.forward(&mut model, &x, false).unwrap();
        let via_artifact = reloaded.forward(&mut model, &x, false).unwrap();
        assert_eq!(via_artifact.data(), direct.data());
    }

    #[test]
    fn from_artifact_rejects_corruption_and_wrong_network() {
        let (model, exec) = thumb_exec();
        let net = NetworkDesc::from_model("lenet5-thumb", &model, (1, 8, 8));
        let bytes = exec.to_artifact().unwrap();
        // Corrupt payload byte → checksum failure at the load boundary.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        let err = ProgramExecutor::from_artifact(GeoConfig::geo(32, 64), &net, &bad)
            .err()
            .unwrap();
        assert!(matches!(err, GeoError::Artifact(_)), "{err}");
        // Truncation → typed artifact error, never a panic.
        let err = ProgramExecutor::from_artifact(GeoConfig::geo(32, 64), &net, &bytes[..10])
            .err()
            .unwrap();
        assert!(matches!(err, GeoError::Artifact(_)), "{err}");
        // Valid container, wrong network → fingerprint mismatch before
        // any compute.
        let other = NetworkDesc::cnn4_cifar();
        let err = ProgramExecutor::from_artifact(GeoConfig::geo(32, 64), &other, &bytes)
            .err()
            .unwrap();
        assert!(
            err.to_string().contains("fingerprint"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn evaluate_runs_on_a_small_dataset() {
        use geo_nn::datasets::{generate, DatasetSpec};
        let (mut model, mut exec) = thumb_exec();
        let (_, test) = generate(&DatasetSpec::mnist_like(8).with_samples(8, 8));
        let acc = exec.evaluate(&mut model, &test).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
