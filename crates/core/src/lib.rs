//! # geo-core — the GEO stochastic-computing engine
//!
//! The paper's primary contribution, as a library: a stochastic-computing
//! inference engine for `geo-nn` networks with
//!
//! * deterministic, **shared** stream generation (LFSR seeds shared across
//!   all kernels of a layer — §II-A),
//! * **progressive** stream generation (§II-B),
//! * **partial binary accumulation** — OR in SC for the first levels,
//!   parallel counter for the rest (OR / PBW / PBHW / FXP / APC — §III-B),
//! * per-layer `{sp, s}` stream lengths with pooling computation skipping
//!   and 128-cycle output layers (§IV),
//! * 8-bit near-memory batch normalization (§III-B/C),
//! * **SC-in-the-loop training**: SC forward, float backward (§IV),
//! * and a **compile-once, serve-many** lifecycle: [`ScEngine::prepare`]
//!   hoists every input-independent resolve product into an immutable,
//!   `Arc`-shareable [`PreparedModel`], and [`serve`] batches concurrent
//!   requests against it.
//!
//! # Examples
//!
//! ```
//! use geo_core::{GeoConfig, ScEngine};
//! use geo_nn::{models, Tensor};
//!
//! # fn main() -> Result<(), geo_core::GeoError> {
//! // The paper's GEO-32,64 configuration.
//! let mut engine = ScEngine::new(GeoConfig::geo(32, 64))?;
//! let mut model = models::cnn4(3, 8, 10, 0);
//! let logits = engine.forward(&mut model, &Tensor::full(&[1, 3, 8, 8], 0.5), false)?;
//! assert_eq!(logits.shape(), &[1, 10]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod analyze;
mod config;
mod engine;
mod error;
mod exec;
pub mod serve;
mod tables;
pub mod telemetry;
mod training;

pub use config::{Accumulation, GeoConfig, ServeConfig};
pub use engine::{PreparedModel, ResilienceReport, ScEngine, FC_BINARY_WIDTH};
pub use error::GeoError;
pub use exec::ProgramExecutor;
pub use serve::{Pending, ScServer, ServeResponse};
pub use tables::{ProgressiveTable, TableCache};
pub use training::{evaluate_sc, train_sc, ScHistory};
