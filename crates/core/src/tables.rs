//! Stream-table caching.
//!
//! Because GEO's generators are deterministic and shared, the stream for a
//! given (generator, value) pair is fixed — so the engine precomputes
//! value-indexed tables per generator and turns stream generation into
//! lookups. This mirrors the paper's "heavily optimized stream-based
//! training" and is what makes SC-in-the-loop training tractable.
//!
//! TRNG-backed tables are deliberately invalidated every pass
//! ([`TableCache::begin_pass`]): true randomness has no reusable table,
//! which is exactly why networks cannot train for it.
//!
//! The cache is also the injection point for the fault model
//! ([`geo_sc::fault`]): static generator faults (seed corruption, stuck
//! taps) are applied when an RNG is built, and transient faults (stream /
//! SRAM bit errors) corrupt table contents — each table doubles as the
//! model of that generator's stream-buffer SRAM. Tables with transient
//! faults are invalidated every pass so each pass draws fresh upsets.
//!
//! **Frozen-pass semantics under prepare/serve:** one
//! [`ScEngine::prepare`](crate::ScEngine::prepare) is one pass — it calls
//! [`TableCache::begin_pass`] once, draws TRNG tables and transient
//! faults then, and bakes the resulting streams into the immutable
//! [`PreparedModel`](crate::PreparedModel). Every request served against
//! that prepared model sees those same frozen draws; TRNG tables are not
//! redrawn and transient upsets do not recur per request. Repeated
//! *direct* forwards, by contrast, redraw per pass — so under
//! `RngKind::Trng` or a transient fault model, serve-path outputs are
//! bit-identical to the *first* direct forward after the same engine
//! state, not to a fresh pass each time.
//!
//! Conv→pool fusion and level chaining (DESIGN.md §16) also happen at
//! prepare time, *inside* the same frozen pass: the fused
//! `ConvPooled` step's tables and fault draws are made exactly where
//! the unfused conv's would have been (the absorbed batch-norm/ReLU
//! steps touch neither the cache nor the RNG), so fusing changes
//! nothing about which draws a pass makes or the order it makes them
//! in.

use crate::error::GeoError;
use geo_sc::fault::{self, FaultCounters, FaultInjector};
use geo_sc::telemetry::Counter;
use geo_sc::{
    progressive, quantize_unipolar, Bitstream, ProgressiveSng, RngKind, RngSpec, StreamRng,
    StreamTable, StuckAtRng,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of one cached generator table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TableKey {
    kind: RngKind,
    width: u8,
    spec: RngSpec,
}

/// Stable per-kind tag mixed into fault domains.
fn kind_tag(kind: RngKind) -> u64 {
    match kind {
        RngKind::Lfsr => 1,
        RngKind::Trng => 2,
        RngKind::Sobol => 3,
    }
}

/// Fault domain of one generator: a pure function of its identity, so the
/// same generator always draws the same static faults.
fn generator_domain(kind: RngKind, width: u8, spec: RngSpec) -> u64 {
    fault::domain(&[
        kind_tag(kind),
        u64::from(width),
        u64::from(spec.seed),
        spec.poly as u64,
    ])
}

/// A value-indexed table of *progressively generated* streams: entry `v`
/// holds the stream an SNG produces for the 8-bit operand `v` under the
/// 2-bits-then-2-per-2-cycles fill schedule.
#[derive(Debug, Clone)]
pub struct ProgressiveTable {
    streams: Vec<Bitstream>,
}

// Like `StreamTable`, progressive tables are resolved serially and then
// read concurrently through `Arc` handles by the parallel compute phase.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProgressiveTable>();
};

impl ProgressiveTable {
    fn new(len: usize, rng: &mut dyn StreamRng) -> Self {
        let streams = (0..=255u8)
            .map(|v| ProgressiveSng::new(v).generate(len, rng))
            .collect();
        ProgressiveTable { streams }
    }

    /// Stream for the 8-bit operand `value`.
    pub fn stream(&self, value: u8) -> &Bitstream {
        &self.streams[value as usize]
    }

    /// The packed 64-bit words of the stream for `value` — the direct
    /// form hot accumulation loops consume, skipping the [`Bitstream`]
    /// wrapper.
    #[inline]
    pub fn words(&self, value: u8) -> &[u64] {
        self.streams[value as usize].as_words()
    }

    /// Stream for a real value `x ∈ [0, 1]` (quantized to 8 bits,
    /// saturating at 255 — progressive buffers hold 8-bit operands).
    pub fn stream_for(&self, x: f32) -> &Bitstream {
        let level = quantize_unipolar(x, progressive::OPERAND_BITS).min(255);
        self.stream(level as u8)
    }
}

/// Cache of normal and progressive stream tables, keyed by generator
/// identity.
#[derive(Debug, Default)]
pub struct TableCache {
    regular: HashMap<TableKey, Arc<StreamTable>>,
    progressive: HashMap<TableKey, Arc<ProgressiveTable>>,
    pass: u64,
    faults: Option<FaultInjector>,
    hits: Counter,
    misses: Counter,
}

impl TableCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault injector (or removes it with `None`). Cached tables
    /// are dropped so subsequent lookups rebuild under the new model.
    pub fn set_faults(&mut self, faults: Option<FaultInjector>) {
        self.faults = faults;
        self.regular.clear();
        self.progressive.clear();
    }

    /// The installed injector's model, if any.
    pub fn fault_model(&self) -> Option<&geo_sc::FaultModel> {
        self.faults.as_ref().map(|f| f.model())
    }

    /// Counts of every fault injected so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(|f| f.counters())
            .unwrap_or_default()
    }

    /// Starts a new generation pass: TRNG-backed tables are dropped so the
    /// next lookups draw fresh entropy, modeling non-repeatable hardware
    /// TRNGs. With transient faults active, *all* tables are dropped — the
    /// stream buffers are rewritten each pass and draw fresh upsets.
    pub fn begin_pass(&mut self) {
        self.pass = self.pass.wrapping_add(1);
        let transient = self
            .faults
            .as_mut()
            .map(|f| {
                f.begin_pass();
                f.model().has_transient()
            })
            .unwrap_or(false);
        if transient {
            self.regular.clear();
            self.progressive.clear();
        } else {
            self.regular.retain(|k, _| k.kind != RngKind::Trng);
            self.progressive.retain(|k, _| k.kind != RngKind::Trng);
        }
    }

    fn build_rng(
        &mut self,
        kind: RngKind,
        width: u8,
        spec: RngSpec,
    ) -> Result<Box<dyn StreamRng>, GeoError> {
        let spec = match kind {
            // Mix the pass counter into TRNG entropy so every pass differs.
            RngKind::Trng => RngSpec {
                seed: spec.seed ^ (self.pass as u32).rotate_left(16),
                poly: spec.poly,
            },
            _ => spec,
        };
        let rng = kind.build(width, spec).map_err(GeoError::Sc)?;
        Ok(rng)
    }

    /// Builds the (possibly faulty) RNG for a generator: static seed
    /// corruption is applied to the spec, and stuck-at lanes get wrapped.
    fn build_faulty_rng(
        &mut self,
        kind: RngKind,
        width: u8,
        spec: RngSpec,
    ) -> Result<Box<dyn StreamRng>, GeoError> {
        let Some(mut inj) = self.faults.take() else {
            return self.build_rng(kind, width, spec);
        };
        // Static faults key on the *healthy* generator identity so they are
        // stable across rebuilds and independent of the TRNG pass mixing.
        let dom = generator_domain(kind, width, spec);
        let spec = inj.corrupt_spec(dom, spec);
        let stuck = inj.stuck_mask(dom, width);
        let result = self.build_rng(kind, width, spec);
        self.faults = Some(inj);
        let rng = result?;
        Ok(if stuck != 0 {
            Box::new(StuckAtRng::new(rng, stuck))
        } else {
            rng
        })
    }

    /// The normal (fully loaded) stream table for a generator, building it
    /// on first use. Streams have length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::Sc`] if the generator cannot be built at `width`
    /// (the engine validates widths up front, but the cache is public API).
    pub fn regular(
        &mut self,
        kind: RngKind,
        width: u8,
        len: usize,
        spec: RngSpec,
    ) -> Result<Arc<StreamTable>, GeoError> {
        let key = TableKey { kind, width, spec };
        if let Some(t) = self.regular.get(&key) {
            self.hits.incr();
            return Ok(Arc::clone(t));
        }
        self.misses.incr();
        let mut rng = self.build_faulty_rng(kind, width, spec)?;
        let mut table = StreamTable::new(len, rng.as_mut());
        if let Some(inj) = self.faults.as_mut() {
            inj.corrupt_table(generator_domain(kind, width, spec), &mut table);
        }
        let table = Arc::new(table);
        self.regular.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// The progressive stream table for a generator, building it on first
    /// use.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::Sc`] if the generator cannot be built at `width`.
    pub fn progressive(
        &mut self,
        kind: RngKind,
        width: u8,
        len: usize,
        spec: RngSpec,
    ) -> Result<Arc<ProgressiveTable>, GeoError> {
        let key = TableKey { kind, width, spec };
        if let Some(t) = self.progressive.get(&key) {
            self.hits.incr();
            return Ok(Arc::clone(t));
        }
        self.misses.incr();
        let mut rng = self.build_faulty_rng(kind, width, spec)?;
        let mut table = ProgressiveTable::new(len, rng.as_mut());
        if let Some(inj) = self.faults.as_mut() {
            let dom = generator_domain(kind, width, spec);
            for (level, bs) in table.streams.iter_mut().enumerate() {
                inj.corrupt_level(dom, level as u32, bs);
            }
        }
        let table = Arc::new(table);
        self.progressive.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Cumulative `(hits, misses)` of table lookups since creation —
    /// telemetry counters, always `(0, 0)` with the `telemetry` feature
    /// compiled out. A hit serves a cached table; a miss builds one.
    pub fn lookup_counts(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Number of cached tables (both kinds).
    pub fn len(&self) -> usize {
        self.regular.len() + self.progressive.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.regular.is_empty() && self.progressive.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_sc::FaultModel;

    const SPEC: RngSpec = RngSpec { seed: 5, poly: 0 };

    #[test]
    fn regular_tables_are_cached() {
        let mut cache = TableCache::new();
        let a = cache.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let b = cache.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let c = cache
            .regular(RngKind::Lfsr, 6, 64, RngSpec { seed: 6, poly: 0 })
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lookup_counts_track_hits_and_misses() {
        let mut cache = TableCache::new();
        let _ = cache.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let _ = cache.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let _ = cache.progressive(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let counts = cache.lookup_counts();
        if geo_sc::telemetry::enabled() {
            assert_eq!(counts, (1, 2));
        } else {
            assert_eq!(counts, (0, 0));
        }
    }

    #[test]
    fn lfsr_tables_survive_passes_trng_tables_do_not() {
        let mut cache = TableCache::new();
        let lfsr1 = cache.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let trng1 = cache.regular(RngKind::Trng, 6, 64, SPEC).unwrap();
        cache.begin_pass();
        let lfsr2 = cache.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let trng2 = cache.regular(RngKind::Trng, 6, 64, SPEC).unwrap();
        assert!(Arc::ptr_eq(&lfsr1, &lfsr2), "deterministic tables persist");
        assert!(!Arc::ptr_eq(&trng1, &trng2), "TRNG tables are rebuilt");
        // And the rebuilt TRNG table contains different streams.
        assert_ne!(trng1.stream(32), trng2.stream(32));
    }

    #[test]
    fn progressive_table_matches_direct_generation() {
        let mut cache = TableCache::new();
        let table = cache.progressive(RngKind::Lfsr, 7, 128, SPEC).unwrap();
        let mut rng = RngKind::Lfsr.build(7, SPEC).unwrap();
        let direct = ProgressiveSng::new(200).generate(128, rng.as_mut());
        assert_eq!(table.stream(200), &direct);
        assert!(!cache.is_empty());
    }

    #[test]
    fn progressive_stream_for_quantizes_and_saturates() {
        let mut cache = TableCache::new();
        let table = cache.progressive(RngKind::Lfsr, 7, 128, SPEC).unwrap();
        assert_eq!(table.stream_for(1.0), table.stream(255));
        assert_eq!(table.stream_for(0.0), table.stream(0));
        assert_eq!(table.stream_for(0.5), table.stream(128));
    }

    #[test]
    fn invalid_width_surfaces_as_error_not_panic() {
        let mut cache = TableCache::new();
        assert!(cache.regular(RngKind::Lfsr, 2, 4, SPEC).is_err());
        assert!(cache.progressive(RngKind::Lfsr, 40, 16, SPEC).is_err());
    }

    #[test]
    fn none_fault_model_leaves_tables_identical() {
        let mut clean = TableCache::new();
        let mut nulled = TableCache::new();
        nulled.set_faults(Some(FaultInjector::new(FaultModel::none()).unwrap()));
        let a = clean.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let b = nulled.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        for level in 0..=64u32 {
            assert_eq!(a.stream(level), b.stream(level));
        }
        let pa = clean.progressive(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let pb = nulled.progressive(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        for level in 0..=255u8 {
            assert_eq!(pa.stream(level), pb.stream(level));
        }
        assert!(!nulled.fault_counters().any());
    }

    #[test]
    fn stream_ber_corrupts_and_invalidates_per_pass() {
        let mut clean = TableCache::new();
        let mut faulty = TableCache::new();
        faulty.set_faults(Some(
            FaultInjector::new(FaultModel::with_stream_ber(0.05, 11)).unwrap(),
        ));
        let a = clean.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let b1 = faulty.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        assert_ne!(a.stream(32), b1.stream(32));
        assert!(faulty.fault_counters().stream_bits_flipped > 0);
        // New pass → table invalidated and re-corrupted differently.
        faulty.begin_pass();
        let b2 = faulty.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        assert!(!Arc::ptr_eq(&b1, &b2), "transient faults rebuild tables");
        assert_ne!(b1.stream(32), b2.stream(32));
    }

    #[test]
    fn static_faults_are_stable_across_passes() {
        let model = FaultModel {
            seed_corruption_rate: 1.0,
            seed: 3,
            ..FaultModel::none()
        };
        let mut faulty = TableCache::new();
        faulty.set_faults(Some(FaultInjector::new(model).unwrap()));
        let t1 = faulty.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        faulty.begin_pass();
        let t2 = faulty.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        // No transient faults → cached Arc survives; and the corrupted seed
        // differs from the healthy table.
        assert!(Arc::ptr_eq(&t1, &t2));
        let mut clean = TableCache::new();
        let healthy = clean.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        assert_ne!(healthy.stream(32), t1.stream(32));
    }

    #[test]
    fn stuck_lane_biases_streams_low() {
        // A stuck-at-one tap raises comparator inputs, so ones densities
        // drop (rng() < level fires less often).
        let model = FaultModel {
            lfsr_stuck_rate: 1.0,
            seed: 1,
            ..FaultModel::none()
        };
        let mut faulty = TableCache::new();
        faulty.set_faults(Some(FaultInjector::new(model).unwrap()));
        let mut clean = TableCache::new();
        let f = faulty.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let h = clean.regular(RngKind::Lfsr, 6, 64, SPEC).unwrap();
        let f_ones: u32 = (0..=64).map(|l| f.stream(l).count_ones()).sum();
        let h_ones: u32 = (0..=64).map(|l| h.stream(l).count_ones()).sum();
        assert!(
            f_ones < h_ones,
            "stuck tap loses ones: {f_ones} vs {h_ones}"
        );
        assert_eq!(faulty.fault_counters().stuck_lanes, 1);
    }
}
