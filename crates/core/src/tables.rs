//! Stream-table caching.
//!
//! Because GEO's generators are deterministic and shared, the stream for a
//! given (generator, value) pair is fixed — so the engine precomputes
//! value-indexed tables per generator and turns stream generation into
//! lookups. This mirrors the paper's "heavily optimized stream-based
//! training" and is what makes SC-in-the-loop training tractable.
//!
//! TRNG-backed tables are deliberately invalidated every pass
//! ([`TableCache::begin_pass`]): true randomness has no reusable table,
//! which is exactly why networks cannot train for it.

use geo_sc::{
    progressive, quantize_unipolar, Bitstream, ProgressiveSng, RngKind, RngSpec, StreamRng,
    StreamTable,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of one cached generator table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TableKey {
    kind: RngKind,
    width: u8,
    spec: RngSpec,
}

/// A value-indexed table of *progressively generated* streams: entry `v`
/// holds the stream an SNG produces for the 8-bit operand `v` under the
/// 2-bits-then-2-per-2-cycles fill schedule.
#[derive(Debug, Clone)]
pub struct ProgressiveTable {
    streams: Vec<Bitstream>,
}

impl ProgressiveTable {
    fn new(len: usize, rng: &mut dyn StreamRng) -> Self {
        let streams = (0..=255u8)
            .map(|v| ProgressiveSng::new(v).generate(len, rng))
            .collect();
        ProgressiveTable { streams }
    }

    /// Stream for the 8-bit operand `value`.
    pub fn stream(&self, value: u8) -> &Bitstream {
        &self.streams[value as usize]
    }

    /// Stream for a real value `x ∈ [0, 1]` (quantized to 8 bits,
    /// saturating at 255 — progressive buffers hold 8-bit operands).
    pub fn stream_for(&self, x: f32) -> &Bitstream {
        let level = quantize_unipolar(x, progressive::OPERAND_BITS).min(255);
        self.stream(level as u8)
    }
}

/// Cache of normal and progressive stream tables, keyed by generator
/// identity.
#[derive(Debug, Default)]
pub struct TableCache {
    regular: HashMap<TableKey, Arc<StreamTable>>,
    progressive: HashMap<TableKey, Arc<ProgressiveTable>>,
    pass: u64,
}

impl TableCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new generation pass: TRNG-backed tables are dropped so the
    /// next lookups draw fresh entropy, modeling non-repeatable hardware
    /// TRNGs.
    pub fn begin_pass(&mut self) {
        self.pass = self.pass.wrapping_add(1);
        self.regular.retain(|k, _| k.kind != RngKind::Trng);
        self.progressive.retain(|k, _| k.kind != RngKind::Trng);
    }

    fn build_rng(&self, kind: RngKind, width: u8, spec: RngSpec) -> Box<dyn StreamRng> {
        let spec = match kind {
            // Mix the pass counter into TRNG entropy so every pass differs.
            RngKind::Trng => RngSpec {
                seed: spec.seed ^ (self.pass as u32).rotate_left(16),
                poly: spec.poly,
            },
            _ => spec,
        };
        kind.build(width, spec)
            .expect("engine validated widths up front")
    }

    /// The normal (fully loaded) stream table for a generator, building it
    /// on first use. Streams have length `len`.
    pub fn regular(
        &mut self,
        kind: RngKind,
        width: u8,
        len: usize,
        spec: RngSpec,
    ) -> Arc<StreamTable> {
        let key = TableKey { kind, width, spec };
        if let Some(t) = self.regular.get(&key) {
            return Arc::clone(t);
        }
        let mut rng = self.build_rng(kind, width, spec);
        let table = Arc::new(StreamTable::new(len, rng.as_mut()));
        self.regular.insert(key, Arc::clone(&table));
        table
    }

    /// The progressive stream table for a generator, building it on first
    /// use.
    pub fn progressive(
        &mut self,
        kind: RngKind,
        width: u8,
        len: usize,
        spec: RngSpec,
    ) -> Arc<ProgressiveTable> {
        let key = TableKey { kind, width, spec };
        if let Some(t) = self.progressive.get(&key) {
            return Arc::clone(t);
        }
        let mut rng = self.build_rng(kind, width, spec);
        let table = Arc::new(ProgressiveTable::new(len, rng.as_mut()));
        self.progressive.insert(key, Arc::clone(&table));
        table
    }

    /// Number of cached tables (both kinds).
    pub fn len(&self) -> usize {
        self.regular.len() + self.progressive.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.regular.is_empty() && self.progressive.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: RngSpec = RngSpec { seed: 5, poly: 0 };

    #[test]
    fn regular_tables_are_cached() {
        let mut cache = TableCache::new();
        let a = cache.regular(RngKind::Lfsr, 6, 64, SPEC);
        let b = cache.regular(RngKind::Lfsr, 6, 64, SPEC);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let c = cache.regular(RngKind::Lfsr, 6, 64, RngSpec { seed: 6, poly: 0 });
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lfsr_tables_survive_passes_trng_tables_do_not() {
        let mut cache = TableCache::new();
        let lfsr1 = cache.regular(RngKind::Lfsr, 6, 64, SPEC);
        let trng1 = cache.regular(RngKind::Trng, 6, 64, SPEC);
        cache.begin_pass();
        let lfsr2 = cache.regular(RngKind::Lfsr, 6, 64, SPEC);
        let trng2 = cache.regular(RngKind::Trng, 6, 64, SPEC);
        assert!(Arc::ptr_eq(&lfsr1, &lfsr2), "deterministic tables persist");
        assert!(!Arc::ptr_eq(&trng1, &trng2), "TRNG tables are rebuilt");
        // And the rebuilt TRNG table contains different streams.
        assert_ne!(trng1.stream(32), trng2.stream(32));
    }

    #[test]
    fn progressive_table_matches_direct_generation() {
        let mut cache = TableCache::new();
        let table = cache.progressive(RngKind::Lfsr, 7, 128, SPEC);
        let mut rng = RngKind::Lfsr.build(7, SPEC).unwrap();
        let direct = ProgressiveSng::new(200).generate(128, rng.as_mut());
        assert_eq!(table.stream(200), &direct);
        assert!(!cache.is_empty());
    }

    #[test]
    fn progressive_stream_for_quantizes_and_saturates() {
        let mut cache = TableCache::new();
        let table = cache.progressive(RngKind::Lfsr, 7, 128, SPEC);
        assert_eq!(table.stream_for(1.0), table.stream(255));
        assert_eq!(table.stream_for(0.0), table.stream(0));
        assert_eq!(table.stream_for(0.5), table.stream(128));
    }
}
